//! Tenant-aware key-value front-end over any [`SwapPlane`].
//!
//! Each tenant gets a bounded hot cache (resident quota), a compressed
//! far-memory budget (compressed quota), and an admission verdict per
//! write. The service owns no compression machinery: demotions and
//! faults go through the plane's context-carrying operations, so the
//! plane bills the right tenant and the service ledger mirrors the
//! plane's own accounting byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use xfm_faults::{DegradeConfig, DegradeController, DegradedMode};
use xfm_sfm::SwapPlane;
use xfm_telemetry::{Histogram, Registry, TenantMetrics};
use xfm_types::{
    ByteSize, Error, OpContext, PageNumber, PlacementClass, SwapError, SwapResult, SwapSite,
    TenantId, PAGE_SIZE,
};

/// Key bits inside a tenant's page namespace: page numbers are
/// `tenant << KEY_BITS | key`, so tenants can never collide on a page.
pub const KEY_BITS: u32 = 48;

/// What the operator promised a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// Latency-sensitive: never shed by degraded-mode admission.
    Guaranteed,
    /// Throughput-oriented: writes are shed while the plane is in
    /// `CpuOnly` degradation, protecting guaranteed tenants' CPU.
    BestEffort,
}

impl ServiceClass {
    /// Stable lowercase name (used in exposition and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Guaranteed => "guaranteed",
            ServiceClass::BestEffort => "best_effort",
        }
    }
}

/// Per-tenant quotas and service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tenant this spec provisions.
    pub tenant: TenantId,
    /// Admission treatment under degradation.
    pub class: ServiceClass,
    /// Hot-cache budget: resident (uncompressed) bytes.
    pub resident_quota: ByteSize,
    /// Far-memory budget: compressed bytes in the plane.
    pub compressed_quota: ByteSize,
    /// Placement hint carried in this tenant's [`OpContext`]s.
    pub placement: PlacementClass,
}

impl TenantSpec {
    /// A guaranteed-class spec with the given quotas and the default
    /// (hottest) placement hint.
    #[must_use]
    pub fn new(tenant: TenantId, resident_quota: ByteSize, compressed_quota: ByteSize) -> Self {
        Self {
            tenant,
            class: ServiceClass::Guaranteed,
            resident_quota,
            compressed_quota,
            placement: PlacementClass::CompressedLocal,
        }
    }

    /// Returns `self` with the service class replaced.
    #[must_use]
    pub fn with_class(mut self, class: ServiceClass) -> Self {
        self.class = class;
        self
    }

    /// Returns `self` with the placement hint replaced.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementClass) -> Self {
        self.placement = placement;
        self
    }
}

/// Why admission control refused a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Both quotas exhausted: the hot cache is full and the compressed
    /// budget has no room to demote into.
    QuotaExhausted,
    /// Best-effort write refused while the plane is in `CpuOnly`
    /// degradation.
    Degraded,
}

impl ShedReason {
    /// Stable lowercase name (used in exposition and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QuotaExhausted => "quota_exhausted",
            ShedReason::Degraded => "degraded",
        }
    }
}

/// Outcome of an admitted or shed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutResult {
    /// The value is stored (hot); `demotions` pages were evicted to the
    /// plane to make room.
    Stored {
        /// Pages demoted to far memory during this write.
        demotions: u32,
    },
    /// Admission control refused the write; the store is unchanged.
    Shed(ShedReason),
}

/// Where a read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetSource {
    /// The hot cache (no plane involvement).
    Hot,
    /// A demand fault: decompressed out of the plane.
    Fault,
}

/// Outcome of a successful read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// Where the value came from.
    pub source: GetSource,
    /// Wall-clock fault latency, when `source` is [`GetSource::Fault`].
    pub fault_ns: Option<u64>,
}

/// Point-in-time view of one tenant's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant observed.
    pub tenant: TenantId,
    /// Its service class.
    pub class: ServiceClass,
    /// Admitted writes.
    pub puts: u64,
    /// Reads (hits + faults + misses).
    pub gets: u64,
    /// Reads served from the hot cache.
    pub hits: u64,
    /// Reads served by a demand fault.
    pub faults: u64,
    /// Writes refused by admission control.
    pub sheds: u64,
    /// Pages demoted to the plane.
    pub demotions: u64,
    /// Demotions refused by the plane or the compressed quota while the
    /// hot cache was over budget (the page stayed resident).
    pub overflows: u64,
    /// Hot-cache bytes currently resident.
    pub resident_bytes: u64,
    /// Compressed bytes currently billed in the plane (service ledger).
    pub compressed_bytes: u64,
    /// Median demand-fault latency (wall ns; 0 before the first fault).
    pub fault_p50_ns: u64,
    /// Tail demand-fault latency (wall ns; 0 before the first fault).
    pub fault_p99_ns: u64,
}

/// Per-tenant ledger line of an [`AccountingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantBalance {
    /// The tenant.
    pub tenant: TenantId,
    /// Compressed bytes per the service ledger (outcome deltas).
    pub ledger_bytes: u64,
    /// Compressed bytes per the plane's own accounting.
    pub plane_bytes: u64,
}

/// Cross-layer accounting reconciliation.
///
/// `balanced` iff every tenant's service ledger equals the plane's
/// usage entry *and* the ledger total equals the plane total — i.e. no
/// byte was double-counted, leaked, or attributed to the wrong tenant
/// anywhere between the front-end and the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingReport {
    /// One line per tenant known to either layer.
    pub per_tenant: Vec<TenantBalance>,
    /// Sum of the service ledgers.
    pub ledger_total: u64,
    /// Sum of the plane's per-tenant usage.
    pub plane_total: u64,
    /// Whether the two layers agree exactly.
    pub balanced: bool,
}

/// One tenant's serving state: hot cache, far set, ledger, counters.
struct TenantState {
    spec: TenantSpec,
    /// Hot values: key → (page, recency stamp).
    hot: BTreeMap<u64, (Vec<u8>, u64)>,
    /// Recency index: stamp → key (oldest first).
    lru: BTreeMap<u64, u64>,
    next_stamp: u64,
    /// Keys currently demoted to the plane.
    far: BTreeSet<u64>,
    resident_bytes: u64,
    /// Compressed bytes billed to this tenant, mirrored from outcomes.
    compressed_bytes: u64,
    puts: u64,
    gets: u64,
    hits: u64,
    faults: u64,
    sheds: u64,
    demotions: u64,
    overflows: u64,
    fault_ns: Histogram,
    /// Scratch buffer for discarding stale far copies on overwrite.
    scratch: Vec<u8>,
}

impl TenantState {
    fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            hot: BTreeMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            far: BTreeSet::new(),
            resident_bytes: 0,
            compressed_bytes: 0,
            puts: 0,
            gets: 0,
            hits: 0,
            faults: 0,
            sheds: 0,
            demotions: 0,
            overflows: 0,
            fault_ns: Histogram::new(),
            scratch: Vec::with_capacity(PAGE_SIZE),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some((_, stamp)) = self.hot.get_mut(&key) {
            self.lru.remove(stamp);
            *stamp = self.next_stamp;
            self.lru.insert(self.next_stamp, key);
            self.next_stamp += 1;
        }
    }

    fn insert_hot(&mut self, key: u64, page: Vec<u8>) {
        if let Some((_, old)) = self.hot.remove(&key) {
            self.lru.remove(&old);
            self.resident_bytes -= PAGE_SIZE as u64;
        }
        self.lru.insert(self.next_stamp, key);
        self.hot.insert(key, (page, self.next_stamp));
        self.next_stamp += 1;
        self.resident_bytes += PAGE_SIZE as u64;
    }
}

/// Multi-tenant key-value service over a shared swap plane.
///
/// The tenant set is fixed at construction: each tenant's state sits
/// behind its own mutex, so operations for different tenants contend
/// only inside the (itself sharded) plane. One
/// [`DegradeController`] watches demotion outcomes across all tenants
/// and drives class-aware admission.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xfm_serve::{FarKvService, TenantSpec};
/// use xfm_sfm::{ShardedSfm, ShardedSfmConfig};
/// use xfm_types::{ByteSize, TenantId, PAGE_SIZE};
///
/// let plane = Arc::new(ShardedSfm::new(ShardedSfmConfig::default()));
/// let svc = FarKvService::new(
///     plane,
///     vec![TenantSpec::new(
///         TenantId::new(1),
///         ByteSize::from_pages(2), // hot cache: two pages
///         ByteSize::from_mib(1),
///     )],
/// );
/// let t = TenantId::new(1);
/// let page = vec![7u8; PAGE_SIZE];
/// for key in 0..4 {
///     svc.put(t, key, &page)?;
/// }
/// // Two of the four values were demoted to far memory...
/// assert_eq!(svc.snapshot(t).unwrap().demotions, 2);
/// // ...and every value still reads back intact.
/// let mut out = Vec::new();
/// for key in 0..4 {
///     assert!(svc.get(t, key, &mut out)?.is_some());
///     assert_eq!(out, page);
/// }
/// assert!(svc.accounting().balanced);
/// # Ok::<(), xfm_types::SwapError>(())
/// ```
pub struct FarKvService {
    plane: Arc<dyn SwapPlane>,
    tenants: BTreeMap<u16, Mutex<TenantState>>,
    degrade: Mutex<DegradeController>,
    metrics: Option<TenantMetrics>,
}

impl std::fmt::Debug for FarKvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarKvService")
            .field("tenants", &self.tenants.len())
            .field("has_telemetry", &self.metrics.is_some())
            .finish_non_exhaustive()
    }
}

impl FarKvService {
    /// Builds a service over `plane` for a fixed tenant set, with the
    /// default degraded-mode thresholds.
    #[must_use]
    pub fn new(plane: Arc<dyn SwapPlane>, specs: Vec<TenantSpec>) -> Self {
        Self::with_degrade(plane, specs, DegradeConfig::default())
    }

    /// Builds a service with explicit degraded-mode tuning.
    #[must_use]
    pub fn with_degrade(
        plane: Arc<dyn SwapPlane>,
        specs: Vec<TenantSpec>,
        degrade: DegradeConfig,
    ) -> Self {
        let tenants = specs
            .into_iter()
            .map(|s| (s.tenant.as_u16(), Mutex::new(TenantState::new(s))))
            .collect();
        Self {
            plane,
            tenants,
            degrade: Mutex::new(DegradeController::new(degrade)),
            metrics: None,
        }
    }

    /// Registers per-tenant shed counters on `registry`. The plane's
    /// own telemetry (swap counts, bytes, fault histograms) attaches on
    /// the plane; the service only adds what the plane cannot see —
    /// operations shed before reaching it.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(TenantMetrics::register(registry));
    }

    /// The shared plane this service fronts.
    #[must_use]
    pub fn plane(&self) -> &Arc<dyn SwapPlane> {
        &self.plane
    }

    /// Current degraded-mode verdict of the admission controller.
    #[must_use]
    pub fn degraded_mode(&self) -> DegradedMode {
        self.degrade.lock().mode()
    }

    /// The plane page number backing `(tenant, key)`.
    fn page_of(tenant: TenantId, key: u64) -> PageNumber {
        PageNumber::new((u64::from(tenant.as_u16()) << KEY_BITS) | key)
    }

    fn state(&self, tenant: TenantId) -> SwapResult<&Mutex<TenantState>> {
        self.tenants.get(&tenant.as_u16()).ok_or_else(|| {
            SwapError::new(
                SwapSite::HostSubmit,
                Error::InvalidConfig(format!("unknown {tenant}")),
            )
        })
    }

    /// Re-derives a tenant's ledger from the plane's accounting after
    /// an entry-consuming failure (e.g. `Corrupt`), where no outcome
    /// reports how many bytes the plane credited back.
    fn resync_ledger(&self, st: &mut TenantState) {
        st.compressed_bytes = self
            .plane
            .tenant_usage()
            .into_iter()
            .find(|(t, _)| *t == st.spec.tenant)
            .map_or(0, |(_, b)| b);
    }

    /// Demotes LRU victims until the hot cache fits its quota. Stops
    /// (leaving the cache over budget and counting an overflow) when
    /// the compressed quota is exhausted or the plane refuses — values
    /// are never dropped.
    fn enforce_resident_quota(&self, st: &mut TenantState) {
        let ctx = OpContext::for_tenant(st.spec.tenant).with_class(st.spec.placement);
        while st.resident_bytes > st.spec.resident_quota.as_bytes() {
            if st.compressed_bytes >= st.spec.compressed_quota.as_bytes() {
                st.overflows += 1;
                return;
            }
            let Some((&stamp, &victim)) = st.lru.iter().next() else {
                return;
            };
            let page = Self::page_of(st.spec.tenant, victim);
            let data = &st.hot.get(&victim).expect("lru tracks hot keys").0;
            match self.plane.swap_out_ctx(&ctx, page, data) {
                Ok(outcome) => {
                    // The controller watches demotion *health*, not NMA
                    // usage: a CPU-only plane is healthy, an NMA plane
                    // reports its offload failures as retryable errors.
                    self.degrade.lock().record_offload(true);
                    st.lru.remove(&stamp);
                    st.hot.remove(&victim);
                    st.resident_bytes -= PAGE_SIZE as u64;
                    st.compressed_bytes += u64::from(outcome.compressed_len);
                    st.far.insert(victim);
                    st.demotions += 1;
                }
                Err(e) => {
                    // Region full or transient reject: keep the victim
                    // resident rather than lose it; admission will shed
                    // incoming writes while we stay over budget.
                    if e.retryable {
                        self.degrade.lock().record_offload(false);
                    }
                    st.overflows += 1;
                    return;
                }
            }
        }
    }

    /// Stores one page-sized value under `(tenant, key)`.
    ///
    /// Admission may shed the write ([`PutResult::Shed`]): best-effort
    /// tenants are refused while the plane is in `CpuOnly` degradation,
    /// and any tenant is refused when both its quotas are exhausted.
    /// Overwrites of demoted values first discard the stale far copy so
    /// the ledger never double-bills a key.
    ///
    /// # Errors
    ///
    /// - [`Error::InvalidConfig`] (via [`SwapError`]) for an unknown
    ///   tenant, a value not exactly 4 KiB, or a key outside
    ///   [`KEY_BITS`];
    /// - any plane error from discarding a stale far copy.
    pub fn put(&self, tenant: TenantId, key: u64, value: &[u8]) -> SwapResult<PutResult> {
        if value.len() != PAGE_SIZE {
            return Err(SwapError::new(
                SwapSite::HostSubmit,
                Error::InvalidConfig(format!("value must be {PAGE_SIZE} bytes")),
            ));
        }
        if key >> KEY_BITS != 0 {
            return Err(SwapError::new(
                SwapSite::HostSubmit,
                Error::InvalidConfig(format!("key {key} exceeds {KEY_BITS} bits")),
            ));
        }
        let mut st = self.state(tenant)?.lock();

        // Admission: degraded-mode shedding for best-effort tenants.
        if st.spec.class == ServiceClass::BestEffort
            && self.degrade.lock().mode() == DegradedMode::CpuOnly
        {
            st.sheds += 1;
            self.count_shed(tenant);
            return Ok(PutResult::Shed(ShedReason::Degraded));
        }
        // Admission: a *new* key needs a hot slot now or a compressed
        // slot soon; with both quotas exhausted there is nowhere to
        // put it. Overwrites are always admitted (no net growth).
        let is_known = st.hot.contains_key(&key) || st.far.contains(&key);
        if !is_known
            && st.resident_bytes + PAGE_SIZE as u64 > st.spec.resident_quota.as_bytes()
            && st.compressed_bytes >= st.spec.compressed_quota.as_bytes()
        {
            st.sheds += 1;
            self.count_shed(tenant);
            return Ok(PutResult::Shed(ShedReason::QuotaExhausted));
        }

        // Overwrite of a demoted value: consume the stale far copy so
        // its bytes are credited back before the new version lands.
        if st.far.contains(&key) {
            let ctx = OpContext::for_tenant(tenant).with_class(st.spec.placement);
            let page = Self::page_of(tenant, key);
            let mut scratch = std::mem::take(&mut st.scratch);
            let r = self.plane.swap_in_into_ctx(&ctx, page, true, &mut scratch);
            st.scratch = scratch;
            st.far.remove(&key);
            match r {
                Ok(outcome) => {
                    st.compressed_bytes = st
                        .compressed_bytes
                        .saturating_sub(u64::from(outcome.compressed_len));
                }
                Err(e) => {
                    self.resync_ledger(&mut st);
                    return Err(e);
                }
            }
        }

        st.insert_hot(key, value.to_vec());
        st.puts += 1;
        let demotions_before = st.demotions;
        self.enforce_resident_quota(&mut st);
        Ok(PutResult::Stored {
            demotions: (st.demotions - demotions_before) as u32,
        })
    }

    /// Reads the value under `(tenant, key)` into `out` (cleared
    /// first). Returns `None` when the key was never stored (or its
    /// write was shed).
    ///
    /// # Errors
    ///
    /// - [`Error::InvalidConfig`] (via [`SwapError`]) for an unknown
    ///   tenant;
    /// - any plane error while faulting a demoted value back in (the
    ///   ledger is re-synced from the plane on entry-consuming
    ///   failures).
    pub fn get(
        &self,
        tenant: TenantId,
        key: u64,
        out: &mut Vec<u8>,
    ) -> SwapResult<Option<GetOutcome>> {
        let mut st = self.state(tenant)?.lock();
        st.gets += 1;

        if let Some((page, _)) = st.hot.get(&key) {
            out.clear();
            out.extend_from_slice(page);
            st.hits += 1;
            st.touch(key);
            return Ok(Some(GetOutcome {
                source: GetSource::Hot,
                fault_ns: None,
            }));
        }
        if !st.far.contains(&key) {
            return Ok(None);
        }

        // Demand fault: the caller is stalled, so the CPU path is
        // preferred (`do_offload = false`), exactly like a page fault.
        let ctx = OpContext::for_tenant(tenant).with_class(st.spec.placement);
        let page = Self::page_of(tenant, key);
        let started = Instant::now();
        match self.plane.swap_in_into_ctx(&ctx, page, false, out) {
            Ok(outcome) => {
                let elapsed = started.elapsed().as_nanos() as u64;
                self.degrade.lock().record_cpu_op();
                st.far.remove(&key);
                st.compressed_bytes = st
                    .compressed_bytes
                    .saturating_sub(u64::from(outcome.compressed_len));
                st.faults += 1;
                st.fault_ns.record(elapsed);
                st.insert_hot(key, out.clone());
                self.enforce_resident_quota(&mut st);
                Ok(Some(GetOutcome {
                    source: GetSource::Fault,
                    fault_ns: Some(elapsed),
                }))
            }
            Err(e) => {
                if !e.retryable {
                    // The entry may have been consumed; re-derive the
                    // ledger from the plane instead of guessing.
                    st.far.remove(&key);
                    self.resync_ledger(&mut st);
                }
                Err(e)
            }
        }
    }

    /// Every key currently stored for `tenant` (hot and demoted),
    /// sorted. Empty for unknown tenants.
    #[must_use]
    pub fn keys(&self, tenant: TenantId) -> Vec<u64> {
        self.tenants
            .get(&tenant.as_u16())
            .map_or_else(Vec::new, |m| {
                let st = m.lock();
                let mut keys: Vec<u64> = st.hot.keys().copied().collect();
                keys.extend(st.far.iter().copied());
                keys.sort_unstable();
                keys
            })
    }

    /// Point-in-time counters for one tenant.
    #[must_use]
    pub fn snapshot(&self, tenant: TenantId) -> Option<TenantSnapshot> {
        self.tenants.get(&tenant.as_u16()).map(|m| {
            let st = m.lock();
            TenantSnapshot {
                tenant: st.spec.tenant,
                class: st.spec.class,
                puts: st.puts,
                gets: st.gets,
                hits: st.hits,
                faults: st.faults,
                sheds: st.sheds,
                demotions: st.demotions,
                overflows: st.overflows,
                resident_bytes: st.resident_bytes,
                compressed_bytes: st.compressed_bytes,
                fault_p50_ns: st.fault_ns.quantile(0.50),
                fault_p99_ns: st.fault_ns.quantile(0.99),
            }
        })
    }

    /// Snapshots for every provisioned tenant, sorted by tenant id.
    #[must_use]
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .values()
            .map(|m| {
                let st = m.lock();
                TenantSnapshot {
                    tenant: st.spec.tenant,
                    class: st.spec.class,
                    puts: st.puts,
                    gets: st.gets,
                    hits: st.hits,
                    faults: st.faults,
                    sheds: st.sheds,
                    demotions: st.demotions,
                    overflows: st.overflows,
                    resident_bytes: st.resident_bytes,
                    compressed_bytes: st.compressed_bytes,
                    fault_p50_ns: st.fault_ns.quantile(0.50),
                    fault_p99_ns: st.fault_ns.quantile(0.99),
                }
            })
            .collect()
    }

    /// Reconciles the service ledgers against the plane's accounting.
    #[must_use]
    pub fn accounting(&self) -> AccountingReport {
        let plane: BTreeMap<TenantId, u64> = self.plane.tenant_usage().into_iter().collect();
        let mut per_tenant = Vec::new();
        let mut ledger_total = 0u64;
        for m in self.tenants.values() {
            let st = m.lock();
            ledger_total += st.compressed_bytes;
            per_tenant.push(TenantBalance {
                tenant: st.spec.tenant,
                ledger_bytes: st.compressed_bytes,
                plane_bytes: plane.get(&st.spec.tenant).copied().unwrap_or(0),
            });
        }
        // Plane-side tenants the service does not provision (e.g. the
        // system tenant) show up with a zero ledger.
        for (&t, &b) in &plane {
            if b > 0 && !self.tenants.contains_key(&t.as_u16()) {
                per_tenant.push(TenantBalance {
                    tenant: t,
                    ledger_bytes: 0,
                    plane_bytes: b,
                });
            }
        }
        per_tenant.sort_by_key(|b| b.tenant);
        let plane_total: u64 = plane.values().sum();
        let balanced = ledger_total == plane_total
            && per_tenant.iter().all(|b| b.ledger_bytes == b.plane_bytes);
        AccountingReport {
            per_tenant,
            ledger_total,
            plane_total,
            balanced,
        }
    }

    fn count_shed(&self, tenant: TenantId) {
        if let Some(m) = &self.metrics {
            m.series(tenant).sheds.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig};

    fn plane() -> Arc<ShardedSfm> {
        Arc::new(ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(8),
                ..SfmConfig::default()
            },
            ..ShardedSfmConfig::default()
        }))
    }

    fn spec(id: u16, resident_pages: u64, compressed: ByteSize) -> TenantSpec {
        TenantSpec::new(
            TenantId::new(id),
            ByteSize::from_pages(resident_pages),
            compressed,
        )
    }

    fn page(tag: u8) -> Vec<u8> {
        // Compressible but not same-filled.
        let mut p: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 97) as u8).collect();
        p[0] = tag;
        p
    }

    #[test]
    fn put_get_round_trip_through_far_memory() {
        let svc = FarKvService::new(plane(), vec![spec(1, 2, ByteSize::from_mib(4))]);
        let t = TenantId::new(1);
        for k in 0..6u64 {
            let r = svc.put(t, k, &page(k as u8)).unwrap();
            assert!(matches!(r, PutResult::Stored { .. }));
        }
        let snap = svc.snapshot(t).unwrap();
        assert_eq!(snap.puts, 6);
        assert_eq!(snap.demotions, 4);
        assert_eq!(snap.resident_bytes, 2 * PAGE_SIZE as u64);
        let mut out = Vec::new();
        for k in 0..6u64 {
            let got = svc.get(t, k, &mut out).unwrap().unwrap();
            assert_eq!(out, page(k as u8), "key {k}");
            let _ = got;
        }
        assert_eq!(svc.snapshot(t).unwrap().gets, 6);
        assert!(svc.accounting().balanced);
    }

    #[test]
    fn overwrite_of_demoted_value_does_not_double_bill() {
        let svc = FarKvService::new(plane(), vec![spec(1, 1, ByteSize::from_mib(4))]);
        let t = TenantId::new(1);
        svc.put(t, 0, &page(1)).unwrap();
        svc.put(t, 1, &page(2)).unwrap(); // demotes key 0
        assert_eq!(svc.snapshot(t).unwrap().demotions, 1);
        svc.put(t, 0, &page(3)).unwrap(); // overwrite: stale far copy discarded
        let mut out = Vec::new();
        assert!(svc.get(t, 0, &mut out).unwrap().is_some());
        assert_eq!(out, page(3));
        assert!(svc.accounting().balanced);
    }

    #[test]
    fn quota_exhaustion_sheds_new_keys_only() {
        // One resident page, zero compressed budget: the second key has
        // nowhere to go.
        let svc = FarKvService::new(plane(), vec![spec(1, 1, ByteSize::ZERO)]);
        let t = TenantId::new(1);
        assert!(matches!(
            svc.put(t, 0, &page(1)).unwrap(),
            PutResult::Stored { .. }
        ));
        assert_eq!(
            svc.put(t, 1, &page(2)).unwrap(),
            PutResult::Shed(ShedReason::QuotaExhausted)
        );
        // Overwriting the existing key is still admitted.
        assert!(matches!(
            svc.put(t, 0, &page(3)).unwrap(),
            PutResult::Stored { .. }
        ));
        assert_eq!(svc.snapshot(t).unwrap().sheds, 1);
    }

    #[test]
    fn tenants_are_isolated() {
        let svc = FarKvService::new(
            plane(),
            vec![
                spec(1, 1, ByteSize::from_mib(2)),
                spec(2, 1, ByteSize::from_mib(2)),
            ],
        );
        let (a, b) = (TenantId::new(1), TenantId::new(2));
        svc.put(a, 7, &page(1)).unwrap();
        svc.put(b, 7, &page(2)).unwrap(); // same key, different namespace
        svc.put(a, 8, &page(3)).unwrap(); // demotes a/7
        let mut out = Vec::new();
        assert!(svc.get(b, 7, &mut out).unwrap().is_some());
        assert_eq!(out, page(2));
        assert!(svc.get(a, 7, &mut out).unwrap().is_some());
        assert_eq!(out, page(1));
        assert!(svc.get(b, 8, &mut out).unwrap().is_none());
        let acct = svc.accounting();
        assert!(acct.balanced, "{acct:?}");
    }

    #[test]
    fn rejects_bad_arguments() {
        let svc = FarKvService::new(plane(), vec![spec(1, 1, ByteSize::from_mib(1))]);
        let t = TenantId::new(1);
        assert!(svc.put(t, 0, &[0u8; 17]).is_err());
        assert!(svc.put(t, 1u64 << KEY_BITS, &page(0)).is_err());
        assert!(svc.put(TenantId::new(9), 0, &page(0)).is_err());
        let mut out = Vec::new();
        assert!(svc.get(TenantId::new(9), 0, &mut out).is_err());
    }
}
