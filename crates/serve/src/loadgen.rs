//! Multi-threaded workload driver for [`FarKvService`].
//!
//! Mirrors the access patterns the paper's serving discussion cares
//! about: a Zipfian mixed read/write stream (hot-set skew), periodic
//! sequential scans (cache-hostile), and optional bursts where one
//! tenant hammers a small hot set (noisy neighbor). Workers share a
//! global op ticket counter, so the total op count is exact regardless
//! of per-thread scheduling.
//!
//! Fault latencies are collected as raw samples per tenant and reduced
//! to exact percentiles at the end (no histogram bucketing error), and
//! a final single-threaded sweep re-reads every key the service claims
//! to hold, byte-comparing against the deterministic value pattern —
//! `lost_pages` counts keys that failed to come back intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::{Rng, RngCore, SeedableRng, Xoshiro256};
use xfm_types::{TenantId, PAGE_SIZE};

use crate::service::{FarKvService, PutResult, ServiceClass, TenantSpec};

/// Shape of the generated stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Fraction of ops that are writes.
    pub write_fraction: f64,
    /// Zipfian skew exponent for key popularity (0 = uniform).
    pub zipf_s: f64,
    /// Every this many tickets, the worker runs a sequential scan
    /// instead of one point op (0 disables scans).
    pub scan_every: u64,
    /// Keys read per scan.
    pub scan_len: u64,
    /// Optional noisy-neighbor burst phase.
    pub burst: Option<BurstSpec>,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self {
            write_fraction: 0.3,
            zipf_s: 0.99,
            scan_every: 0,
            scan_len: 0,
            burst: None,
        }
    }
}

/// A window where one tenant concentrates on a tiny hot set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// The bursting tenant.
    pub tenant: TenantId,
    /// Tickets between burst windows.
    pub period: u64,
    /// Tickets inside each window.
    pub len: u64,
    /// Size of the hammered hot set.
    pub hot_keys: u64,
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Worker threads.
    pub workers: usize,
    /// Op tickets to issue (scans consume one ticket but perform
    /// `scan_len` reads, so service-level ops can exceed this).
    pub total_ops: u64,
    /// Keyspace size per tenant.
    pub keys_per_tenant: u64,
    /// Seed for the per-worker generators and the value pattern.
    pub seed: u64,
    /// Stream shape.
    pub mix: WorkloadMix,
}

/// Per-tenant results, service counters merged with exact latency
/// percentiles from the raw samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLoadReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Its service class.
    pub class: ServiceClass,
    /// Admitted writes.
    pub puts: u64,
    /// Reads issued.
    pub gets: u64,
    /// Reads served hot.
    pub hits: u64,
    /// Reads served by a demand fault.
    pub faults: u64,
    /// Writes shed by admission control.
    pub sheds: u64,
    /// Pages demoted to the plane.
    pub demotions: u64,
    /// Median demand-fault latency (wall ns, exact).
    pub fault_p50_ns: u64,
    /// 99th-percentile demand-fault latency (wall ns, exact).
    pub fault_p99_ns: u64,
    /// Mean demand-fault latency (wall ns).
    pub fault_mean_ns: u64,
    /// Compressed bytes billed at the end of the run.
    pub compressed_bytes: u64,
}

/// Whole-run results.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Service-level ops actually performed (≥ tickets issued).
    pub total_ops: u64,
    /// Wall time for the driven phase (excludes the integrity sweep).
    pub elapsed_ns: u64,
    /// Service ops per wall second.
    pub ops_per_sec: f64,
    /// Per-tenant results, sorted by tenant id.
    pub per_tenant: Vec<TenantLoadReport>,
    /// Keys the service claimed to hold that failed to read back
    /// byte-identical in the final sweep. Must be zero.
    pub lost_pages: u64,
    /// Keys verified by the final sweep.
    pub integrity_checked: u64,
    /// Plane/service errors observed by workers. Must be zero.
    pub errors: u64,
}

/// Deterministic page-sized value for `(tenant, key)`: alternating
/// 16-byte blocks of a structured tag and seeded pseudo-random bytes,
/// so pages compress roughly 2:1 — like real serving payloads, and far
/// from the same-filled shortcut — while staying verifiable without
/// tracking overwrite versions.
#[must_use]
pub fn value_page(tenant: TenantId, key: u64, seed: u64) -> Vec<u8> {
    let mut tag = [0u8; 16];
    tag[..2].copy_from_slice(&tenant.as_u16().to_le_bytes());
    tag[2..10].copy_from_slice(&key.to_le_bytes());
    tag[10..16].copy_from_slice(&seed.to_le_bytes()[..6]);
    let mut rng = Xoshiro256::seed_from_u64(
        seed ^ key.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ u64::from(tenant.as_u16()) << 56,
    );
    let mut page = Vec::with_capacity(PAGE_SIZE);
    while page.len() < PAGE_SIZE {
        page.extend_from_slice(&tag);
        page.extend_from_slice(&rng.next_u64().to_le_bytes());
        page.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    page.truncate(PAGE_SIZE);
    page
}

/// Precomputed Zipfian CDF over `n` ranks with exponent `s`.
fn zipf_cdf(n: u64, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn zipf_sample(cdf: &[f64], rng: &mut Xoshiro256) -> u64 {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u) as u64
}

/// Exact quantile of a sorted sample set (0 when empty).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct WorkerTally {
    /// Fault latencies per tenant index (parallel to the spec slice).
    fault_ns: Vec<Vec<u64>>,
    service_ops: u64,
    errors: u64,
}

/// Drives `service` with the configured mixed workload, then sweeps
/// every stored key for integrity.
///
/// # Panics
///
/// Panics when `cfg.workers == 0`, `specs` is empty, or a burst names a
/// tenant outside `specs`.
#[must_use]
pub fn run_load(service: &FarKvService, specs: &[TenantSpec], cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(!specs.is_empty(), "need at least one tenant");
    let burst_idx = cfg.mix.burst.map(|b| {
        specs
            .iter()
            .position(|s| s.tenant == b.tenant)
            .expect("burst tenant must be provisioned")
    });
    let cdf = zipf_cdf(cfg.keys_per_tenant, cfg.mix.zipf_s);
    let issued = AtomicU64::new(0);
    let started = Instant::now();

    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let cdf = &cdf;
                let issued = &issued;
                scope.spawn(move || {
                    worker_loop(service, specs, cfg, burst_idx, cdf, issued, w as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed_ns = started.elapsed().as_nanos() as u64;

    // Merge per-worker tallies.
    let mut fault_ns: Vec<Vec<u64>> = vec![Vec::new(); specs.len()];
    let mut service_ops = 0u64;
    let mut errors = 0u64;
    for t in tallies {
        for (merged, mine) in fault_ns.iter_mut().zip(t.fault_ns) {
            merged.extend(mine);
        }
        service_ops += t.service_ops;
        errors += t.errors;
    }
    for v in &mut fault_ns {
        v.sort_unstable();
    }

    // Integrity sweep: every key the service claims to hold must read
    // back byte-identical to the deterministic pattern.
    let mut lost_pages = 0u64;
    let mut integrity_checked = 0u64;
    let mut out = Vec::with_capacity(PAGE_SIZE);
    for spec in specs {
        for key in service.keys(spec.tenant) {
            integrity_checked += 1;
            match service.get(spec.tenant, key, &mut out) {
                Ok(Some(_)) if out == value_page(spec.tenant, key, cfg.seed) => {}
                _ => lost_pages += 1,
            }
        }
    }

    let per_tenant = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let snap = service.snapshot(spec.tenant).expect("provisioned tenant");
            let lat = &fault_ns[i];
            let mean = if lat.is_empty() {
                0
            } else {
                lat.iter().sum::<u64>() / lat.len() as u64
            };
            TenantLoadReport {
                tenant: spec.tenant,
                class: spec.class,
                puts: snap.puts,
                gets: snap.gets,
                hits: snap.hits,
                faults: snap.faults,
                sheds: snap.sheds,
                demotions: snap.demotions,
                fault_p50_ns: quantile(lat, 0.50),
                fault_p99_ns: quantile(lat, 0.99),
                fault_mean_ns: mean,
                compressed_bytes: snap.compressed_bytes,
            }
        })
        .collect();

    LoadReport {
        total_ops: service_ops,
        elapsed_ns,
        ops_per_sec: if elapsed_ns == 0 {
            0.0
        } else {
            service_ops as f64 / (elapsed_ns as f64 / 1e9)
        },
        per_tenant,
        lost_pages,
        integrity_checked,
        errors,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    service: &FarKvService,
    specs: &[TenantSpec],
    cfg: &LoadConfig,
    burst_idx: Option<usize>,
    cdf: &[f64],
    issued: &AtomicU64,
    worker: u64,
) -> WorkerTally {
    let mut rng =
        Xoshiro256::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(worker));
    let mut tally = WorkerTally {
        fault_ns: vec![Vec::new(); specs.len()],
        ..WorkerTally::default()
    };
    let mut out = Vec::with_capacity(PAGE_SIZE);

    loop {
        let ticket = issued.fetch_add(1, Ordering::Relaxed);
        if ticket >= cfg.total_ops {
            break;
        }

        // Scan phase: one ticket buys a sequential read burst.
        if cfg.mix.scan_every > 0 && ticket.is_multiple_of(cfg.mix.scan_every) {
            let ti = rng.gen_range(0..specs.len());
            let start = rng.gen_range(0..cfg.keys_per_tenant);
            for j in 0..cfg.mix.scan_len {
                let key = (start + j) % cfg.keys_per_tenant;
                tally.service_ops += 1;
                match service.get(specs[ti].tenant, key, &mut out) {
                    Ok(Some(g)) => {
                        if let Some(ns) = g.fault_ns {
                            tally.fault_ns[ti].push(ns);
                        }
                    }
                    Ok(None) => {}
                    Err(_) => tally.errors += 1,
                }
            }
            continue;
        }

        // Burst phase: the noisy neighbor hammers its hot set.
        let (ti, key) = match (burst_idx, cfg.mix.burst) {
            (Some(bi), Some(b)) if b.period > 0 && ticket % b.period < b.len => {
                (bi, rng.gen_range(0..b.hot_keys.min(cfg.keys_per_tenant)))
            }
            _ => (rng.gen_range(0..specs.len()), zipf_sample(cdf, &mut rng)),
        };
        let tenant = specs[ti].tenant;
        tally.service_ops += 1;

        if rng.gen_bool(cfg.mix.write_fraction) {
            match service.put(tenant, key, &value_page(tenant, key, cfg.seed)) {
                Ok(PutResult::Stored { .. } | PutResult::Shed(_)) => {}
                Err(_) => tally.errors += 1,
            }
        } else {
            match service.get(tenant, key, &mut out) {
                Ok(Some(g)) => {
                    if let Some(ns) = g.fault_ns {
                        tally.fault_ns[ti].push(ns);
                    }
                }
                Ok(None) => {}
                Err(_) => tally.errors += 1,
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig};
    use xfm_types::ByteSize;

    #[test]
    fn zipf_cdf_is_normalized_and_skewed() {
        let cdf = zipf_cdf(100, 0.99);
        assert_eq!(cdf.len(), 100);
        assert!((cdf[99] - 1.0).abs() < 1e-9);
        // Rank 1 alone should carry far more than uniform mass.
        assert!(cdf[0] > 0.1);
    }

    #[test]
    fn quantile_is_exact_on_samples() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 0.50), 51);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&v, 1.0), 100);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn small_multi_threaded_run_loses_nothing() {
        let plane = Arc::new(ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(16),
                ..SfmConfig::default()
            },
            ..ShardedSfmConfig::default()
        }));
        let specs = vec![
            TenantSpec::new(
                TenantId::new(1),
                ByteSize::from_pages(32),
                ByteSize::from_mib(4),
            ),
            TenantSpec::new(
                TenantId::new(2),
                ByteSize::from_pages(32),
                ByteSize::from_mib(4),
            ),
        ];
        let service = FarKvService::new(plane, specs.clone());
        let report = run_load(
            &service,
            &specs,
            &LoadConfig {
                workers: 4,
                total_ops: 4_000,
                keys_per_tenant: 256,
                seed: 7,
                mix: WorkloadMix {
                    scan_every: 64,
                    scan_len: 16,
                    burst: Some(BurstSpec {
                        tenant: TenantId::new(2),
                        period: 100,
                        len: 10,
                        hot_keys: 8,
                    }),
                    ..WorkloadMix::default()
                },
            },
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.lost_pages, 0);
        assert!(report.total_ops >= 4_000);
        assert!(report.integrity_checked > 0);
        assert!(service.accounting().balanced);
    }
}
