//! Multi-tenant far-memory service plane.
//!
//! The lower crates answer *how* a page moves (codec, NMA offload,
//! refresh windows, tiering); this crate answers *who* may move one and
//! what happens when many workloads share the pool. It provides the
//! serving layer the paper's deployment section implies but never
//! spells out: a key-value front-end over any [`SwapPlane`], per-tenant
//! resident and compressed-byte quotas, admission control coupled to
//! the degraded-mode state machine, and a multi-threaded load generator
//! that reports per-tenant SLO percentiles.
//!
//! Layering:
//!
//! - [`service`] — [`service::FarKvService`]: the tenant-aware KV
//!   front-end. Hot values live in a bounded per-tenant cache; on
//!   pressure the coldest are demoted through
//!   [`SwapPlane::swap_out_ctx`] so every compressed byte is billed to
//!   the owning tenant. Reads of demoted values fault them back with
//!   [`SwapPlane::swap_in_into_ctx`], crediting the bytes back.
//! - [`loadgen`] — [`loadgen::run_load`]: Zipfian/scan/burst mixed
//!   workload across worker threads, exact per-tenant fault-latency
//!   percentiles, and a final integrity sweep proving zero lost pages.
//!
//! Accounting is exact by construction: the service ledger moves only
//! on plane outcomes (`compressed_len` on demotion and fault), so at
//! any quiescent point each tenant's ledger equals the plane's own
//! [`SwapPlane::tenant_usage`] entry and the sum equals the pool's
//! stored bytes — [`service::FarKvService::accounting`] checks both.
//!
//! [`SwapPlane`]: xfm_sfm::SwapPlane
//! [`SwapPlane::swap_out_ctx`]: xfm_sfm::SwapPlane::swap_out_ctx
//! [`SwapPlane::swap_in_into_ctx`]: xfm_sfm::SwapPlane::swap_in_into_ctx
//! [`SwapPlane::tenant_usage`]: xfm_sfm::SwapPlane::tenant_usage

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod service;

pub use loadgen::{run_load, BurstSpec, LoadConfig, LoadReport, TenantLoadReport, WorkloadMix};
pub use service::{
    AccountingReport, FarKvService, GetOutcome, GetSource, PutResult, ServiceClass, ShedReason,
    TenantSnapshot, TenantSpec,
};
