//! Differential property tests for the service front-end.
//!
//! 1. **Single-tenant equivalence**: for any op sequence, a
//!    [`FarKvService`] tenant must be observably identical to driving
//!    the plane directly with the same hot-cache policy — same values
//!    back, same presence/absence — and the accounting must reconcile
//!    after every sequence. The service adds quotas, admission, and
//!    ledgers *around* the plane; none of that may change what a
//!    single in-quota tenant reads.
//!
//! 2. **Multi-threaded accounting**: concurrent mixed-tenant traffic
//!    must leave the per-tenant ledgers summing exactly to the plane's
//!    global accounting — no interleaving may double-count or leak a
//!    byte. (`cargo test` runs this with threads actually racing.)

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use xfm_serve::{FarKvService, GetSource, PutResult, TenantSpec};
use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig};
use xfm_types::{ByteSize, TenantId, PAGE_SIZE};

/// Distinct keys the ops draw from (small enough to force collisions
/// and far-memory traffic against the tiny hot cache below).
const KEYS: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, u8),
    Get(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..KEYS, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        4 => (0..KEYS).prop_map(Op::Get),
    ]
}

/// Page contents mixing structure and per-kind noise (never
/// same-filled, compresses like a real value).
fn content(key: u64, kind: u8) -> Vec<u8> {
    let mut page: Vec<u8> = (0..PAGE_SIZE)
        .map(|i| {
            (i as u64)
                .wrapping_mul(key + 3)
                .wrapping_add(u64::from(kind)) as u8
        })
        .collect();
    page[..8].copy_from_slice(&key.to_le_bytes());
    page[8] = kind;
    page
}

fn plane() -> Arc<ShardedSfm> {
    Arc::new(ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(8),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The service path returns exactly what a model KV (and therefore
    /// the plane driven directly) would: every admitted put is
    /// readable, reads return the latest value, absent keys miss.
    /// Quotas are ample, so no op is ever shed and the far set mirrors
    /// plain plane usage.
    #[test]
    fn single_tenant_service_equals_model(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let t = TenantId::new(1);
        // Hot cache of 4 pages against 24 keys: most reads fault
        // through the plane, exercising the demote/fault cycle.
        let service = FarKvService::new(
            plane(),
            vec![TenantSpec::new(
                t,
                ByteSize::from_pages(4),
                ByteSize::from_mib(4),
            )],
        );
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut out = Vec::new();

        for op in ops {
            match op {
                Op::Put(k, kind) => {
                    let v = content(k, kind);
                    let r = service.put(t, k, &v).unwrap();
                    prop_assert!(
                        matches!(r, PutResult::Stored { .. }),
                        "in-quota put was shed: {r:?}"
                    );
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    let got = service.get(t, k, &mut out).unwrap();
                    match model.get(&k) {
                        Some(expect) => {
                            let g = got.expect("model key must be present in service");
                            prop_assert_eq!(&out, expect, "key {} contents diverge", k);
                            prop_assert!(
                                matches!(g.source, GetSource::Hot | GetSource::Fault)
                            );
                        }
                        None => prop_assert!(got.is_none(), "phantom key {}", k),
                    }
                }
            }
        }

        // Everything the model holds must still be byte-identical,
        // and the ledgers must reconcile with the plane exactly.
        for (k, expect) in &model {
            service.get(t, *k, &mut out).unwrap().expect("final sweep");
            prop_assert_eq!(&out, expect);
        }
        let acct = service.accounting();
        prop_assert!(acct.balanced, "accounting diverged: {:?}", acct);
    }

    /// Racing mixed-tenant traffic never breaks the accounting
    /// identity: sum(per-tenant service ledger) == sum(per-tenant
    /// plane usage) == the plane's stored bytes, per tenant and in
    /// total.
    #[test]
    fn concurrent_tenants_keep_accounting_balanced(
        seeds in prop::collection::vec(any::<u64>(), 4),
        ops_per_thread in 20usize..80,
    ) {
        let shared = plane();
        let specs: Vec<TenantSpec> = (1..=3)
            .map(|id| TenantSpec::new(
                TenantId::new(id),
                ByteSize::from_pages(4),
                ByteSize::from_mib(2),
            ))
            .collect();
        let service = FarKvService::new(shared.clone(), specs.clone());

        std::thread::scope(|scope| {
            for (w, &seed) in seeds.iter().enumerate() {
                let service = &service;
                let specs = &specs;
                scope.spawn(move || {
                    // Cheap deterministic per-thread op stream.
                    let mut x = seed | 1;
                    let mut out = Vec::new();
                    for i in 0..ops_per_thread {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let tenant = specs[(x >> 8) as usize % specs.len()].tenant;
                        let key = (x >> 16) % KEYS;
                        if x % 3 == 0 {
                            let v = content(key, (w as u8) ^ (i as u8));
                            service.put(tenant, key, &v).unwrap();
                        } else {
                            let _ = service.get(tenant, key, &mut out).unwrap();
                        }
                    }
                });
            }
        });

        let acct = service.accounting();
        prop_assert!(acct.balanced, "accounting diverged: {:?}", acct);
        // The identity the report is built on, re-derived here from
        // the plane side so the test does not trust the report alone.
        let plane_sum: u64 = shared.tenant_usage().iter().map(|(_, b)| b).sum();
        let ledger_sum: u64 = service
            .snapshots()
            .iter()
            .map(|s| s.compressed_bytes)
            .sum();
        prop_assert_eq!(ledger_sum, plane_sum);
        prop_assert_eq!(plane_sum, shared.pool_stats().stored_bytes.as_bytes());
    }
}
