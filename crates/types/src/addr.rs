//! Physical and virtual addresses and OS page numbers.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Size of an OS page in bytes (4 KiB), the granularity of all SFM swap
/// operations in the paper.
pub const PAGE_SIZE: usize = 4096;

/// A physical memory address as seen by the memory controller.
///
/// Physical addresses are what the DRAM address mapping decomposes into
/// channel/rank/bank/row/column coordinates.
///
/// # Examples
///
/// ```
/// use xfm_types::PhysAddr;
///
/// let a = PhysAddr::new(0x1000);
/// assert_eq!(a.as_u64(), 0x1000);
/// assert_eq!((a + 0x40).as_u64(), 0x1040);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the page this address falls in.
    #[must_use]
    pub const fn page(self) -> PageNumber {
        PageNumber(self.0 / PAGE_SIZE as u64)
    }

    /// Returns the byte offset of this address within its page.
    #[must_use]
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    #[must_use]
    pub fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0.is_multiple_of(align)
    }

    /// Rounds the address down to a multiple of `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    #[must_use]
    pub fn align_down(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Self(self.0 & !(align - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl Add<u64> for PhysAddr {
    type Output = Self;

    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl AddAssign<u64> for PhysAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<PhysAddr> for PhysAddr {
    type Output = u64;

    fn sub(self, rhs: PhysAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// A virtual address in an application's address space.
///
/// The SFM stack keys its entry table by the *virtual* page so that a
/// faulting access can find the compressed copy of its data.
///
/// # Examples
///
/// ```
/// use xfm_types::VirtAddr;
///
/// let va = VirtAddr::new(0x7fff_0000_1000);
/// assert_eq!(va.page().index(), 0x7fff_0000_1000 / 4096);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the virtual page this address falls in.
    #[must_use]
    pub const fn page(self) -> PageNumber {
        PageNumber(self.0 / PAGE_SIZE as u64)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl Add<u64> for VirtAddr {
    type Output = Self;

    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// An OS page number (address divided by [`PAGE_SIZE`]).
///
/// Swap-in/out requests, cold-page scans, and SFM entries all operate at
/// page granularity, so a dedicated index type keeps page arithmetic
/// separate from byte arithmetic.
///
/// # Examples
///
/// ```
/// use xfm_types::{PageNumber, PAGE_SIZE};
///
/// let p = PageNumber::new(7);
/// assert_eq!(p.base_addr().as_u64(), 7 * PAGE_SIZE as u64);
/// assert_eq!(p.next().index(), 8);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageNumber(u64);

impl PageNumber {
    /// Creates a page number from a raw index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of the page,
    /// interpreting this page number as a physical frame number.
    #[must_use]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE as u64)
    }

    /// Returns the next page number.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u64> for PageNumber {
    fn from(index: u64) -> Self {
        Self::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_page_round_trip() {
        let a = PhysAddr::new(5 * PAGE_SIZE as u64 + 123);
        assert_eq!(a.page(), PageNumber::new(5));
        assert_eq!(a.page_offset(), 123);
        assert_eq!(a.page().base_addr() + 123, a);
    }

    #[test]
    fn phys_addr_alignment() {
        let a = PhysAddr::new(0x1040);
        assert!(a.is_aligned(0x40));
        assert!(!a.is_aligned(0x80));
        assert_eq!(a.align_down(0x1000).as_u64(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn phys_addr_alignment_rejects_non_power_of_two() {
        let _ = PhysAddr::new(0).is_aligned(3);
    }

    #[test]
    fn phys_addr_arithmetic() {
        let a = PhysAddr::new(100);
        let b = a + 28;
        assert_eq!(b - a, 28);
        let mut c = a;
        c += 4;
        assert_eq!(c.as_u64(), 104);
    }

    #[test]
    fn virt_addr_page() {
        let va = VirtAddr::new(3 * PAGE_SIZE as u64);
        assert_eq!(va.page(), PageNumber::new(3));
        assert_eq!((va + 1).page(), PageNumber::new(3));
    }

    #[test]
    fn page_number_ordering_and_display() {
        assert!(PageNumber::new(1) < PageNumber::new(2));
        assert_eq!(PageNumber::new(9).to_string(), "page#9");
        assert_eq!(PhysAddr::new(16).to_string(), "PA:0x10");
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(PhysAddr::from(7u64).as_u64(), 7);
        assert_eq!(VirtAddr::from(7u64).as_u64(), 7);
        assert_eq!(PageNumber::from(7u64).index(), 7);
    }
}
