//! Common foundation types for the XFM reproduction.
//!
//! This crate defines the strongly-typed vocabulary shared by every other
//! crate in the workspace: physical/virtual addresses and page numbers
//! ([`addr`]), byte capacities ([`capacity`]), simulated time and bandwidth
//! ([`time`]), DRAM coordinates ([`dram`]), the shared error type
//! ([`error`]), the structured swap-path error ([`swap_error`])
//! distinguishing transient from permanent failures, tier/plane
//! identity for the multi-backend swap fabric ([`plane`]), and tenant
//! identity plus per-operation context for multi-tenant serving
//! ([`tenant`]).
//!
//! All types are plain-old-data newtypes ([C-NEWTYPE]): they are `Copy`,
//! ordered, hashable, serializable, and cost nothing at runtime while
//! preventing the classic unit mix-ups (bytes vs pages, nanoseconds vs
//! cycles, channel index vs bank index) that plague simulator code.
//!
//! # Examples
//!
//! ```
//! use xfm_types::{ByteSize, Nanos, PageNumber, PAGE_SIZE};
//!
//! let sfm = ByteSize::from_gib(512);
//! assert_eq!(sfm.as_pages(), 512 * 1024 * 1024 / 4); // 4 KiB pages
//!
//! let trfc = Nanos::from_ns(410);
//! let trefi = Nanos::from_ns(3906);
//! assert!(trfc < trefi);
//!
//! let page = PageNumber::new(42);
//! assert_eq!(page.base_addr().as_u64(), 42 * PAGE_SIZE as u64);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod capacity;
pub mod dram;
pub mod error;
pub mod plane;
pub mod swap_error;
pub mod tenant;
pub mod time;

pub use addr::{PageNumber, PhysAddr, VirtAddr, PAGE_SIZE};
pub use capacity::ByteSize;
pub use dram::{BankId, ChannelId, ColId, DimmId, DramCoord, RankId, RowId, SubarrayId};
pub use error::{Error, Result};
pub use plane::{PlacementClass, PlaneId};
pub use swap_error::{SwapError, SwapResult, SwapSite};
pub use tenant::{OpContext, TenantId};
pub use time::{Bandwidth, Cycles, Hertz, Nanos};
