//! Structured swap-path errors: where a failure originated and whether
//! retrying can help.
//!
//! The plain [`Error`] enum is a catch-all: a caller seeing `QueueFull`
//! versus `EntryExists` must hard-code knowledge of which variants are
//! transient. [`SwapError`] makes that classification part of the
//! contract — every swap-path failure carries its origin [`SwapSite`]
//! and a `retryable` verdict, so recovery layers can retry transient
//! rejects (queue full, SPM pressure, in-transit corruption) and fall
//! back or surface permanent ones without a fragile `match`.

use core::fmt;

use crate::error::Error;

/// Convenience alias for swap-path results.
pub type SwapResult<T> = core::result::Result<T, SwapError>;

/// Where on the swap path a failure originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SwapSite {
    /// Host-side submission: argument validation, duplicate entries.
    HostSubmit,
    /// The NMA compress-request queue.
    NmaQueue,
    /// The NMA scratchpad memory.
    Spm,
    /// The NMA (de)compression engine.
    NmaEngine,
    /// Refresh-window scheduling (missed or starved windows).
    RefreshWindow,
    /// The zpool slab allocator.
    Zpool,
    /// The SFM entry table.
    EntryTable,
    /// The software codec.
    Codec,
    /// Stored-block checksum verification at load time.
    Checksum,
    /// Anywhere not covered above.
    Other,
}

impl SwapSite {
    /// Stable lowercase name (used in exposition and logs).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SwapSite::HostSubmit => "host_submit",
            SwapSite::NmaQueue => "nma_queue",
            SwapSite::Spm => "spm",
            SwapSite::NmaEngine => "nma_engine",
            SwapSite::RefreshWindow => "refresh_window",
            SwapSite::Zpool => "zpool",
            SwapSite::EntryTable => "entry_table",
            SwapSite::Codec => "codec",
            SwapSite::Checksum => "checksum",
            SwapSite::Other => "other",
        }
    }
}

/// A swap-path failure with its origin and retryability.
///
/// `retryable == true` means the condition is transient: the same
/// operation, re-submitted after backing off (letting refresh windows
/// drain the queue, the SPM free slots, or a clean re-read of the
/// stored block), may succeed. `retryable == false` means the caller
/// must fall back (CPU path), reject cleanly, or surface the error.
///
/// # Examples
///
/// ```
/// use xfm_types::{Error, SwapError, SwapSite};
///
/// let e = SwapError::from(Error::QueueFull);
/// assert_eq!(e.site, SwapSite::NmaQueue);
/// assert!(e.retryable);
/// // Compatibility: a SwapError collapses back to its cause.
/// assert_eq!(Error::from(e), Error::QueueFull);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SwapError {
    /// Where the failure originated.
    pub site: SwapSite,
    /// The underlying error.
    pub cause: Error,
    /// Whether re-submitting the same operation may succeed.
    pub retryable: bool,
}

impl SwapError {
    /// Builds a swap error at `site`, classifying retryability from the
    /// cause (see [`SwapError::from`] for the default mapping).
    #[must_use]
    pub fn new(site: SwapSite, cause: Error) -> Self {
        let retryable = default_retryable(&cause);
        Self {
            site,
            cause,
            retryable,
        }
    }

    /// Overrides the retryability verdict.
    #[must_use]
    pub fn with_retryable(mut self, retryable: bool) -> Self {
        self.retryable = retryable;
        self
    }
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({})",
            self.cause,
            self.site.name(),
            if self.retryable {
                "retryable"
            } else {
                "permanent"
            }
        )
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// The default retryability of each error kind: resource pressure the
/// device drains over time and in-transit corruption are transient;
/// everything else is permanent.
fn default_retryable(cause: &Error) -> bool {
    matches!(
        cause,
        Error::SpmFull { .. } | Error::QueueFull | Error::ChecksumMismatch { .. }
    )
}

impl From<Error> for SwapError {
    /// Classifies a plain error into the site it canonically originates
    /// from. Sites the mapping cannot infer (e.g. a `Device` error from
    /// any register file) land on coarse buckets; hook code that knows
    /// better should construct via [`SwapError::new`].
    fn from(cause: Error) -> Self {
        let site = match &cause {
            Error::SpmFull { .. } => SwapSite::Spm,
            Error::QueueFull => SwapSite::NmaQueue,
            Error::SfmRegionFull => SwapSite::Zpool,
            Error::EntryNotFound { .. } | Error::EntryExists { .. } => SwapSite::EntryTable,
            Error::ChecksumMismatch { .. } => SwapSite::Checksum,
            Error::Corrupt(_) | Error::OutputTooSmall { .. } | Error::Incompressible => {
                SwapSite::Codec
            }
            Error::InvalidConfig(_) => SwapSite::HostSubmit,
            Error::Device(_) => SwapSite::NmaEngine,
            _ => SwapSite::Other,
        };
        SwapError::new(site, cause)
    }
}

impl From<SwapError> for Error {
    /// Compatibility collapse: drops the site/retryability annotation.
    fn from(e: SwapError) -> Self {
        e.cause
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_causes_are_retryable() {
        for cause in [
            Error::QueueFull,
            Error::SpmFull {
                requested: 4096,
                available: 0,
            },
            Error::ChecksumMismatch {
                page: 1,
                expected: 2,
                got: 3,
            },
        ] {
            assert!(SwapError::from(cause.clone()).retryable, "{cause}");
        }
    }

    #[test]
    fn permanent_causes_are_not_retryable() {
        for cause in [
            Error::SfmRegionFull,
            Error::EntryExists { page: 1 },
            Error::EntryNotFound { page: 1 },
            Error::Corrupt("x".into()),
            Error::InvalidConfig("x".into()),
            Error::Device("nak".into()),
        ] {
            assert!(!SwapError::from(cause.clone()).retryable, "{cause}");
        }
    }

    #[test]
    fn sites_classify_canonically() {
        assert_eq!(SwapError::from(Error::QueueFull).site, SwapSite::NmaQueue);
        assert_eq!(SwapError::from(Error::SfmRegionFull).site, SwapSite::Zpool);
        assert_eq!(
            SwapError::from(Error::EntryExists { page: 9 }).site,
            SwapSite::EntryTable
        );
        assert_eq!(
            SwapError::from(Error::Corrupt("len".into())).site,
            SwapSite::Codec
        );
    }

    #[test]
    fn round_trips_to_plain_error() {
        let e = SwapError::new(SwapSite::Checksum, Error::QueueFull).with_retryable(false);
        assert!(!e.retryable);
        assert_eq!(Error::from(e), Error::QueueFull);
    }

    #[test]
    fn display_carries_site_and_verdict() {
        let e = SwapError::from(Error::QueueFull);
        let msg = e.to_string();
        assert!(msg.contains("nma_queue"), "{msg}");
        assert!(msg.contains("retryable"), "{msg}");
        assert!(!msg.ends_with('.'), "{msg}");
    }

    #[test]
    fn swap_error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SwapError>();
    }
}
