//! Structured swap-path errors: where a failure originated and whether
//! retrying can help.
//!
//! The plain [`Error`] enum is a catch-all: a caller seeing `QueueFull`
//! versus `EntryExists` must hard-code knowledge of which variants are
//! transient. [`SwapError`] makes that classification part of the
//! contract — every swap-path failure carries its origin [`SwapSite`]
//! and a `retryable` verdict, so recovery layers can retry transient
//! rejects (queue full, SPM pressure, in-transit corruption) and fall
//! back or surface permanent ones without a fragile `match`.

use core::fmt;

use crate::error::Error;
use crate::plane::PlaneId;

/// Convenience alias for swap-path results.
pub type SwapResult<T> = core::result::Result<T, SwapError>;

/// Where on the swap path a failure originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SwapSite {
    /// Host-side submission: argument validation, duplicate entries.
    HostSubmit,
    /// The NMA compress-request queue.
    NmaQueue,
    /// The NMA scratchpad memory.
    Spm,
    /// The NMA (de)compression engine.
    NmaEngine,
    /// Refresh-window scheduling (missed or starved windows).
    RefreshWindow,
    /// The zpool slab allocator.
    Zpool,
    /// The SFM entry table.
    EntryTable,
    /// The software codec.
    Codec,
    /// Stored-block checksum verification at load time.
    Checksum,
    /// The modeled storage/network media of an SSD or remote plane.
    Media,
    /// The replication layer spanning two remote planes.
    Replica,
    /// Anywhere not covered above.
    Other,
}

impl SwapSite {
    /// Stable lowercase name (used in exposition and logs).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SwapSite::HostSubmit => "host_submit",
            SwapSite::NmaQueue => "nma_queue",
            SwapSite::Spm => "spm",
            SwapSite::NmaEngine => "nma_engine",
            SwapSite::RefreshWindow => "refresh_window",
            SwapSite::Zpool => "zpool",
            SwapSite::EntryTable => "entry_table",
            SwapSite::Codec => "codec",
            SwapSite::Checksum => "checksum",
            SwapSite::Media => "media",
            SwapSite::Replica => "replica",
            SwapSite::Other => "other",
        }
    }
}

/// A swap-path failure with its origin and retryability.
///
/// `retryable == true` means the condition is transient: the same
/// operation, re-submitted after backing off (letting refresh windows
/// drain the queue, the SPM free slots, or a clean re-read of the
/// stored block), may succeed. `retryable == false` means the caller
/// must fall back (CPU path), reject cleanly, or surface the error.
///
/// # Examples
///
/// ```
/// use xfm_types::{Error, SwapError, SwapSite};
///
/// let e = SwapError::from(Error::QueueFull);
/// assert_eq!(e.site, SwapSite::NmaQueue);
/// assert!(e.retryable);
/// // Compatibility: a SwapError collapses back to its cause.
/// assert_eq!(Error::from(e), Error::QueueFull);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SwapError {
    /// Where the failure originated.
    pub site: SwapSite,
    /// The underlying error.
    pub cause: Error,
    /// Whether re-submitting the same operation may succeed.
    pub retryable: bool,
    /// The tier/plane the failure originated on, when the failing layer
    /// is part of a tiered composition (`None` for standalone planes).
    pub plane: Option<PlaneId>,
}

impl SwapError {
    /// Builds a swap error at `site`, classifying retryability from the
    /// cause (see [`SwapError::from`] for the default mapping).
    #[must_use]
    pub fn new(site: SwapSite, cause: Error) -> Self {
        let retryable = default_retryable(&cause);
        Self {
            site,
            cause,
            retryable,
            plane: None,
        }
    }

    /// Overrides the retryability verdict.
    #[must_use]
    pub fn with_retryable(mut self, retryable: bool) -> Self {
        self.retryable = retryable;
        self
    }

    /// Annotates the error with the tier/plane it originated on.
    #[must_use]
    pub fn with_plane(mut self, plane: PlaneId) -> Self {
        self.plane = Some(plane);
        self
    }

    /// Where the failure originated.
    ///
    /// Prefer this accessor over the public field in `match` guards:
    /// `SwapError` is `#[non_exhaustive]`, so accessors keep callers
    /// compiling as the struct grows.
    #[must_use]
    pub fn site(&self) -> SwapSite {
        self.site
    }

    /// The underlying error.
    #[must_use]
    pub fn cause(&self) -> &Error {
        &self.cause
    }

    /// Whether re-submitting the same operation *to the same plane* may
    /// succeed.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.retryable
    }

    /// The tier/plane the failure originated on, if known.
    #[must_use]
    pub fn plane(&self) -> Option<PlaneId> {
        self.plane
    }

    /// Whether the failed operation could plausibly succeed if re-issued
    /// against a *different* tier.
    ///
    /// This is the placement-spill predicate: capacity pressure
    /// (`SfmRegionFull`, `SpmFull`), queue rejection (`QueueFull`), and
    /// a dead device are all local to the plane that reported them —
    /// another tier may well accept the page. Logical failures
    /// (`EntryExists`, `EntryNotFound`, corrupt payloads, bad config)
    /// would fail identically everywhere.
    #[must_use]
    pub fn is_retryable_on_other_tier(&self) -> bool {
        matches!(
            self.cause,
            Error::SfmRegionFull | Error::SpmFull { .. } | Error::QueueFull | Error::Device(_)
        )
    }

    /// Whether the failure is capacity exhaustion on the reporting plane.
    #[must_use]
    pub fn is_capacity(&self) -> bool {
        matches!(self.cause, Error::SfmRegionFull | Error::SpmFull { .. })
    }

    /// Whether the failure is data corruption (stored or in transit).
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self.cause,
            Error::ChecksumMismatch { .. } | Error::Corrupt(_)
        )
    }
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({})",
            self.cause,
            self.site.name(),
            if self.retryable {
                "retryable"
            } else {
                "permanent"
            }
        )?;
        if let Some(plane) = self.plane {
            write!(f, " on {plane}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// The default retryability of each error kind: resource pressure the
/// device drains over time and in-transit corruption are transient;
/// everything else is permanent.
fn default_retryable(cause: &Error) -> bool {
    matches!(
        cause,
        Error::SpmFull { .. } | Error::QueueFull | Error::ChecksumMismatch { .. }
    )
}

impl From<Error> for SwapError {
    /// Classifies a plain error into the site it canonically originates
    /// from. Sites the mapping cannot infer (e.g. a `Device` error from
    /// any register file) land on coarse buckets; hook code that knows
    /// better should construct via [`SwapError::new`].
    fn from(cause: Error) -> Self {
        let site = match &cause {
            Error::SpmFull { .. } => SwapSite::Spm,
            Error::QueueFull => SwapSite::NmaQueue,
            Error::SfmRegionFull => SwapSite::Zpool,
            Error::EntryNotFound { .. } | Error::EntryExists { .. } => SwapSite::EntryTable,
            Error::ChecksumMismatch { .. } => SwapSite::Checksum,
            Error::Corrupt(_) | Error::OutputTooSmall { .. } | Error::Incompressible => {
                SwapSite::Codec
            }
            Error::InvalidConfig(_) => SwapSite::HostSubmit,
            Error::Device(_) => SwapSite::NmaEngine,
            _ => SwapSite::Other,
        };
        SwapError::new(site, cause)
    }
}

impl From<SwapError> for Error {
    /// Compatibility collapse: drops the site/retryability annotation.
    fn from(e: SwapError) -> Self {
        e.cause
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_causes_are_retryable() {
        for cause in [
            Error::QueueFull,
            Error::SpmFull {
                requested: 4096,
                available: 0,
            },
            Error::ChecksumMismatch {
                page: 1,
                expected: 2,
                got: 3,
            },
        ] {
            assert!(SwapError::from(cause.clone()).retryable, "{cause}");
        }
    }

    #[test]
    fn permanent_causes_are_not_retryable() {
        for cause in [
            Error::SfmRegionFull,
            Error::EntryExists { page: 1 },
            Error::EntryNotFound { page: 1 },
            Error::Corrupt("x".into()),
            Error::InvalidConfig("x".into()),
            Error::Device("nak".into()),
        ] {
            assert!(!SwapError::from(cause.clone()).retryable, "{cause}");
        }
    }

    #[test]
    fn sites_classify_canonically() {
        assert_eq!(SwapError::from(Error::QueueFull).site, SwapSite::NmaQueue);
        assert_eq!(SwapError::from(Error::SfmRegionFull).site, SwapSite::Zpool);
        assert_eq!(
            SwapError::from(Error::EntryExists { page: 9 }).site,
            SwapSite::EntryTable
        );
        assert_eq!(
            SwapError::from(Error::Corrupt("len".into())).site,
            SwapSite::Codec
        );
    }

    #[test]
    fn round_trips_to_plain_error() {
        let e = SwapError::new(SwapSite::Checksum, Error::QueueFull).with_retryable(false);
        assert!(!e.retryable);
        assert_eq!(Error::from(e), Error::QueueFull);
    }

    #[test]
    fn display_carries_site_and_verdict() {
        let e = SwapError::from(Error::QueueFull);
        let msg = e.to_string();
        assert!(msg.contains("nma_queue"), "{msg}");
        assert!(msg.contains("retryable"), "{msg}");
        assert!(!msg.ends_with('.'), "{msg}");
    }

    #[test]
    fn swap_error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SwapError>();
    }

    #[test]
    fn plane_annotation_threads_through() {
        let e = SwapError::from(Error::SfmRegionFull).with_plane(PlaneId::new(2));
        assert_eq!(e.plane(), Some(PlaneId::new(2)));
        assert!(e.to_string().contains("plane2"), "{e}");
        // Un-annotated errors stay silent about planes.
        assert_eq!(SwapError::from(Error::QueueFull).plane(), None);
    }

    #[test]
    fn cross_tier_retry_verdicts() {
        // Capacity and device pressure are local to one plane.
        for cause in [
            Error::SfmRegionFull,
            Error::SpmFull {
                requested: 4096,
                available: 0,
            },
            Error::QueueFull,
            Error::Device("dead".into()),
        ] {
            assert!(
                SwapError::from(cause.clone()).is_retryable_on_other_tier(),
                "{cause}"
            );
        }
        // Logical failures would fail identically on any tier.
        for cause in [
            Error::EntryExists { page: 1 },
            Error::EntryNotFound { page: 1 },
            Error::Corrupt("x".into()),
            Error::InvalidConfig("x".into()),
        ] {
            assert!(
                !SwapError::from(cause.clone()).is_retryable_on_other_tier(),
                "{cause}"
            );
        }
    }

    #[test]
    fn capacity_and_corruption_classifiers() {
        assert!(SwapError::from(Error::SfmRegionFull).is_capacity());
        assert!(!SwapError::from(Error::QueueFull).is_capacity());
        assert!(SwapError::from(Error::ChecksumMismatch {
            page: 1,
            expected: 2,
            got: 3,
        })
        .is_corruption());
        assert!(SwapError::from(Error::Corrupt("len".into())).is_corruption());
        assert!(!SwapError::from(Error::SfmRegionFull).is_corruption());
    }
}
