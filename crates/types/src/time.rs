//! Simulated time, clock frequency, and bandwidth.
//!
//! The DRAM model works in picosecond-resolution timestamps stored as `u64`
//! (enough for ~213 days of simulated time), exposed through the [`Nanos`]
//! newtype. DRAM datasheet timings are all integral in picoseconds, so no
//! floating-point drift can accumulate in the timing model.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::capacity::ByteSize;

/// A duration or timestamp with picosecond resolution.
///
/// Despite the name (which matches the unit used throughout the paper),
/// the internal representation is picoseconds so that sub-nanosecond DRAM
/// parameters such as `tBURST = 0.625 ns` for DDR5-3200 are exact.
///
/// # Examples
///
/// ```
/// use xfm_types::Nanos;
///
/// let trfc = Nanos::from_ns(410);
/// let t_burst = Nanos::from_ps(2500);
/// assert_eq!(t_burst.as_ns_f64(), 2.5);
/// assert_eq!((trfc + t_burst).as_ps(), 412_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Self = Self(0);

    /// Maximum representable duration (`u64::MAX` picoseconds, ~213
    /// days). Event drivers use it as the "idle, nothing scheduled"
    /// sentinel when folding `Option<Nanos>` deadlines with `min`.
    pub const MAX: Self = Self(u64::MAX);

    /// Creates a duration from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Self(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Self(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Self(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000_000)
    }

    /// Returns the duration in picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole nanoseconds (truncating).
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in nanoseconds as a float.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in microseconds as a float.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in milliseconds as a float.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Returns `true` if the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: clamps at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at the maximum representable
    /// duration instead of overflowing. Use when accumulating unbounded
    /// sums (e.g. merging statistics) where `+`'s debug-build overflow
    /// panic is unacceptable.
    #[must_use]
    pub const fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// How many whole periods of `period` fit into this duration.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn periods(self, period: Self) -> u64 {
        assert!(!period.is_zero(), "period must be non-zero");
        self.0 / period.0
    }

    /// Round up to the next multiple of `period` (an instant already on a
    /// boundary is returned unchanged). Saturates at [`Nanos::MAX`].
    ///
    /// Discrete-event drivers use this to find the end of the refresh
    /// window containing an instant: `t.align_up(t_refi)`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn align_up(self, period: Self) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            Self(self.0.saturating_add(period.0 - rem))
        }
    }

    /// Round down to the previous multiple of `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn align_down(self, period: Self) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        Self(self.0 - self.0 % period.0)
    }

    /// Checked subtraction: `None` if `rhs > self`.
    #[must_use]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.0.checked_sub(rhs.0).map(Self)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else {
            write!(f, "{ps} ps")
        }
    }
}

impl Add for Nanos {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Self;

    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Self;

    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|n| n.0).sum())
    }
}

/// A cycle count for a clocked component (CPU core or DDR bus).
///
/// # Examples
///
/// ```
/// use xfm_types::{Cycles, Hertz};
///
/// let c = Cycles::new(2_600_000_000);
/// let f = Hertz::from_ghz(2.6);
/// assert!((c.at(f).as_secs_f64() - 1.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Self = Self(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Converts the cycle count to a duration at clock frequency `freq`.
    #[must_use]
    pub fn at(self, freq: Hertz) -> Nanos {
        // ps = cycles * 1e12 / hz; use f64 then round — cycle counts in the
        // models here are far below 2^52 so this is exact enough.
        Nanos::from_ps((self.0 as f64 * 1e12 / freq.as_hz()).round() as u64)
    }
}

impl Add for Cycles {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock frequency.
///
/// # Examples
///
/// ```
/// use xfm_types::Hertz;
///
/// let f = Hertz::from_mhz(3200.0);
/// assert_eq!(f.as_ghz(), 3.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from raw hertz.
    #[must_use]
    pub const fn from_hz(hz: f64) -> Self {
        Self(hz)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub const fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[must_use]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[must_use]
    pub const fn as_hz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the period of one clock cycle.
    #[must_use]
    pub fn period(self) -> Nanos {
        Nanos::from_ps((1e12 / self.0).round() as u64)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.as_ghz())
    }
}

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use xfm_types::{Bandwidth, ByteSize, Nanos};
///
/// let bw = Bandwidth::from_gbps(25.6);
/// let t = bw.time_for(ByteSize::from_kib(4));
/// assert!((t.as_ns_f64() - 160.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Self = Self(0.0);

    /// Creates a bandwidth from bytes per second.
    #[must_use]
    pub const fn from_bytes_per_sec(bps: f64) -> Self {
        Self(bps)
    }

    /// Creates a bandwidth from gigabytes (1e9 bytes) per second.
    #[must_use]
    pub const fn from_gbps(gbps: f64) -> Self {
        Self(gbps * 1e9)
    }

    /// Creates a bandwidth from megabytes (1e6 bytes) per second.
    #[must_use]
    pub const fn from_mbps(mbps: f64) -> Self {
        Self(mbps * 1e6)
    }

    /// Returns the rate in bytes per second.
    #[must_use]
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in GB/s (1e9 bytes).
    #[must_use]
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Computes the average bandwidth of moving `bytes` in `elapsed`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    #[must_use]
    pub fn average(bytes: ByteSize, elapsed: Nanos) -> Self {
        assert!(!elapsed.is_zero(), "elapsed time must be non-zero");
        Self(bytes.as_bytes() as f64 / elapsed.as_secs_f64())
    }

    /// Returns the time needed to transfer `bytes` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    #[must_use]
    pub fn time_for(self, bytes: ByteSize) -> Nanos {
        assert!(self.0 > 0.0, "bandwidth must be positive");
        Nanos::from_ps((bytes.as_bytes() as f64 / self.0 * 1e12).round() as u64)
    }
}

impl Add for Bandwidth {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GB/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MB/s", self.0 / 1e6)
        } else {
            write!(f, "{:.0} B/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_units() {
        assert_eq!(Nanos::from_ns(1).as_ps(), 1_000);
        assert_eq!(Nanos::from_us(1), Nanos::from_ns(1_000));
        assert_eq!(Nanos::from_ms(1), Nanos::from_us(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_ms(1_000));
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_ns(100);
        let b = Nanos::from_ns(60);
        assert_eq!(a + b, Nanos::from_ns(160));
        assert_eq!(a - b, Nanos::from_ns(40));
        assert_eq!(a * 3, Nanos::from_ns(300));
        assert_eq!(a / 4, Nanos::from_ns(25));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.saturating_add(b), Nanos::from_ns(160));
        assert_eq!(
            Nanos::from_ps(u64::MAX).saturating_add(a),
            Nanos::from_ps(u64::MAX)
        );
    }

    #[test]
    fn nanos_periods_counts_trefi_in_retention() {
        // The paper: 8192 REF commands per 32 ms retention interval.
        let retention = Nanos::from_ms(32);
        let trefi = retention / 8192;
        assert_eq!(retention.periods(trefi), 8192);
    }

    #[test]
    fn nanos_display_scales() {
        assert_eq!(Nanos::from_ps(500).to_string(), "500 ps");
        assert_eq!(Nanos::from_ns(410).to_string(), "410.000 ns");
        assert_eq!(Nanos::from_us(4).to_string(), "4.000 us");
        assert_eq!(Nanos::from_ms(32).to_string(), "32.000 ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000 s");
    }

    #[test]
    fn cycles_to_time() {
        // 7.65e9 cycles at 2.6 GHz (the paper's per-GB compression cost)
        // should be ~2.94 s.
        let t = Cycles::new(7_650_000_000).at(Hertz::from_ghz(2.6));
        assert!((t.as_secs_f64() - 2.9423).abs() < 1e-3);
    }

    #[test]
    fn hertz_period() {
        // DDR5-3200: 1600 MHz clock -> 0.625 ns period.
        let p = Hertz::from_mhz(1600.0).period();
        assert_eq!(p.as_ps(), 625);
    }

    #[test]
    fn bandwidth_round_trip() {
        let bw = Bandwidth::from_gbps(8.5);
        let bytes = ByteSize::from_gib(1);
        let t = bw.time_for(bytes);
        let back = Bandwidth::average(bytes, t);
        assert!((back.as_gbps() - 8.5).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(25.6).to_string(), "25.60 GB/s");
        assert_eq!(Bandwidth::from_mbps(426.0).to_string(), "426.00 MB/s");
    }

    #[test]
    fn align_up_and_down() {
        let refi = Nanos::from_ns(3900);
        assert_eq!(Nanos::ZERO.align_up(refi), Nanos::ZERO);
        assert_eq!(Nanos::from_ns(1).align_up(refi), refi);
        assert_eq!(refi.align_up(refi), refi);
        assert_eq!(Nanos::from_ns(3901).align_down(refi), refi);
        assert_eq!(Nanos::from_ns(3899).align_down(refi), Nanos::ZERO);
        assert_eq!(Nanos::MAX.align_up(Nanos::from_ns(7)), Nanos::MAX);
    }

    #[test]
    fn checked_sub_behaves() {
        let a = Nanos::from_ns(10);
        let b = Nanos::from_ns(3);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_ns(7)));
        assert_eq!(b.checked_sub(a), None);
    }
}
