//! The shared error type for the XFM workspace.

use core::fmt;

/// Convenience alias for `Result` with the workspace [`Error`].
pub type Result<T> = core::result::Result<T, Error>;

/// Errors produced by the XFM stack.
///
/// # Examples
///
/// ```
/// use xfm_types::Error;
///
/// let e = Error::SpmFull {
///     requested: 4096,
///     available: 1024,
/// };
/// assert_eq!(
///     e.to_string(),
///     "scratchpad memory full: requested 4096 bytes, 1024 available"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The NMA scratchpad memory cannot hold the staged data.
    SpmFull {
        /// Bytes the operation needed.
        requested: u64,
        /// Bytes actually free.
        available: u64,
    },
    /// The compress request queue is full; the caller must fall back to CPU.
    QueueFull,
    /// The SFM region has no room for another compressed page.
    SfmRegionFull,
    /// No SFM entry exists for the requested page.
    EntryNotFound {
        /// Index of the page that was looked up.
        page: u64,
    },
    /// An entry for this page already exists in the SFM.
    EntryExists {
        /// Index of the page that collided.
        page: u64,
    },
    /// Compressed data failed validation during decompression.
    Corrupt(String),
    /// A stored block's checksum did not match at load time (in-transit
    /// corruption); the stored copy is still intact, so a re-read may
    /// succeed.
    ChecksumMismatch {
        /// Index of the page whose block failed verification.
        page: u64,
        /// Checksum recorded at store time.
        expected: u64,
        /// Checksum computed over the fetched bytes.
        got: u64,
    },
    /// The compressed output would not fit the provided buffer.
    OutputTooSmall {
        /// Bytes needed.
        needed: usize,
        /// Capacity of the destination buffer.
        capacity: usize,
    },
    /// Data did not shrink under compression; callers should store it raw.
    Incompressible,
    /// A configuration parameter is invalid.
    InvalidConfig(String),
    /// A physical address fell outside the modeled DRAM capacity.
    AddressOutOfRange {
        /// The offending address.
        addr: u64,
        /// Modeled capacity in bytes.
        capacity: u64,
    },
    /// A DRAM command violated a timing constraint (simulator bug guard).
    TimingViolation(String),
    /// The device (register file) rejected an operation.
    Device(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SpmFull {
                requested,
                available,
            } => write!(
                f,
                "scratchpad memory full: requested {requested} bytes, {available} available"
            ),
            Error::QueueFull => write!(f, "compress request queue full"),
            Error::SfmRegionFull => write!(f, "SFM region has no free space"),
            Error::EntryNotFound { page } => write!(f, "no SFM entry for page {page}"),
            Error::EntryExists { page } => write!(f, "SFM entry for page {page} already exists"),
            Error::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
            Error::ChecksumMismatch {
                page,
                expected,
                got,
            } => write!(
                f,
                "checksum mismatch for page {page}: stored {expected:#018x}, fetched {got:#018x}"
            ),
            Error::OutputTooSmall { needed, capacity } => write!(
                f,
                "output buffer too small: need {needed} bytes, have {capacity}"
            ),
            Error::Incompressible => write!(f, "data is incompressible"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::AddressOutOfRange { addr, capacity } => write!(
                f,
                "address {addr:#x} out of range for {capacity}-byte memory"
            ),
            Error::TimingViolation(msg) => write!(f, "DRAM timing violation: {msg}"),
            Error::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let cases: Vec<Error> = vec![
            Error::QueueFull,
            Error::SfmRegionFull,
            Error::EntryNotFound { page: 3 },
            Error::EntryExists { page: 3 },
            Error::Corrupt("bad length".into()),
            Error::ChecksumMismatch {
                page: 7,
                expected: 1,
                got: 2,
            },
            Error::OutputTooSmall {
                needed: 10,
                capacity: 5,
            },
            Error::Incompressible,
            Error::InvalidConfig("x".into()),
            Error::AddressOutOfRange {
                addr: 0x10,
                capacity: 8,
            },
            Error::TimingViolation("tRC".into()),
            Error::Device("nak".into()),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
            // Lowercase per C-GOOD-ERR, except acronyms like "SFM"/"DRAM".
            let first_word = msg.split_whitespace().next().unwrap();
            let acronym = first_word.chars().all(|c| c.is_uppercase());
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase() || first.is_numeric() || acronym,
                "{msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
