//! Byte capacities with binary-unit constructors.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::addr::PAGE_SIZE;

/// A size in bytes, with convenience constructors for binary units.
///
/// Used for DRAM capacities, SFM region sizes, scratchpad sizes, and
/// compressed-data accounting throughout the workspace.
///
/// # Examples
///
/// ```
/// use xfm_types::ByteSize;
///
/// let spm = ByteSize::from_mib(8);
/// assert_eq!(spm.as_bytes(), 8 * 1024 * 1024);
/// assert_eq!(spm.as_pages(), 2048);
/// assert_eq!(spm.to_string(), "8.00 MiB");
///
/// let far = ByteSize::from_gib(512);
/// assert_eq!(far / spm, 65536);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a size from KiB (1024 bytes).
    #[must_use]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a size from MiB.
    #[must_use]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }

    /// Creates a size from GiB.
    #[must_use]
    pub const fn from_gib(gib: u64) -> Self {
        Self(gib * 1024 * 1024 * 1024)
    }

    /// Creates a size from 4 KiB pages.
    #[must_use]
    pub const fn from_pages(pages: u64) -> Self {
        Self(pages * PAGE_SIZE as u64)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in whole KiB (truncating).
    #[must_use]
    pub const fn as_kib(self) -> u64 {
        self.0 / 1024
    }

    /// Returns the size in whole MiB (truncating).
    #[must_use]
    pub const fn as_mib(self) -> u64 {
        self.0 / (1024 * 1024)
    }

    /// Returns the size in whole GiB (truncating).
    #[must_use]
    pub const fn as_gib(self) -> u64 {
        self.0 / (1024 * 1024 * 1024)
    }

    /// Returns the size in GiB as a float (for cost-model arithmetic).
    #[must_use]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Returns the number of whole 4 KiB pages in this size (truncating).
    #[must_use]
    pub const fn as_pages(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Returns `true` if the size is zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Returns the smaller of two sizes.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two sizes.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let b = self.0 as f64;
        if b >= GIB {
            write!(f, "{:.2} GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for ByteSize {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = Self;

    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = u64;

    /// Integer ratio of two sizes (truncating).
    fn div(self, rhs: ByteSize) -> u64 {
        self.0 / rhs.0
    }
}

impl Div<u64> for ByteSize {
    type Output = Self;

    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|b| b.0).sum())
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        Self::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
        assert_eq!(ByteSize::from_pages(1).as_bytes(), 4096);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_kib(4);
        let b = ByteSize::from_kib(1);
        assert_eq!(a + b, ByteSize::from_kib(5));
        assert_eq!(a - b, ByteSize::from_kib(3));
        assert_eq!(a * 2, ByteSize::from_kib(8));
        assert_eq!(a / b, 4);
        assert_eq!(a / 2, ByteSize::from_kib(2));
        let total: ByteSize = [a, b, b].into_iter().sum();
        assert_eq!(total, ByteSize::from_kib(6));
    }

    #[test]
    fn saturating_and_checked_sub() {
        let small = ByteSize::from_bytes(10);
        let big = ByteSize::from_bytes(20);
        assert_eq!(small.saturating_sub(big), ByteSize::ZERO);
        assert_eq!(small.checked_sub(big), None);
        assert_eq!(big.checked_sub(small), Some(ByteSize::from_bytes(10)));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::from_bytes(12).to_string(), "12 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::from_gib(512).to_string(), "512.00 GiB");
    }

    #[test]
    fn gib_f64_round_trips_for_whole_gib() {
        let s = ByteSize::from_gib(512);
        assert!((s.as_gib_f64() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let a = ByteSize::from_kib(1);
        let b = ByteSize::from_kib(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
