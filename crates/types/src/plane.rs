//! Tier/plane identity for the multi-backend swap fabric.
//!
//! A tiered far-memory system composes several swap planes — the
//! compressed local zpool, a modeled SSD, one or more remote nodes —
//! behind one surface. [`PlaneId`] names an individual plane instance
//! (stable across the run, used in error annotations and telemetry),
//! and [`PlacementClass`] names the *kind* of media a page landed on,
//! which is what demotion policy and latency accounting care about.

use core::fmt;

/// Stable identity of one swap plane inside a tiered composition.
///
/// Ids are assigned by the composing layer (tier 0 = hottest) and are
/// threaded through [`SwapError`](crate::SwapError) annotations and
/// lifecycle telemetry so a failure or demotion can always be traced
/// to the plane it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaneId(u32);

impl PlaneId {
    /// Builds a plane id from its tier index.
    #[must_use]
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// The raw tier index.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PlaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plane{}", self.0)
    }
}

/// The kind of media a swap plane models.
///
/// Ordering is by distance from the CPU: `CompressedLocal` (DRAM
/// zpool) is the hottest far-memory class, `Ssd` sits behind it, and
/// `Remote` (network-attached memory) is the coldest. The class drives
/// demotion direction and is recorded in lifecycle events (packed into
/// the `aux` word next to the plane id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum PlacementClass {
    /// Compressed pages in local DRAM (the classic zswap/zpool tier).
    CompressedLocal,
    /// A local solid-state drive, latency/bandwidth modeled.
    Ssd,
    /// Memory on a remote node reached over the fabric.
    Remote,
}

impl PlacementClass {
    /// Stable lowercase name (used in exposition, JSON, and logs).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PlacementClass::CompressedLocal => "compressed_local",
            PlacementClass::Ssd => "ssd",
            PlacementClass::Remote => "remote",
        }
    }

    /// Stable wire code, for packing into telemetry words.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            PlacementClass::CompressedLocal => 0,
            PlacementClass::Ssd => 1,
            PlacementClass::Remote => 2,
        }
    }

    /// Inverse of [`PlacementClass::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(PlacementClass::CompressedLocal),
            1 => Some(PlacementClass::Ssd),
            2 => Some(PlacementClass::Remote),
            _ => None,
        }
    }
}

impl fmt::Display for PlacementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_id_round_trips() {
        let id = PlaneId::new(3);
        assert_eq!(id.as_u32(), 3);
        assert_eq!(id.to_string(), "plane3");
    }

    #[test]
    fn placement_codes_round_trip() {
        for class in [
            PlacementClass::CompressedLocal,
            PlacementClass::Ssd,
            PlacementClass::Remote,
        ] {
            assert_eq!(PlacementClass::from_code(class.code()), Some(class));
        }
        assert_eq!(PlacementClass::from_code(3), None);
    }

    #[test]
    fn placement_orders_by_distance() {
        assert!(PlacementClass::CompressedLocal < PlacementClass::Ssd);
        assert!(PlacementClass::Ssd < PlacementClass::Remote);
    }
}
