//! Tenant identity and per-operation context for the multi-tenant
//! swap fabric.
//!
//! A far-memory deployment serves many independent workloads from one
//! shared compressed pool, so every swap-path operation needs to say
//! *whose* page it moves: quotas, accounting, admission control, and
//! per-tenant SLO reporting all hang off that identity. [`TenantId`]
//! names one workload, and [`OpContext`] bundles the identity with the
//! placement hint and optional deadline that travel alongside each
//! operation through [`SwapPlane`]-shaped seams.
//!
//! The context is deliberately tiny (`Copy`, three words) so threading
//! it through the hot path costs registers, not allocations.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::plane::PlacementClass;
use crate::time::Nanos;

/// Stable identity of one tenant (workload) sharing the swap fabric.
///
/// Tenant 0 is reserved as [`TenantId::SYSTEM`]: the implicit owner of
/// every operation issued through the context-free legacy surface, and
/// of internal traffic (compaction, rebalancing) that no user tenant
/// should be billed for. Telemetry packs the id into an 8-bit wire
/// code, so deployments are limited to 255 user tenants per process —
/// far memory is shared by workload class, not by end user, so this is
/// not a practical bound.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(u16);

impl TenantId {
    /// The reserved system tenant: legacy context-free callers and
    /// internal plane traffic account here.
    pub const SYSTEM: Self = Self(0);

    /// Builds a tenant id from its raw index.
    #[must_use]
    pub const fn new(id: u16) -> Self {
        Self(id)
    }

    /// The raw tenant index.
    #[must_use]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Whether this is the reserved system tenant.
    #[must_use]
    pub const fn is_system(self) -> bool {
        self.0 == 0
    }

    /// Stable 8-bit wire code for packing into telemetry words.
    ///
    /// Ids above 255 saturate to 255 on the wire; accounting stays
    /// exact (it keys on the full id), only packed lifecycle events
    /// alias in that regime.
    #[must_use]
    pub const fn code(self) -> u8 {
        if self.0 > u8::MAX as u16 {
            u8::MAX
        } else {
            self.0 as u8
        }
    }

    /// Inverse of [`TenantId::code`] for unpacking telemetry words.
    #[must_use]
    pub const fn from_code(code: u8) -> Self {
        Self(code as u16)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Per-operation context carried through the swap path.
///
/// Bundles the tenant to bill, the placement class the caller would
/// like the page to land on (a *hint* — tiering policy may override
/// it), and an optional completion deadline used by admission control
/// to shed already-late work.
///
/// # Examples
///
/// ```
/// use xfm_types::{OpContext, PlacementClass, TenantId};
///
/// let ctx = OpContext::for_tenant(TenantId::new(3));
/// assert_eq!(ctx.tenant, TenantId::new(3));
/// assert_eq!(ctx.class, PlacementClass::CompressedLocal);
/// assert!(ctx.deadline.is_none());
///
/// // The legacy context-free surface routes through the system tenant.
/// assert!(OpContext::SYSTEM.tenant.is_system());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpContext {
    /// Tenant to account this operation to.
    pub tenant: TenantId,
    /// Preferred placement class (tiering start hint).
    pub class: PlacementClass,
    /// Absolute virtual-time deadline, if the caller has an SLO.
    pub deadline: Option<Nanos>,
}

impl OpContext {
    /// The implicit context of every context-free operation: system
    /// tenant, hottest placement class, no deadline.
    pub const SYSTEM: Self = Self {
        tenant: TenantId::SYSTEM,
        class: PlacementClass::CompressedLocal,
        deadline: None,
    };

    /// A context billing `tenant` with default placement and no
    /// deadline.
    #[must_use]
    pub const fn for_tenant(tenant: TenantId) -> Self {
        Self {
            tenant,
            class: PlacementClass::CompressedLocal,
            deadline: None,
        }
    }

    /// Returns `self` with the placement hint replaced.
    #[must_use]
    pub const fn with_class(mut self, class: PlacementClass) -> Self {
        self.class = class;
        self
    }

    /// Returns `self` with the deadline replaced.
    #[must_use]
    pub const fn with_deadline(mut self, deadline: Nanos) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for OpContext {
    fn default() -> Self {
        Self::SYSTEM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_round_trips() {
        let t = TenantId::new(7);
        assert_eq!(t.as_u16(), 7);
        assert_eq!(t.to_string(), "tenant7");
        assert_eq!(TenantId::from_code(t.code()), t);
        assert!(!t.is_system());
        assert!(TenantId::SYSTEM.is_system());
    }

    #[test]
    fn wire_code_saturates_above_u8() {
        assert_eq!(TenantId::new(255).code(), 255);
        assert_eq!(TenantId::new(256).code(), 255);
        assert_eq!(TenantId::new(u16::MAX).code(), 255);
    }

    #[test]
    fn system_context_is_default() {
        assert_eq!(OpContext::default(), OpContext::SYSTEM);
        assert!(OpContext::SYSTEM.tenant.is_system());
        assert_eq!(OpContext::SYSTEM.class, PlacementClass::CompressedLocal);
        assert!(OpContext::SYSTEM.deadline.is_none());
    }

    #[test]
    fn builders_replace_fields() {
        let ctx = OpContext::for_tenant(TenantId::new(2))
            .with_class(PlacementClass::Ssd)
            .with_deadline(Nanos::from_ns(500));
        assert_eq!(ctx.tenant, TenantId::new(2));
        assert_eq!(ctx.class, PlacementClass::Ssd);
        assert_eq!(ctx.deadline, Some(Nanos::from_ns(500)));
    }
}
