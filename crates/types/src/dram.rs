//! DRAM coordinate types: channel, DIMM, rank, bank, subarray, row, column.
//!
//! The DRAM main-memory system is a five-dimensional hierarchy (paper §2.2):
//! channels contain ranks, ranks contain banks, banks contain subarrays of
//! rows. Each level gets its own index newtype so a bank index can never be
//! passed where a row index is expected.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! coord_newtype {
    ($(#[$meta:meta])* $name:ident, $display:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an index from a raw value.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize` for slice indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self::new(index)
            }
        }
    };
}

coord_newtype!(
    /// Index of a DDR channel.
    ChannelId,
    "ch"
);
coord_newtype!(
    /// Index of a DIMM within a channel.
    DimmId,
    "dimm"
);
coord_newtype!(
    /// Index of a rank within a channel.
    RankId,
    "rank"
);
coord_newtype!(
    /// Index of a bank within a rank.
    BankId,
    "bank"
);
coord_newtype!(
    /// Index of a subarray within a bank (each subarray holds 512 rows and
    /// has its own local row buffer — the structure XFM's Fig. 7 latches
    /// exploit).
    SubarrayId,
    "sa"
);
coord_newtype!(
    /// Index of a row within a bank.
    RowId,
    "row"
);
coord_newtype!(
    /// Column (burst-granule) index within a row.
    ColId,
    "col"
);

/// A fully-resolved DRAM location produced by the address mapping.
///
/// # Examples
///
/// ```
/// use xfm_types::{BankId, ChannelId, ColId, DramCoord, RankId, RowId};
///
/// let c = DramCoord {
///     channel: ChannelId::new(0),
///     rank: RankId::new(1),
///     bank: BankId::new(3),
///     row: RowId::new(0x1f00),
///     col: ColId::new(2),
/// };
/// assert_eq!(c.to_string(), "ch0/rank1/bank3/row7936/col2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DramCoord {
    /// DDR channel.
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Column (burst granule) within the row.
    pub col: ColId,
}

impl fmt::Display for DramCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rank{}/bank{}/row{}/col{}",
            self.channel.index(),
            self.rank.index(),
            self.bank.index(),
            self.row.index(),
            self.col.index()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_round_trip() {
        assert_eq!(ChannelId::new(3).index(), 3);
        assert_eq!(BankId::from(7u32).as_usize(), 7);
        assert_eq!(RowId::new(65535).index(), 65535);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ChannelId::new(1).to_string(), "ch1");
        assert_eq!(RankId::new(0).to_string(), "rank0");
        assert_eq!(SubarrayId::new(255).to_string(), "sa255");
    }

    #[test]
    fn ordering_is_derived_per_field() {
        let a = DramCoord {
            row: RowId::new(1),
            ..DramCoord::default()
        };
        let b = DramCoord {
            row: RowId::new(2),
            ..DramCoord::default()
        };
        assert!(a < b);
    }
}
