//! Proves the steady-state codec hot path performs no heap allocation.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The test
//! warms a [`Scratch`] up (first pages size every internal buffer), then
//! turns the counter on and pushes more pages through
//! `compress_into`/`decompress_into` with pre-reserved output buffers:
//! the count must stay at zero. This pins the tentpole property — after
//! warm-up, tokenize + entropy encode + bitstream emit touch no heap.
//!
//! This file intentionally holds a single `#[test]` so no concurrent
//! test can allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use xfm_compress::{AutoCodec, Codec, Corpus, Scratch, XDeflate, XDeflateFse, Xlz};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed only on the test thread, so allocations from test-harness
    /// service threads don't pollute the count. Const-initialized: the
    /// first access inside the allocator hook must not itself allocate.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PAGE: usize = 4096;

#[test]
fn steady_state_hot_path_does_not_allocate() {
    let xdef = XDeflate::default();
    let xdef_fse = XDeflateFse::default();
    let xlz = Xlz::default();
    let auto = AutoCodec::default();
    let codecs: [&dyn Codec; 4] = [&xdef, &xdef_fse, &xlz, &auto];

    // Warm-up corpus includes a random page: it maximizes the token
    // count (all literals) and the bitstream length, so every internal
    // buffer reaches its worst-case 4 KiB-page capacity. The runs page
    // exercises the auto probe's xlz route without the same-filled
    // short-circuit upstream planes would take.
    let mut runs = vec![0u8; PAGE];
    runs[PAGE / 2..].fill(0xFF);
    let warmup: Vec<Vec<u8>> = vec![
        Corpus::RandomBytes.generate(7, PAGE),
        Corpus::Json.generate(1, PAGE),
        Corpus::EnglishText.generate(2, PAGE),
        runs.clone(),
    ];
    // Steady-state pages are distinct from the warm-up ones, and cover
    // all three auto routes (fse, raw, xlz).
    let mut steady: Vec<Vec<u8>> = (10..18u64)
        .map(|s| Corpus::Json.generate(s, PAGE))
        .collect();
    steady.push(Corpus::RandomBytes.generate(21, PAGE));
    steady.push(runs);

    let mut scratch = Scratch::new();
    // Output buffers sized for the worst case (stored-block fallback is
    // src + header; xlz worst case adds ~1/255 overhead).
    let mut compressed = Vec::with_capacity(2 * PAGE);
    let mut restored = Vec::with_capacity(2 * PAGE);

    for codec in codecs {
        for page in &warmup {
            compressed.clear();
            codec
                .compress_into(page, &mut compressed, &mut scratch)
                .unwrap();
            restored.clear();
            codec
                .decompress_into(&compressed, &mut restored, &mut scratch)
                .unwrap();
            assert_eq!(&restored, page);
        }
    }

    // Batch-decompress setup: blocks and slice-of-slices views are
    // built (and the per-page dsts pre-sized) before the counter arms,
    // mirroring a swap-in prefetch batch reusing its buffers.
    let fse_blocks: Vec<Vec<u8>> = steady
        .iter()
        .map(|p| {
            let mut b = Vec::with_capacity(2 * PAGE);
            xdef_fse.compress_into(p, &mut b, &mut scratch).unwrap();
            b
        })
        .collect();
    let fse_srcs: Vec<&[u8]> = fse_blocks.iter().map(Vec::as_slice).collect();
    let mut batch_dsts: Vec<Vec<u8>> = (0..steady.len())
        .map(|_| Vec::with_capacity(2 * PAGE))
        .collect();
    xdef_fse
        .decompress_batch_into(&fse_srcs, &mut batch_dsts, &mut scratch)
        .unwrap();

    ALLOC_CALLS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    for codec in codecs {
        for page in &steady {
            compressed.clear();
            codec
                .compress_into(page, &mut compressed, &mut scratch)
                .unwrap();
            restored.clear();
            codec
                .decompress_into(&compressed, &mut restored, &mut scratch)
                .unwrap();
        }
    }
    for dst in &mut batch_dsts {
        dst.clear();
    }
    xdef_fse
        .decompress_batch_into(&fse_srcs, &mut batch_dsts, &mut scratch)
        .unwrap();
    ARMED.with(|armed| armed.set(false));
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    // Validate outside the armed window (assert_eq formats on failure).
    for codec in codecs {
        for page in &steady {
            compressed.clear();
            codec
                .compress_into(page, &mut compressed, &mut scratch)
                .unwrap();
            restored.clear();
            codec
                .decompress_into(&compressed, &mut restored, &mut scratch)
                .unwrap();
            assert_eq!(&restored, page, "{} round trip", codec.name());
        }
    }
    for (dst, page) in batch_dsts.iter().zip(&steady) {
        assert_eq!(dst, page, "batch decompress round trip");
    }

    assert_eq!(
        allocs, 0,
        "steady-state compress/decompress hot path allocated {allocs} times"
    );
}
