//! Differential proptests pinning the FSE/tANS stage to a naive
//! reference coder, plus proofs that per-page codec selection never
//! loses data.
//!
//! The reference coder below shares nothing with `fse.rs` but the
//! published conventions (spread walk, walk-order occurrence numbering,
//! encoder states in `TABLE..2*TABLE`): it finds the number of
//! transition bits by shifting until the sub-state lands in `[f, 2f)`
//! and looks occurrences up in explicit per-symbol position lists. Any
//! fused-loop or bit-packing bug in the production tables diverges from
//! it on the first symbol.

use proptest::prelude::*;
use xfm_compress::bitio::{BackwardBitWriter, BitReader, BitWriter};
use xfm_compress::fse::{normalize_freqs, read_norm, write_norm, FseDecoder, FseEncoder};
use xfm_compress::{AutoCodec, Codec, Scratch, XDeflateFse};

const LOG: u32 = 9;
const TS: u32 = 1 << LOG;

/// The transparent reference: explicit walk-position bookkeeping, loops
/// instead of bit tricks.
struct RefCoder {
    norm: Vec<u16>,
    /// Walk position of occurrence `k` of each symbol.
    occ: Vec<Vec<u32>>,
    /// `(symbol, occurrence)` stored at each walk position.
    slots: Vec<(u16, u32)>,
}

impl RefCoder {
    fn new(norm: &[u16]) -> Self {
        let ts = 1usize << LOG;
        let step = (ts >> 1) + (ts >> 3) + 3;
        let mut occ = vec![Vec::new(); norm.len()];
        let mut slots = vec![(0u16, 0u32); ts];
        let mut pos = 0usize;
        for (s, &f) in norm.iter().enumerate() {
            for k in 0..u32::from(f) {
                occ[s].push(pos as u32);
                slots[pos] = (s as u16, k);
                pos = (pos + step) % ts;
            }
        }
        Self {
            norm: norm.to_vec(),
            occ,
            slots,
        }
    }

    /// Encodes one symbol from encoder state `x` in `TS..2*TS`,
    /// returning `(bits, nbits, next_state)`.
    fn encode(&self, sym: usize, x: u32) -> (u32, u32, u32) {
        let f = u32::from(self.norm[sym]);
        assert!(f > 0, "encoding an absent symbol");
        let mut nb = 0;
        while (x >> nb) >= 2 * f {
            nb += 1;
        }
        let sub = x >> nb;
        assert!((f..2 * f).contains(&sub));
        let bits = x & ((1u32 << nb) - 1);
        (bits, nb, TS + self.occ[sym][(sub - f) as usize])
    }

    /// Decodes the symbol at decoder state `state` (a walk position in
    /// `0..TS`), returning `(symbol, next_state)`.
    fn decode(&self, state: u32, r: &mut BitReader<'_>) -> (u16, u32) {
        let (sym, k) = self.slots[state as usize];
        let f = u32::from(self.norm[sym as usize]);
        let c = f + k;
        let nb = LOG - (31 - c.leading_zeros());
        let bits = r.read_bits(nb).unwrap();
        (sym, (c << nb) - TS + bits)
    }
}

/// Symbol sequences with skewed-to-flat distributions, the shapes the
/// LZ token stream produces.
fn arb_symbols() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Flat random bytes.
        prop::collection::vec(any::<u8>(), 1..3000),
        // Skewed small alphabet.
        prop::collection::vec(prop::sample::select(vec![0u8, 1, 1, 1, 2, 7, 255]), 1..3000),
        // Single symbol (degenerate table: one symbol owns every state).
        (any::<u8>(), 1usize..2000).prop_map(|(b, n)| vec![b; n]),
    ]
}

fn arb_page() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..6000),
        prop::collection::vec(
            prop::sample::select(vec![b'{', b'}', b'a', b' ', 0u8]),
            0..6000
        ),
        (any::<u8>(), 0usize..5000).prop_map(|(b, n)| vec![b; n]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production encoder's per-step output and the decode table's
    /// per-step transitions both match the reference coder exactly, and
    /// the stream round-trips through both decoders.
    #[test]
    fn fse_matches_reference_coder(data in arb_symbols()) {
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let mut norm = Vec::new();
        let present = normalize_freqs(&freqs, &mut norm, LOG);
        prop_assert!(present >= 1);

        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let reference = RefCoder::new(&norm);

        // Backward pass, stepping both encoders in lockstep.
        let mut bw = BackwardBitWriter::default();
        bw.begin(2 * data.len() + 64);
        let mut state = FseEncoder::<LOG>::INITIAL_STATE;
        for &b in data.iter().rev() {
            let (want_bits, want_nb, want_state) = reference.encode(b as usize, state);
            let (bits, nb) = enc.encode_raw(b as usize, &mut state);
            prop_assert_eq!((bits, nb), (want_bits, want_nb), "encode step diverged");
            prop_assert_eq!(state, want_state, "encode transition diverged");
            bw.push(bits, nb);
        }
        bw.push(state - TS, LOG);
        let (pad, body) = bw.finish();
        let body = body.to_vec();

        // Forward pass with the reference decoder.
        let mut r = BitReader::new(&body);
        r.read_bits(pad).unwrap();
        let mut state = r.read_bits(LOG).unwrap();
        let mut restored = Vec::with_capacity(data.len());
        for _ in 0..data.len() {
            let (sym, next) = reference.decode(state, &mut r);
            restored.push(sym as u8);
            state = next;
        }
        prop_assert_eq!(&restored, &data, "reference decode round trip");

        // And with the production decode table, asserting each
        // transition agrees with the reference.
        let mut dec = FseDecoder::<LOG>::default();
        dec.rebuild(&norm).unwrap();
        let view = dec.view();
        let mut r = BitReader::new(&body);
        let mut rr = BitReader::new(&body);
        r.read_bits(pad).unwrap();
        rr.read_bits(pad).unwrap();
        let mut state = r.read_bits(LOG).unwrap();
        let mut ref_state = rr.read_bits(LOG).unwrap();
        restored.clear();
        for _ in 0..data.len() {
            let (want_sym, want_next) = reference.decode(ref_state, &mut rr);
            ref_state = want_next;
            let sym = view.step(&mut state, &mut r).unwrap();
            prop_assert_eq!(sym, want_sym, "decode symbol diverged");
            prop_assert_eq!(state, want_next, "decode transition diverged");
            restored.push(sym as u8);
        }
        prop_assert_eq!(&restored, &data, "production decode round trip");
    }

    /// Normalization invariants hold for arbitrary frequency vectors,
    /// including max-frequency saturation: one symbol hoarding nearly
    /// the whole table is clamped to `TS - 1` so the rest keep a state.
    #[test]
    fn normalize_invariants(freqs in prop::collection::vec(0u64..10_000, 1..300),
                            saturate in any::<bool>()) {
        let mut freqs = freqs;
        if saturate {
            freqs[0] = u64::MAX / 2;
            if freqs.len() > 1 {
                freqs[1] = freqs[1].max(1);
            }
        }
        let mut norm = Vec::new();
        let present = normalize_freqs(&freqs, &mut norm, LOG);
        prop_assert_eq!(present, freqs.iter().filter(|&&f| f > 0).count());
        if present == 0 {
            prop_assert!(norm.iter().all(|&n| n == 0));
            return Ok(());
        }
        let total: u32 = norm.iter().map(|&n| u32::from(n)).sum();
        prop_assert_eq!(total, TS);
        for (&f, &n) in freqs.iter().zip(&norm) {
            prop_assert_eq!(f > 0, n > 0, "presence preserved");
            prop_assert!(u32::from(n) <= TS - u32::from(present > 1));
        }
        // The normalized table must build working coder tables.
        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let mut dec = FseDecoder::<LOG>::default();
        dec.rebuild(&norm).unwrap();

        // And its serialized form round-trips bit-exactly.
        let mut w = BitWriter::new();
        write_norm(&mut w, &norm, LOG);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut back = Vec::new();
        read_norm(&mut r, norm.len(), &mut back, LOG).unwrap();
        prop_assert_eq!(back, norm);
    }

    /// The full xdef-fse codec round-trips arbitrary inputs (empty
    /// input and single-symbol pages included) byte-exactly.
    #[test]
    fn xdef_fse_round_trip(data in arb_page()) {
        let codec = XDeflateFse::default();
        let mut scratch = Scratch::new();
        let mut c = Vec::new();
        codec.compress_into(&data, &mut c, &mut scratch).unwrap();
        let mut d = Vec::new();
        codec.decompress_into(&c, &mut d, &mut scratch).unwrap();
        prop_assert_eq!(d, data);
    }

    /// Per-page codec selection never loses data, whatever the probe
    /// decides — and never expands a page by more than its tag byte.
    #[test]
    fn codec_selection_never_loses_data(data in arb_page()) {
        let codec = AutoCodec::default();
        let mut scratch = Scratch::new();
        let mut c = Vec::new();
        codec.compress_into(&data, &mut c, &mut scratch).unwrap();
        prop_assert!(c.len() <= data.len() + 1, "expansion beyond tag byte");
        let mut d = Vec::new();
        codec.decompress_into(&c, &mut d, &mut scratch).unwrap();
        prop_assert_eq!(d, data);
    }

    /// Corrupting an auto block never panics: it decodes to an error or
    /// to different bytes, but stays memory-safe and terminates.
    #[test]
    fn codec_selection_corruption_never_panics(data in arb_page(), flip in 0usize..64) {
        let codec = AutoCodec::default();
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        if !c.is_empty() {
            let i = flip % c.len();
            c[i] ^= 0x41;
            let mut d = Vec::new();
            let _ = codec.decompress(&c, &mut d);
        }
    }
}

/// The fixed edge cases the issue calls out, checked deterministically
/// on top of the property sweeps.
#[test]
fn fse_edge_cases() {
    // Empty input: no frequencies, normalize reports zero present
    // symbols, and the codec stores a zero-length stream that restores
    // to empty.
    let mut norm = Vec::new();
    assert_eq!(normalize_freqs(&[0u64; 256], &mut norm, LOG), 0);
    let codec = XDeflateFse::default();
    let mut c = Vec::new();
    codec.compress(&[], &mut c).unwrap();
    let mut d = Vec::new();
    codec.decompress(&c, &mut d).unwrap();
    assert!(d.is_empty());

    // Single-symbol page: the symbol owns every state, so each token
    // costs zero transition bits.
    let mut freqs = [0u64; 256];
    freqs[b'z' as usize] = 4096;
    assert_eq!(normalize_freqs(&freqs, &mut norm, LOG), 1);
    assert_eq!(u32::from(norm[b'z' as usize]), TS);
    let mut enc = FseEncoder::<LOG>::default();
    enc.rebuild(&norm).unwrap();
    let mut state = FseEncoder::<LOG>::INITIAL_STATE;
    let (_, nb) = enc.encode_raw(b'z' as usize, &mut state);
    assert_eq!(nb, 0, "single-symbol tables emit zero bits per symbol");

    // Max-frequency saturation: a dominant symbol is clamped to TS - 1
    // and the straggler keeps exactly one state.
    let mut freqs = [0u64; 256];
    freqs[0] = u64::MAX / 4;
    freqs[1] = 1;
    assert_eq!(normalize_freqs(&freqs, &mut norm, LOG), 2);
    assert_eq!(u32::from(norm[0]), TS - 1);
    assert_eq!(norm[1], 1);
    enc.rebuild(&norm).unwrap();
    let reference = RefCoder::new(&norm);
    let mut state = FseEncoder::<LOG>::INITIAL_STATE;
    for sym in [0usize, 0, 1, 0, 1, 1, 0] {
        let (want_bits, want_nb, want_state) = reference.encode(sym, state);
        let (bits, nb) = enc.encode_raw(sym, &mut state);
        assert_eq!((bits, nb, state), (want_bits, want_nb, want_state));
    }
}
