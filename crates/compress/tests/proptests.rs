//! Property-based tests for the compression codecs.

use proptest::prelude::*;
use xfm_compress::lz77::{expand, MatchFinder};
use xfm_compress::ratio::{gather_interleaved, split_interleaved};
use xfm_compress::{Codec, Scratch, XDeflate, Xlz};

/// Byte-string strategies that mix compressible structure with noise.
fn arb_data() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Raw random bytes.
        prop::collection::vec(any::<u8>(), 0..6000),
        // Repeated motif with noise in between.
        (
            prop::collection::vec(any::<u8>(), 1..24),
            1usize..200,
            any::<u8>()
        )
            .prop_map(|(motif, reps, sep)| {
                let mut out = Vec::new();
                for i in 0..reps {
                    out.extend_from_slice(&motif);
                    if i % 3 == 0 {
                        out.push(sep);
                    }
                }
                out
            }),
        // Low-entropy alphabet.
        prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', 0u8]), 0..5000),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// xdeflate round-trips arbitrary inputs byte-exactly.
    #[test]
    fn xdeflate_round_trip(data in arb_data()) {
        let codec = XDeflate::default();
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        let mut d = Vec::new();
        codec.decompress(&c, &mut d).unwrap();
        prop_assert_eq!(d, data);
    }

    /// xlz round-trips arbitrary inputs byte-exactly.
    #[test]
    fn xlz_round_trip(data in arb_data()) {
        let codec = Xlz::default();
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        let mut d = Vec::new();
        codec.decompress(&c, &mut d).unwrap();
        prop_assert_eq!(d, data);
    }

    /// The LZ77 tokenizer is lossless for every finder profile.
    #[test]
    fn lz77_tokenize_expand_identity(data in arb_data()) {
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            prop_assert_eq!(expand(&mf.tokenize(&data)), data.clone());
        }
    }

    /// Interleaved split/gather is the identity for any DIMM count.
    #[test]
    fn split_gather_identity(data in prop::collection::vec(any::<u8>(), 0..9000),
                             n in 1usize..8) {
        let shares = split_interleaved(&data, n);
        prop_assert_eq!(gather_interleaved(&shares), data);
    }

    /// Decompressing corrupted xdeflate data never panics (errors or
    /// produces different output, but must not crash).
    #[test]
    fn xdeflate_corruption_never_panics(data in arb_data(), flip in 0usize..64) {
        let codec = XDeflate::default();
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        if !c.is_empty() {
            let idx = flip % c.len();
            c[idx] ^= 1 << (flip % 8);
            let mut out = Vec::new();
            let _ = codec.decompress(&c, &mut out);
        }
    }

    /// Reused scratch state never changes codec output: compressing a
    /// sequence of inputs through one `Scratch` yields byte-identical
    /// streams to fresh-state `compress`, for both codecs, and the
    /// scratch decompress path restores the original bytes.
    #[test]
    fn scratch_reuse_is_byte_identical(inputs in prop::collection::vec(arb_data(), 1..5)) {
        let xdef = XDeflate::default();
        let xlz = Xlz::default();
        let mut scratch = Scratch::new();
        for data in &inputs {
            for codec in [&xdef as &dyn Codec, &xlz as &dyn Codec] {
                let mut fresh = Vec::new();
                codec.compress(data, &mut fresh).unwrap();
                let mut reused = Vec::new();
                codec.compress_into(data, &mut reused, &mut scratch).unwrap();
                prop_assert_eq!(&fresh, &reused, "{} diverged with reused scratch", codec.name());
                let mut back = Vec::new();
                codec.decompress_into(&reused, &mut back, &mut scratch).unwrap();
                prop_assert_eq!(&back, data);
            }
        }
    }

    /// Same for xlz.
    #[test]
    fn xlz_corruption_never_panics(data in arb_data(), flip in 0usize..64) {
        let codec = Xlz::default();
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        if !c.is_empty() {
            let idx = flip % c.len();
            c[idx] ^= 1 << (flip % 8);
            let mut out = Vec::new();
            let _ = codec.decompress(&c, &mut out);
        }
    }
}
