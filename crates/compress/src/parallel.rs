//! Multi-threaded page compression.
//!
//! Production SFM deployments run the compression daemon across several
//! cores (Google's `kreclaimd`; the paper's cost model provisions more
//! than three Xeon-class CPUs of cycles at a 100% promotion rate). This
//! module provides the corresponding data path: a work-stealing-free,
//! deterministic fan-out that compresses a batch of pages over a fixed
//! thread count.
//!
//! Inputs are [`bytes::Bytes`] slices so callers can carve pages out of
//! one large buffer without copying.

use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use xfm_telemetry::Registry;
use xfm_types::{Error, Result};

use crate::codec::Codec;
use crate::scratch::Scratch;

/// Result of compressing one page in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageResult {
    /// Index of the page within the submitted batch.
    pub index: usize,
    /// Compressed bytes.
    pub compressed: Vec<u8>,
}

/// Compresses `pages` with `threads` workers, returning per-page results
/// in submission order. Results are identical to a serial run — the
/// fan-out only changes wall-clock time, never output.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `threads` is zero, or the first
/// codec failure encountered.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use xfm_compress::parallel::compress_pages;
/// use xfm_compress::{Corpus, XDeflate};
///
/// let buffer = Bytes::from(Corpus::Json.generate(1, 16 * 4096));
/// let pages: Vec<Bytes> = (0..16).map(|i| buffer.slice(i * 4096..(i + 1) * 4096)).collect();
/// let results = compress_pages(&XDeflate::default(), &pages, 4)?;
/// assert_eq!(results.len(), 16);
/// assert!(results.iter().all(|r| r.compressed.len() < 4096));
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub fn compress_pages<C>(codec: &C, pages: &[Bytes], threads: usize) -> Result<Vec<PageResult>>
where
    C: Codec + Sync + ?Sized,
{
    compress_pages_inner(codec, pages, threads, None)
}

/// [`compress_pages`] with telemetry: each worker records its per-page
/// compression latency into `xfm_compress_latency_ns` and bumps
/// `xfm_parallel_pages_compressed_total` on `registry`, concurrently
/// from every thread (recording is lock-free). Output is identical to
/// the untraced call.
///
/// # Errors
///
/// Same conditions as [`compress_pages`].
pub fn compress_pages_traced<C>(
    codec: &C,
    pages: &[Bytes],
    threads: usize,
    registry: &Registry,
) -> Result<Vec<PageResult>>
where
    C: Codec + Sync + ?Sized,
{
    compress_pages_inner(codec, pages, threads, Some(registry))
}

/// Streaming variant of [`compress_pages`]: instead of collecting
/// results, each compressed page is handed to `sink` on the worker
/// thread that produced it, as soon as it is ready. This is the batched
/// swap-out handoff of the sharded data plane — the sink routes each
/// store-back to the owning shard, so no shard lock is ever held while
/// a page is being compressed.
///
/// `sink` runs concurrently from every worker; delivery order across
/// pages is unspecified (compressed bytes themselves are deterministic).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `threads` is zero, or the first
/// codec failure encountered (pages already delivered stay delivered).
pub fn compress_pages_streamed<C>(
    codec: &C,
    pages: &[Bytes],
    threads: usize,
    sink: impl Fn(PageResult) + Sync,
) -> Result<()>
where
    C: Codec + Sync + ?Sized,
{
    compress_pages_streamed_inner(codec, pages, threads, None, sink)
}

/// [`compress_pages_streamed`] with per-page compression latency and
/// throughput recording on `registry` (same series as
/// [`compress_pages_traced`]).
///
/// # Errors
///
/// Same conditions as [`compress_pages_streamed`].
pub fn compress_pages_streamed_traced<C>(
    codec: &C,
    pages: &[Bytes],
    threads: usize,
    registry: &Registry,
    sink: impl Fn(PageResult) + Sync,
) -> Result<()>
where
    C: Codec + Sync + ?Sized,
{
    compress_pages_streamed_inner(codec, pages, threads, Some(registry), sink)
}

fn compress_pages_inner<C>(
    codec: &C,
    pages: &[Bytes],
    threads: usize,
    registry: Option<&Registry>,
) -> Result<Vec<PageResult>>
where
    C: Codec + Sync + ?Sized,
{
    let results: Mutex<Vec<Option<PageResult>>> = Mutex::new(vec![None; pages.len()]);
    compress_pages_streamed_inner(codec, pages, threads, registry, |r| {
        let index = r.index;
        results.lock()[index] = Some(r);
    })?;
    Ok(results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every page compressed"))
        .collect())
}

fn compress_pages_streamed_inner<C>(
    codec: &C,
    pages: &[Bytes],
    threads: usize,
    registry: Option<&Registry>,
    sink: impl Fn(PageResult) + Sync,
) -> Result<()>
where
    C: Codec + Sync + ?Sized,
{
    let telemetry = registry.map(|r| {
        (
            r.histogram("xfm_compress_latency_ns"),
            r.counter("xfm_parallel_pages_compressed_total"),
        )
    });
    if threads == 0 {
        return Err(Error::InvalidConfig("threads must be non-zero".into()));
    }
    if pages.is_empty() {
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(pages.len()) {
            scope.spawn(|_| {
                // One scratch per worker: the codec's hash chains, token
                // buffers, and entropy coders warm up on the first page
                // and are reused for every page the worker claims.
                let mut scratch = Scratch::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= pages.len() {
                        break;
                    }
                    let mut compressed = Vec::with_capacity(pages[index].len());
                    let start = telemetry.as_ref().map(|_| std::time::Instant::now());
                    match codec.compress_into(&pages[index], &mut compressed, &mut scratch) {
                        Ok(_) => {
                            if let (Some((hist, count)), Some(start)) = (&telemetry, start) {
                                hist.record(
                                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                                count.inc();
                            }
                            sink(PageResult { index, compressed });
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            break;
                        }
                    }
                }
            });
        }
    })
    .expect("compression workers do not panic");

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(())
}

/// Blocks claimed per batch-decompress work unit: long enough for the
/// FSE codec's decode-table cache to pay off on runs of same-header
/// blocks, short enough to keep the tail balanced across workers.
const DECOMPRESS_CLAIM: usize = 8;

/// Decompresses `blocks` with `threads` workers, returning restored
/// pages in submission order. Workers claim runs of
/// [`DECOMPRESS_CLAIM`] blocks and feed each run through
/// [`Codec::decompress_batch_into`], so per-block setup (FSE decode
/// tables, hash-chain generations) is amortized exactly as on the
/// serial swap-in path. Output is identical to a serial run.
///
/// This is the prefetch-side counterpart of
/// [`compress_pages_streamed`]: swap-in readahead hands a batch of
/// compressed far-memory blocks here and gets pages back.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `threads` is zero, or the
/// first corrupt block encountered.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use xfm_compress::parallel::{compress_pages, decompress_pages, split_pages};
/// use xfm_compress::{Corpus, XDeflateFse};
///
/// let codec = XDeflateFse::default();
/// let buffer = Bytes::from(Corpus::Json.generate(1, 16 * 4096));
/// let pages = split_pages(&buffer, 4096);
/// let blocks: Vec<Bytes> = compress_pages(&codec, &pages, 4)?
///     .into_iter()
///     .map(|r| Bytes::from(r.compressed))
///     .collect();
/// let restored = decompress_pages(&codec, &blocks, 4)?;
/// assert!(restored.iter().zip(&pages).all(|(r, p)| r == p.as_ref()));
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub fn decompress_pages<C>(codec: &C, blocks: &[Bytes], threads: usize) -> Result<Vec<Vec<u8>>>
where
    C: Codec + Sync + ?Sized,
{
    if threads == 0 {
        return Err(Error::InvalidConfig("threads must be non-zero".into()));
    }
    if blocks.is_empty() {
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Vec<u8>>>> = Mutex::new(vec![None; blocks.len()]);
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(blocks.len().div_ceil(DECOMPRESS_CLAIM)) {
            scope.spawn(|_| {
                let mut scratch = Scratch::new();
                loop {
                    let start = next.fetch_add(DECOMPRESS_CLAIM, Ordering::Relaxed);
                    if start >= blocks.len() {
                        break;
                    }
                    let end = (start + DECOMPRESS_CLAIM).min(blocks.len());
                    let srcs: Vec<&[u8]> = blocks[start..end].iter().map(Bytes::as_ref).collect();
                    let mut dsts = vec![Vec::new(); end - start];
                    match codec.decompress_batch_into(&srcs, &mut dsts, &mut scratch) {
                        Ok(()) => {
                            let mut slots = results.lock();
                            for (slot, page) in slots[start..end].iter_mut().zip(dsts) {
                                *slot = Some(page);
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            break;
                        }
                    }
                }
            });
        }
    })
    .expect("decompression workers do not panic");

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every block decompressed"))
        .collect())
}

/// Runs an arbitrary per-page transform over a fixed worker pool,
/// returning results in submission order. Each worker owns a reusable
/// codec [`Scratch`], so scratch-aware transforms (multi-channel
/// `pack_page`, ratio probes) run allocation-free after warm-up. The
/// XFM backend uses this to compress whole demotion batches off the
/// serial path before scheduling them into refresh windows.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `threads` is zero, or the first
/// transform failure encountered.
pub fn map_pages<R, F>(pages: &[Bytes], threads: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, &Bytes, &mut Scratch) -> Result<R> + Sync,
{
    if threads == 0 {
        return Err(Error::InvalidConfig("threads must be non-zero".into()));
    }
    if pages.is_empty() {
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..pages.len()).map(|_| None).collect());
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(pages.len()) {
            scope.spawn(|_| {
                let mut scratch = Scratch::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= pages.len() {
                        break;
                    }
                    match f(index, &pages[index], &mut scratch) {
                        Ok(r) => results.lock()[index] = Some(r),
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            break;
                        }
                    }
                }
            });
        }
    })
    .expect("map workers do not panic");

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every page mapped"))
        .collect())
}

/// Splits a buffer into page-sized [`Bytes`] slices (zero-copy).
///
/// The final slice may be shorter than `page_size`.
///
/// # Panics
///
/// Panics if `page_size` is zero.
#[must_use]
pub fn split_pages(buffer: &Bytes, page_size: usize) -> Vec<Bytes> {
    assert!(page_size > 0, "page_size must be non-zero");
    let mut out = Vec::with_capacity(buffer.len().div_ceil(page_size));
    let mut start = 0;
    while start < buffer.len() {
        let end = (start + page_size).min(buffer.len());
        out.push(buffer.slice(start..end));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::xdeflate::XDeflate;

    fn pages() -> Vec<Bytes> {
        let buffer = Bytes::from(Corpus::LogLines.generate(3, 32 * 4096));
        split_pages(&buffer, 4096)
    }

    #[test]
    fn parallel_matches_serial_output() {
        let codec = XDeflate::default();
        let pages = pages();
        let serial = compress_pages(&codec, &pages, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = compress_pages(&codec, &pages, threads).unwrap();
            assert_eq!(parallel, serial, "threads {threads}");
        }
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let codec = XDeflate::default();
        let results = compress_pages(&codec, &pages(), 4).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn round_trips_decompress() {
        let codec = XDeflate::default();
        let pages = pages();
        let results = compress_pages(&codec, &pages, 4).unwrap();
        for (page, r) in pages.iter().zip(&results) {
            let mut out = Vec::new();
            codec.decompress(&r.compressed, &mut out).unwrap();
            assert_eq!(out, page.as_ref());
        }
    }

    #[test]
    fn traced_batch_records_from_every_worker() {
        let codec = XDeflate::default();
        let pages = pages();
        let registry = Registry::new();
        let traced = compress_pages_traced(&codec, &pages, 4, &registry).unwrap();
        assert_eq!(traced, compress_pages(&codec, &pages, 4).unwrap());
        let s = registry.snapshot();
        assert_eq!(
            s.counters["xfm_parallel_pages_compressed_total"],
            pages.len() as u64
        );
        let h = &s.histograms["xfm_compress_latency_ns"];
        assert_eq!(h.count, pages.len() as u64);
        assert!(h.p50 > 0);
    }

    #[test]
    fn batch_decompress_matches_serial_for_every_codec() {
        let pages = pages();
        let codecs: [&(dyn Codec + Sync); 3] = [
            &XDeflate::default(),
            &crate::XDeflateFse::default(),
            &crate::AutoCodec::default(),
        ];
        for codec in codecs {
            let blocks: Vec<Bytes> = compress_pages(codec, &pages, 4)
                .unwrap()
                .into_iter()
                .map(|r| Bytes::from(r.compressed))
                .collect();
            for threads in [1usize, 3, 8] {
                let restored = decompress_pages(codec, &blocks, threads).unwrap();
                assert_eq!(restored.len(), pages.len());
                for (r, p) in restored.iter().zip(&pages) {
                    assert_eq!(r, p.as_ref(), "{} threads {threads}", codec.name());
                }
            }
        }
    }

    #[test]
    fn batch_decompress_surfaces_corruption() {
        let codec = crate::XDeflateFse::default();
        let pages = pages();
        let mut blocks: Vec<Bytes> = compress_pages(&codec, &pages, 4)
            .unwrap()
            .into_iter()
            .map(|r| Bytes::from(r.compressed))
            .collect();
        blocks[17] = Bytes::from(vec![0xFF, 0xFE, 0xFD]);
        assert!(decompress_pages(&codec, &blocks, 4).is_err());
        assert!(decompress_pages(&codec, &[], 4).unwrap().is_empty());
    }

    #[test]
    fn zero_threads_rejected() {
        let codec = XDeflate::default();
        assert!(compress_pages(&codec, &pages(), 0).is_err());
        assert!(decompress_pages(&codec, &pages(), 0).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let codec = XDeflate::default();
        assert!(compress_pages(&codec, &[], 4).unwrap().is_empty());
    }

    #[test]
    fn more_threads_than_pages_is_fine() {
        let codec = XDeflate::default();
        let pages = pages()[..2].to_vec();
        assert_eq!(compress_pages(&codec, &pages, 16).unwrap().len(), 2);
    }

    #[test]
    fn split_pages_covers_buffer_exactly() {
        let buffer = Bytes::from(vec![7u8; 10_000]);
        let pages = split_pages(&buffer, 4096);
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[2].len(), 10_000 - 2 * 4096);
        let total: usize = pages.iter().map(Bytes::len).sum();
        assert_eq!(total, 10_000);
    }
}
