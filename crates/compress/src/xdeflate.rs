//! `xdeflate`: an LZ77 + canonical-Huffman block codec.
//!
//! The format is DEFLATE-inspired but self-contained:
//!
//! ```text
//! stream  := block* ;  each block starts with
//!   final : 1 bit      (1 on the last block)
//!   type  : 1 bit      (0 = stored, 1 = compressed)
//! stored  := align; len:u16le; raw bytes
//! compressed :=
//!   lit_lens  : RLE-coded code-length vector for the 265-symbol
//!               literal/length alphabet (0..=255 literal, 256 EOB,
//!               257+k = match with bit_length(len - MIN_MATCH + 1) = k+1)
//!   dist_lens : RLE-coded lengths for the 15-symbol distance alphabet
//!               (symbol d = bit_length(dist), extra bits follow)
//!   tokens, terminated by EOB
//! ```
//!
//! Match lengths and distances are coded as `(bucket symbol, extra bits)`
//! where the bucket is the bit length of the value — a simple exponential
//! bucketing that keeps the alphabets small for page-sized inputs.

use xfm_types::{Error, Result};

use crate::bitio::{BitReader, BitWriter};
use crate::codec::{Codec, CodecKind};
use crate::huffman::{code_lengths, Decoder, Encoder, MAX_CODE_LEN};
use crate::lz77::{MatchFinder, Token, MAX_MATCH, MIN_MATCH};

/// Literal/length alphabet size: 256 literals + EOB + 8 length buckets.
const LIT_SYMS: usize = 256 + 1 + 8;
/// End-of-block symbol.
const EOB: usize = 256;
/// Distance alphabet size: bit_length(dist) for dist in 1..=32768
/// (bit_length(32768) = 16, so symbols 1..=16 are valid).
const DIST_SYMS: usize = 17;

/// The xdeflate codec.
///
/// # Examples
///
/// ```
/// use xfm_compress::{Codec, XDeflate};
///
/// let codec = XDeflate::default();
/// let page = vec![7u8; 4096];
/// let mut out = Vec::new();
/// codec.compress(&page, &mut out)?;
/// assert!(out.len() < 64); // a constant page compresses drastically
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct XDeflate {
    finder: MatchFinder,
}

impl XDeflate {
    /// Creates the codec with a specific match-finder profile.
    #[must_use]
    pub fn with_finder(finder: MatchFinder) -> Self {
        Self { finder }
    }

    /// A fast profile (models the lzo speed class on the CPU path).
    #[must_use]
    pub fn fast() -> Self {
        Self::with_finder(MatchFinder::fast())
    }
}

fn length_bucket(len: u32) -> (usize, u32, u32) {
    // Value coded: len - MIN_MATCH + 1, in 1..=255.
    let v = len - MIN_MATCH as u32 + 1;
    let bits = 32 - v.leading_zeros(); // bit_length >= 1
    let extra_bits = bits - 1;
    let extra_val = v - (1 << extra_bits);
    (257 + (bits - 1) as usize, extra_val, extra_bits)
}

fn length_unbucket(symbol: usize, extra: u32) -> u32 {
    let bits = (symbol - 257) as u32 + 1;
    let v = (1 << (bits - 1)) + extra;
    v + MIN_MATCH as u32 - 1
}

fn dist_bucket(dist: u32) -> (usize, u32, u32) {
    let bits = 32 - dist.leading_zeros();
    let extra_bits = bits - 1;
    let extra_val = dist - (1 << extra_bits);
    (bits as usize, extra_val, extra_bits)
}

fn dist_unbucket(symbol: usize, extra: u32) -> u32 {
    let bits = symbol as u32;
    (1 << (bits - 1)) + extra
}

/// RLE-encodes a code-length vector: `(value:4 bits, run:8 bits)*`,
/// terminated implicitly by the known alphabet size.
fn write_lengths(w: &mut BitWriter, lens: &[u32]) {
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1usize;
        while i + run < lens.len() && lens[i + run] == v && run < 255 {
            run += 1;
        }
        w.write_bits(v, 4);
        w.write_bits(run as u32, 8);
        i += run;
    }
}

fn read_lengths(r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>> {
    let mut lens = Vec::with_capacity(n);
    while lens.len() < n {
        let v = r.read_bits(4)?;
        let run = r.read_bits(8)? as usize;
        if run == 0 || lens.len() + run > n {
            return Err(Error::Corrupt("bad code-length run".into()));
        }
        lens.extend(std::iter::repeat_n(v, run));
    }
    Ok(lens)
}

impl Codec for XDeflate {
    fn name(&self) -> &'static str {
        "xdeflate"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::XDeflate
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        let start = dst.len();
        let tokens = self.finder.tokenize(src);

        // Gather symbol statistics.
        let mut lit_freq = [0u64; LIT_SYMS];
        let mut dist_freq = [0u64; DIST_SYMS];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[length_bucket(len).0] += 1;
                    dist_freq[dist_bucket(dist).0] += 1;
                }
            }
        }
        lit_freq[EOB] += 1;

        let lit_lens = code_lengths(&lit_freq, MAX_CODE_LEN)?;
        let dist_lens = code_lengths(&dist_freq, MAX_CODE_LEN)?;
        let lit_enc = Encoder::from_lengths(&lit_lens)?;
        let dist_enc = Encoder::from_lengths(&dist_lens)?;

        let mut w = BitWriter::new();
        w.write_bits(1, 1); // final
        w.write_bits(1, 1); // compressed
        write_lengths(&mut w, &lit_lens);
        write_lengths(&mut w, &dist_lens);
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.encode(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (sym, extra, ebits) = length_bucket(len);
                    lit_enc.encode(&mut w, sym);
                    w.write_bits(extra, ebits);
                    let (dsym, dextra, debits) = dist_bucket(dist);
                    dist_enc.encode(&mut w, dsym);
                    w.write_bits(dextra, debits);
                }
            }
        }
        lit_enc.encode(&mut w, EOB);
        let compressed = w.finish();

        // Fall back to stored blocks when entropy coding does not help
        // (the SFM stores incompressible pages raw). Each stored block
        // carries at most 64 KiB - 1; large inputs chain blocks.
        if compressed.len() >= src.len() + 4 {
            let mut w = BitWriter::new();
            let mut chunks = src.chunks(0xffff).peekable();
            if src.is_empty() {
                w.write_bits(1, 1); // final
                w.write_bits(0, 1); // stored
                w.align_byte();
                w.write_bits(0, 16);
                w.align_byte();
            }
            while let Some(chunk) = chunks.next() {
                let is_final = chunks.peek().is_none();
                w.write_bits(u32::from(is_final), 1);
                w.write_bits(0, 1); // stored
                w.align_byte();
                w.write_bits(chunk.len() as u32, 16);
                w.align_byte();
                w.write_bytes(chunk);
            }
            let stored = w.finish();
            dst.extend_from_slice(&stored);
            return Ok(dst.len() - start);
        }
        dst.extend_from_slice(&compressed);
        Ok(dst.len() - start)
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        let start = dst.len();
        let mut r = BitReader::new(src);
        loop {
            let is_final = r.read_bit()? == 1;
            let block_type = r.read_bit()?;
            if block_type == 0 {
                r.align_byte();
                let len = r.read_bits(16)? as usize;
                r.align_byte();
                let raw = r.read_bytes(len)?;
                dst.extend_from_slice(raw);
            } else {
                let lit_lens = read_lengths(&mut r, LIT_SYMS)?;
                let dist_lens = read_lengths(&mut r, DIST_SYMS)?;
                let lit_dec = Decoder::from_lengths(&lit_lens)?;
                let dist_dec = Decoder::from_lengths(&dist_lens)?;
                loop {
                    let sym = lit_dec.decode(&mut r)? as usize;
                    if sym < 256 {
                        dst.push(sym as u8);
                    } else if sym == EOB {
                        break;
                    } else {
                        let ebits = (sym - 257) as u32;
                        let extra = r.read_bits(ebits)?;
                        let len = length_unbucket(sym, extra);
                        if !(MIN_MATCH as u32..=MAX_MATCH as u32).contains(&len) {
                            return Err(Error::Corrupt(format!("match length {len}")));
                        }
                        let dsym = dist_dec.decode(&mut r)? as usize;
                        if dsym == 0 || dsym >= DIST_SYMS {
                            return Err(Error::Corrupt("bad distance symbol".into()));
                        }
                        let dextra = r.read_bits((dsym - 1) as u32)?;
                        let dist = dist_unbucket(dsym, dextra) as usize;
                        let produced = dst.len() - start;
                        if dist == 0 || dist > produced {
                            return Err(Error::Corrupt(format!(
                                "distance {dist} exceeds output {produced}"
                            )));
                        }
                        let from = dst.len() - dist;
                        for k in 0..len as usize {
                            let b = dst[from + k];
                            dst.push(b);
                        }
                    }
                }
            }
            if is_final {
                break;
            }
        }
        Ok(dst.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let codec = XDeflate::default();
        let mut compressed = Vec::new();
        codec.compress(data, &mut compressed).unwrap();
        let mut restored = Vec::new();
        codec.decompress(&compressed, &mut restored).unwrap();
        assert_eq!(restored, data);
        compressed.len()
    }

    #[test]
    fn empty_input() {
        assert!(round_trip(b"") > 0);
    }

    #[test]
    fn single_byte() {
        round_trip(b"x");
    }

    #[test]
    fn text_round_trips_and_compresses() {
        let data = b"software-defined far memory compresses cold pages \
                     into a zpool; software-defined far memory promotes \
                     pages out of the zpool when they become hot again. "
            .repeat(8);
        let c = round_trip(&data);
        assert!(c < data.len() / 2, "compressed {c} of {}", data.len());
    }

    #[test]
    fn constant_page_compresses_drastically() {
        let page = vec![0u8; 4096];
        let c = round_trip(&page);
        assert!(c < 64, "zero page compressed to {c}");
    }

    #[test]
    fn random_bytes_stored_raw() {
        // Keyed LCG bytes are incompressible: stored block ≈ input + 4.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = round_trip(&data);
        assert!(c <= data.len() + 8, "stored fallback too large: {c}");
    }

    #[test]
    fn length_bucket_round_trips_all_lengths() {
        for len in MIN_MATCH as u32..=MAX_MATCH as u32 {
            let (sym, extra, ebits) = length_bucket(len);
            assert!((257..LIT_SYMS).contains(&sym), "len {len} -> sym {sym}");
            assert!(extra < (1 << ebits) || ebits == 0);
            assert_eq!(length_unbucket(sym, extra), len);
        }
    }

    #[test]
    fn dist_bucket_round_trips_all_distances() {
        for dist in 1u32..=32768 {
            let (sym, extra, _) = dist_bucket(dist);
            assert!((1..DIST_SYMS).contains(&sym), "dist {dist} -> sym {sym}");
            assert_eq!(dist_unbucket(sym, extra), dist);
        }
    }

    #[test]
    fn truncated_stream_is_corrupt_not_panic() {
        let codec = XDeflate::default();
        let data = b"hello hello hello hello hello hello".repeat(4);
        let mut compressed = Vec::new();
        codec.compress(&data, &mut compressed).unwrap();
        for cut in [1, compressed.len() / 2, compressed.len() - 1] {
            let mut out = Vec::new();
            let r = codec.decompress(&compressed[..cut], &mut out);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn garbage_input_is_corrupt_not_panic() {
        let codec = XDeflate::default();
        let garbage: Vec<u8> = (0..200).map(|i| (i * 37 % 256) as u8).collect();
        let mut out = Vec::new();
        // Either an error or garbage output is fine; a panic is not.
        let _ = codec.decompress(&garbage, &mut out);
    }

    #[test]
    fn fast_profile_round_trips() {
        let codec = XDeflate::fast();
        let data = b"fast path fast path fast path fast path".repeat(16);
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        let mut d = Vec::new();
        codec.decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn appends_to_existing_destination() {
        let codec = XDeflate::default();
        let mut dst = vec![9u8; 3];
        let n = codec.compress(b"abcabcabcabc", &mut dst).unwrap();
        assert_eq!(dst.len(), 3 + n);
        assert_eq!(&dst[..3], &[9, 9, 9]);
    }
}
