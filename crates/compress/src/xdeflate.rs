//! `xdeflate`: an LZ77 + canonical-Huffman block codec.
//!
//! The format is DEFLATE-inspired but self-contained:
//!
//! ```text
//! stream  := block* ;  each block starts with
//!   final : 1 bit      (1 on the last block)
//!   type  : 1 bit      (0 = stored, 1 = compressed)
//! stored  := align; len:u16le; raw bytes
//! compressed :=
//!   lit_lens  : RLE-coded code-length vector for the 265-symbol
//!               literal/length alphabet (0..=255 literal, 256 EOB,
//!               257+k = match with bit_length(len - MIN_MATCH + 1) = k+1)
//!   dist_lens : RLE-coded lengths for the 15-symbol distance alphabet
//!               (symbol d = bit_length(dist), extra bits follow)
//!   tokens, terminated by EOB
//! ```
//!
//! Match lengths and distances are coded as `(bucket symbol, extra bits)`
//! where the bucket is the bit length of the value — a simple exponential
//! bucketing that keeps the alphabets small for page-sized inputs.

use xfm_types::{Error, Result};

use crate::bitio::{BitReader, BitWriter};
use crate::codec::{Codec, CodecKind};
use crate::huffman::{code_lengths_into, Decoder, Encoder, MAX_CODE_LEN};
use crate::lz77::{MatchFinder, TokenSink, MAX_MATCH, MIN_MATCH};
use crate::scratch::Scratch;

/// Literal/length alphabet size: 256 literals + EOB + 8 length buckets.
pub(crate) const LIT_SYMS: usize = 256 + 1 + 8;
/// End-of-block symbol.
pub(crate) const EOB: usize = 256;
/// Distance alphabet size: bit_length(dist) for dist in 1..=32768
/// (bit_length(32768) = 16, so symbols 1..=16 are valid).
pub(crate) const DIST_SYMS: usize = 17;

/// The xdeflate codec.
///
/// # Examples
///
/// ```
/// use xfm_compress::{Codec, XDeflate};
///
/// let codec = XDeflate::default();
/// let page = vec![7u8; 4096];
/// let mut out = Vec::new();
/// codec.compress(&page, &mut out)?;
/// assert!(out.len() < 64); // a constant page compresses drastically
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct XDeflate {
    finder: MatchFinder,
}

impl XDeflate {
    /// Creates the codec with a specific match-finder profile.
    #[must_use]
    pub fn with_finder(finder: MatchFinder) -> Self {
        Self { finder }
    }

    /// A fast profile (models the lzo speed class on the CPU path).
    #[must_use]
    pub fn fast() -> Self {
        Self::with_finder(MatchFinder::fast())
    }
}

/// Tag bit marking a packed token as a match.
pub(crate) const MATCH_BIT: u32 = 1 << 31;

/// Reusable xdeflate state: the packed token buffer, symbol statistics,
/// entropy coders, and the output bitstream writer.
///
/// Tokens pack into one `u32` each: bit 31 set means a match with the
/// distance in bits 0..16 and `len - MIN_MATCH` in bits 16..24;
/// otherwise the value is the literal byte. The tokenizer feeds this
/// struct directly (it implements [`TokenSink`]), so frequency counting
/// happens while tokens stream in — no intermediate `Vec<Token>`.
#[derive(Debug, Clone)]
pub struct XdefScratch {
    pub(crate) tokens: Vec<u32>,
    pub(crate) lit_freq: [u64; LIT_SYMS],
    pub(crate) dist_freq: [u64; DIST_SYMS],
    lit_lens: Vec<u32>,
    dist_lens: Vec<u32>,
    lit_enc: Encoder,
    dist_enc: Encoder,
    lit_dec: Decoder,
    dist_dec: Decoder,
    writer: BitWriter,
}

impl Default for XdefScratch {
    fn default() -> Self {
        Self {
            tokens: Vec::new(),
            lit_freq: [0; LIT_SYMS],
            dist_freq: [0; DIST_SYMS],
            lit_lens: Vec::new(),
            dist_lens: Vec::new(),
            lit_enc: Encoder::default(),
            dist_enc: Encoder::default(),
            lit_dec: Decoder::default(),
            dist_dec: Decoder::default(),
            writer: BitWriter::new(),
        }
    }
}

impl XdefScratch {
    pub(crate) fn reset(&mut self) {
        self.tokens.clear();
        self.lit_freq = [0; LIT_SYMS];
        self.dist_freq = [0; DIST_SYMS];
    }
}

impl TokenSink for XdefScratch {
    fn literal(&mut self, _pos: usize, byte: u8) {
        self.lit_freq[byte as usize] += 1;
        self.tokens.push(u32::from(byte));
    }

    fn emit_match(&mut self, len: u32, dist: u32) {
        self.lit_freq[length_bucket(len).0] += 1;
        self.dist_freq[dist_bucket(dist).0] += 1;
        self.tokens
            .push(MATCH_BIT | ((len - MIN_MATCH as u32) << 16) | dist);
    }
}

pub(crate) fn length_bucket(len: u32) -> (usize, u32, u32) {
    // Value coded: len - MIN_MATCH + 1, in 1..=255.
    let v = len - MIN_MATCH as u32 + 1;
    let bits = 32 - v.leading_zeros(); // bit_length >= 1
    let extra_bits = bits - 1;
    let extra_val = v - (1 << extra_bits);
    (257 + (bits - 1) as usize, extra_val, extra_bits)
}

pub(crate) fn length_unbucket(symbol: usize, extra: u32) -> u32 {
    let bits = (symbol - 257) as u32 + 1;
    let v = (1 << (bits - 1)) + extra;
    v + MIN_MATCH as u32 - 1
}

pub(crate) fn dist_bucket(dist: u32) -> (usize, u32, u32) {
    let bits = 32 - dist.leading_zeros();
    let extra_bits = bits - 1;
    let extra_val = dist - (1 << extra_bits);
    (bits as usize, extra_val, extra_bits)
}

pub(crate) fn dist_unbucket(symbol: usize, extra: u32) -> u32 {
    let bits = symbol as u32;
    (1 << (bits - 1)) + extra
}

/// RLE-encodes a code-length vector: `(value:4 bits, run:8 bits)*`,
/// terminated implicitly by the known alphabet size.
fn write_lengths(w: &mut BitWriter, lens: &[u32]) {
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1usize;
        while i + run < lens.len() && lens[i + run] == v && run < 255 {
            run += 1;
        }
        w.write_bits(v, 4);
        w.write_bits(run as u32, 8);
        i += run;
    }
}

fn read_lengths_into(r: &mut BitReader<'_>, n: usize, lens: &mut Vec<u32>) -> Result<()> {
    lens.clear();
    while lens.len() < n {
        let v = r.read_bits(4)?;
        let run = r.read_bits(8)? as usize;
        if run == 0 || lens.len() + run > n {
            return Err(Error::Corrupt("bad code-length run".into()));
        }
        lens.extend(std::iter::repeat_n(v, run));
    }
    Ok(())
}

impl Codec for XDeflate {
    fn name(&self) -> &'static str {
        "xdeflate"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::XDeflate
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.compress_into(src, dst, &mut Scratch::new())
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.decompress_into(src, dst, &mut Scratch::new())
    }

    fn compress_into(&self, src: &[u8], dst: &mut Vec<u8>, scratch: &mut Scratch) -> Result<usize> {
        let start = dst.len();
        let Scratch { lz, xd, huff, .. } = scratch;
        xd.reset();
        // Tokenize straight into the scratch: the sink counts symbol
        // frequencies as tokens stream in.
        self.finder.tokenize_into(src, lz, xd);
        xd.lit_freq[EOB] += 1;

        code_lengths_into(&xd.lit_freq, MAX_CODE_LEN, huff, &mut xd.lit_lens)?;
        code_lengths_into(&xd.dist_freq, MAX_CODE_LEN, huff, &mut xd.dist_lens)?;
        xd.lit_enc.rebuild(&xd.lit_lens)?;
        xd.dist_enc.rebuild(&xd.dist_lens)?;

        let XdefScratch {
            tokens,
            lit_lens,
            dist_lens,
            lit_enc,
            dist_enc,
            writer: w,
            ..
        } = xd;
        w.clear();
        w.write_bits(1, 1); // final
        w.write_bits(1, 1); // compressed
        write_lengths(w, lit_lens);
        write_lengths(w, dist_lens);
        for &t in tokens.iter() {
            if t & MATCH_BIT != 0 {
                let len = ((t >> 16) & 0xff) + MIN_MATCH as u32;
                let dist = t & 0xffff;
                let (sym, extra, ebits) = length_bucket(len);
                lit_enc.encode(w, sym);
                w.write_bits(extra, ebits);
                let (dsym, dextra, debits) = dist_bucket(dist);
                dist_enc.encode(w, dsym);
                w.write_bits(dextra, debits);
            } else {
                lit_enc.encode(w, t as usize);
            }
        }
        lit_enc.encode(w, EOB);
        w.align_byte();

        // Fall back to stored blocks when entropy coding does not help
        // (the SFM stores incompressible pages raw). Each stored block
        // carries at most 64 KiB - 1; large inputs chain blocks.
        if w.byte_len() >= src.len() + 4 {
            w.clear();
            let mut chunks = src.chunks(0xffff).peekable();
            if src.is_empty() {
                w.write_bits(1, 1); // final
                w.write_bits(0, 1); // stored
                w.align_byte();
                w.write_bits(0, 16);
                w.align_byte();
            }
            while let Some(chunk) = chunks.next() {
                let is_final = chunks.peek().is_none();
                w.write_bits(u32::from(is_final), 1);
                w.write_bits(0, 1); // stored
                w.align_byte();
                w.write_bits(chunk.len() as u32, 16);
                w.align_byte();
                w.write_bytes(chunk);
            }
        }
        dst.extend_from_slice(w.bytes());
        Ok(dst.len() - start)
    }

    fn decompress_into(
        &self,
        src: &[u8],
        dst: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<usize> {
        let start = dst.len();
        let xd = &mut scratch.xd;
        let mut r = BitReader::new(src);
        loop {
            let is_final = r.read_bit()? == 1;
            let block_type = r.read_bit()?;
            if block_type == 0 {
                r.align_byte();
                let len = r.read_bits(16)? as usize;
                r.align_byte();
                let raw = r.read_bytes(len)?;
                dst.extend_from_slice(raw);
            } else {
                read_lengths_into(&mut r, LIT_SYMS, &mut xd.lit_lens)?;
                read_lengths_into(&mut r, DIST_SYMS, &mut xd.dist_lens)?;
                xd.lit_dec.rebuild(&xd.lit_lens)?;
                xd.dist_dec.rebuild(&xd.dist_lens)?;
                loop {
                    let sym = xd.lit_dec.decode(&mut r)? as usize;
                    if sym < 256 {
                        dst.push(sym as u8);
                    } else if sym == EOB {
                        break;
                    } else {
                        let ebits = (sym - 257) as u32;
                        let extra = r.read_bits(ebits)?;
                        let len = length_unbucket(sym, extra);
                        if !(MIN_MATCH as u32..=MAX_MATCH as u32).contains(&len) {
                            return Err(Error::Corrupt(format!("match length {len}")));
                        }
                        let dsym = xd.dist_dec.decode(&mut r)? as usize;
                        if dsym == 0 || dsym >= DIST_SYMS {
                            return Err(Error::Corrupt("bad distance symbol".into()));
                        }
                        let dextra = r.read_bits((dsym - 1) as u32)?;
                        let dist = dist_unbucket(dsym, dextra) as usize;
                        let produced = dst.len() - start;
                        if dist == 0 || dist > produced {
                            return Err(Error::Corrupt(format!(
                                "distance {dist} exceeds output {produced}"
                            )));
                        }
                        crate::lz77::copy_match(dst, dist, len as usize);
                    }
                }
            }
            if is_final {
                break;
            }
        }
        Ok(dst.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let codec = XDeflate::default();
        let mut compressed = Vec::new();
        codec.compress(data, &mut compressed).unwrap();
        let mut restored = Vec::new();
        codec.decompress(&compressed, &mut restored).unwrap();
        assert_eq!(restored, data);
        compressed.len()
    }

    #[test]
    fn empty_input() {
        assert!(round_trip(b"") > 0);
    }

    #[test]
    fn reused_scratch_output_is_byte_identical() {
        let codec = XDeflate::default();
        let inputs: Vec<Vec<u8>> = vec![
            b"far memory far memory far memory".repeat(16),
            vec![0u8; 4096],
            (0..1024u32)
                .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
                .collect(),
            Vec::new(),
            b"x".to_vec(),
        ];
        let mut scratch = Scratch::new();
        for data in &inputs {
            let mut fresh = Vec::new();
            codec.compress(data, &mut fresh).unwrap();
            let mut reused = Vec::new();
            codec
                .compress_into(data, &mut reused, &mut scratch)
                .unwrap();
            assert_eq!(
                fresh,
                reused,
                "compress_into diverged on {} bytes",
                data.len()
            );
            let mut back = Vec::new();
            codec
                .decompress_into(&reused, &mut back, &mut scratch)
                .unwrap();
            assert_eq!(&back, data);
        }
    }

    #[test]
    fn single_byte() {
        round_trip(b"x");
    }

    #[test]
    fn text_round_trips_and_compresses() {
        let data = b"software-defined far memory compresses cold pages \
                     into a zpool; software-defined far memory promotes \
                     pages out of the zpool when they become hot again. "
            .repeat(8);
        let c = round_trip(&data);
        assert!(c < data.len() / 2, "compressed {c} of {}", data.len());
    }

    #[test]
    fn constant_page_compresses_drastically() {
        let page = vec![0u8; 4096];
        let c = round_trip(&page);
        assert!(c < 64, "zero page compressed to {c}");
    }

    #[test]
    fn random_bytes_stored_raw() {
        // Keyed LCG bytes are incompressible: stored block ≈ input + 4.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = round_trip(&data);
        assert!(c <= data.len() + 8, "stored fallback too large: {c}");
    }

    #[test]
    fn length_bucket_round_trips_all_lengths() {
        for len in MIN_MATCH as u32..=MAX_MATCH as u32 {
            let (sym, extra, ebits) = length_bucket(len);
            assert!((257..LIT_SYMS).contains(&sym), "len {len} -> sym {sym}");
            assert!(extra < (1 << ebits) || ebits == 0);
            assert_eq!(length_unbucket(sym, extra), len);
        }
    }

    #[test]
    fn dist_bucket_round_trips_all_distances() {
        for dist in 1u32..=32768 {
            let (sym, extra, _) = dist_bucket(dist);
            assert!((1..DIST_SYMS).contains(&sym), "dist {dist} -> sym {sym}");
            assert_eq!(dist_unbucket(sym, extra), dist);
        }
    }

    #[test]
    fn truncated_stream_is_corrupt_not_panic() {
        let codec = XDeflate::default();
        let data = b"hello hello hello hello hello hello".repeat(4);
        let mut compressed = Vec::new();
        codec.compress(&data, &mut compressed).unwrap();
        for cut in [1, compressed.len() / 2, compressed.len() - 1] {
            let mut out = Vec::new();
            let r = codec.decompress(&compressed[..cut], &mut out);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn garbage_input_is_corrupt_not_panic() {
        let codec = XDeflate::default();
        let garbage: Vec<u8> = (0..200).map(|i| (i * 37 % 256) as u8).collect();
        let mut out = Vec::new();
        // Either an error or garbage output is fine; a panic is not.
        let _ = codec.decompress(&garbage, &mut out);
    }

    #[test]
    fn fast_profile_round_trips() {
        let codec = XDeflate::fast();
        let data = b"fast path fast path fast path fast path".repeat(16);
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        let mut d = Vec::new();
        codec.decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn appends_to_existing_destination() {
        let codec = XDeflate::default();
        let mut dst = vec![9u8; 3];
        let n = codec.compress(b"abcabcabcabc", &mut dst).unwrap();
        assert_eq!(dst.len(), 3 + n);
        assert_eq!(&dst[..3], &[9, 9, 9]);
    }
}
