//! `xlz`: a byte-oriented LZ4-style fast codec.
//!
//! Stands in for the lzo/zstd speed class that production SFM deployments
//! run on the CPU (paper §2.1). The format is a sequence of packets:
//!
//! ```text
//! packet  := token literals* [offset:u16le]
//! token   := (lit_count:4 | match_len:4)
//!            lit_count  15 => extended by 255-continuation bytes
//!            match_len  15 => extended by 255-continuation bytes;
//!                             actual length = match_len + MIN_MATCH
//! ```
//!
//! The final packet has `match_len = 0` and no offset — it carries only
//! the trailing literals (marked by offset 0 sentinel absence is resolved
//! by the stream ending after its literals).

use xfm_types::{Error, Result};

use crate::codec::{Codec, CodecKind};
use crate::lz77::{MatchFinder, TokenSink};
use crate::scratch::Scratch;

/// Minimum encodable match length.
const MIN_MATCH: u32 = 4;

/// The xlz codec.
///
/// # Examples
///
/// ```
/// use xfm_compress::{Codec, Xlz};
///
/// let codec = Xlz::default();
/// let data = b"0123456789".repeat(100);
/// let mut out = Vec::new();
/// codec.compress(&data, &mut out)?;
/// assert!(out.len() < data.len() / 4);
/// let mut back = Vec::new();
/// codec.decompress(&out, &mut back)?;
/// assert_eq!(back, data);
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Xlz {
    finder: MatchFinder,
}

impl Xlz {
    /// Creates the codec with a custom match-finder profile.
    #[must_use]
    pub fn with_finder(finder: MatchFinder) -> Self {
        Self { finder }
    }
}

impl Default for Xlz {
    /// Defaults to the fast match-finder profile (this is the fast codec).
    fn default() -> Self {
        Self::with_finder(MatchFinder::fast())
    }
}

fn write_varcount(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

/// Writes one packet: token byte, literal run, optional match tail.
fn emit_packet(dst: &mut Vec<u8>, literals: &[u8], m: Option<(u32, u32)>) {
    let lit_count = literals.len();
    let match_field = match m {
        Some((len, _)) => (len - MIN_MATCH + 1).min(15) as usize,
        None => 0,
    };
    // For the token nibbles: literal nibble is min(count,15);
    // match nibble holds min(len - MIN_MATCH + 1, 15), 0 = none.
    let token = ((lit_count.min(15) as u8) << 4) | match_field as u8;
    dst.push(token);
    if lit_count >= 15 {
        write_varcount(dst, lit_count - 15);
    }
    dst.extend_from_slice(literals);
    if let Some((len, dist)) = m {
        let stored = len - MIN_MATCH + 1;
        if stored >= 15 {
            write_varcount(dst, (stored - 15) as usize);
        }
        dst.extend_from_slice(&(dist as u16).to_le_bytes());
    }
}

/// Streams tokenizer output straight into xlz packets. Literal runs are
/// tracked as a `(start, len)` window over the source slice — runs are
/// always contiguous in the source — so nothing is buffered.
struct PacketSink<'a> {
    src: &'a [u8],
    dst: &'a mut Vec<u8>,
    run_start: usize,
    run_len: usize,
}

impl TokenSink for PacketSink<'_> {
    fn literal(&mut self, pos: usize, _byte: u8) {
        if self.run_len == 0 {
            self.run_start = pos;
        }
        self.run_len += 1;
    }

    fn emit_match(&mut self, len: u32, dist: u32) {
        debug_assert!(dist <= u32::from(u16::MAX));
        let literals = &self.src[self.run_start..self.run_start + self.run_len];
        emit_packet(self.dst, literals, Some((len, dist)));
        self.run_len = 0;
    }
}

fn read_varcount(src: &[u8], pos: &mut usize, base: usize) -> Result<usize> {
    let mut count = base;
    if base == 15 {
        loop {
            let b = *src
                .get(*pos)
                .ok_or_else(|| Error::Corrupt("xlz count truncated".into()))?;
            *pos += 1;
            count += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(count)
}

impl Codec for Xlz {
    fn name(&self) -> &'static str {
        "xlz"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Xlz
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.compress_into(src, dst, &mut Scratch::new())
    }

    fn compress_into(&self, src: &[u8], dst: &mut Vec<u8>, scratch: &mut Scratch) -> Result<usize> {
        let start = dst.len();
        let mut sink = PacketSink {
            src,
            dst,
            run_start: 0,
            run_len: 0,
        };
        self.finder.tokenize_into(src, &mut scratch.lz, &mut sink);
        // Final literal-only packet (always emitted, possibly empty, so
        // the decoder has an unambiguous terminator).
        let literals = &src[sink.run_start..sink.run_start + sink.run_len];
        emit_packet(dst, literals, None);
        Ok(dst.len() - start)
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        let start = dst.len();
        let mut pos = 0usize;
        loop {
            let token = *src
                .get(pos)
                .ok_or_else(|| Error::Corrupt("xlz token truncated".into()))?;
            pos += 1;
            let lit_count = read_varcount(src, &mut pos, (token >> 4) as usize)?;
            if pos + lit_count > src.len() {
                return Err(Error::Corrupt("xlz literals truncated".into()));
            }
            dst.extend_from_slice(&src[pos..pos + lit_count]);
            pos += lit_count;

            let match_field = (token & 0x0f) as usize;
            if match_field == 0 {
                // Terminator packet.
                if pos != src.len() {
                    return Err(Error::Corrupt("xlz trailing garbage".into()));
                }
                break;
            }
            let stored = read_varcount(src, &mut pos, match_field)?;
            let len = stored as u32 + MIN_MATCH - 1;
            if pos + 2 > src.len() {
                return Err(Error::Corrupt("xlz offset truncated".into()));
            }
            let dist = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
            pos += 2;
            let produced = dst.len() - start;
            if dist == 0 || dist > produced {
                return Err(Error::Corrupt(format!(
                    "xlz distance {dist} exceeds output {produced}"
                )));
            }
            crate::lz77::copy_match(dst, dist, len as usize);
        }
        Ok(dst.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let codec = Xlz::default();
        let mut c = Vec::new();
        codec.compress(data, &mut c).unwrap();
        let mut d = Vec::new();
        codec.decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(b""), 1); // single terminator token
    }

    #[test]
    fn short_literals_only() {
        round_trip(b"abc");
        round_trip(b"q");
    }

    #[test]
    fn long_literal_run_uses_extension_bytes() {
        // 300 unique-ish bytes: one packet with extended literal count.
        let data: Vec<u8> = (0..300u32)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        round_trip(&data);
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        // 4096 identical bytes: ~16 max-length match packets of 4 bytes.
        let data = vec![b'z'; 4096];
        let c = round_trip(&data);
        assert!(c < 100, "RLE page took {c} bytes");
    }

    #[test]
    fn long_match_uses_extension_bytes() {
        let mut data = b"0123456789abcdef".to_vec();
        data.extend(std::iter::repeat_n(b"0123456789abcdef", 40).flatten());
        round_trip(&data);
    }

    #[test]
    fn truncation_detected() {
        let codec = Xlz::default();
        let data = b"hello world hello world hello world".repeat(4);
        let mut c = Vec::new();
        codec.compress(&data, &mut c).unwrap();
        for cut in [0, 1, c.len() / 2, c.len() - 1] {
            let mut out = Vec::new();
            assert!(codec.decompress(&c[..cut], &mut out).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_distance_detected() {
        // token: 0 literals, match_field 1 (len 4), offset 9999 > produced.
        let stream = [0x01u8, 0x0f, 0x27];
        let mut out = Vec::new();
        assert!(Xlz::default().decompress(&stream, &mut out).is_err());
    }

    #[test]
    fn reused_scratch_output_is_byte_identical() {
        let codec = Xlz::default();
        let inputs: Vec<Vec<u8>> = vec![
            b"hello world hello world hello world".repeat(8),
            vec![b'z'; 4096],
            (0..300u32)
                .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
                .collect(),
            Vec::new(),
            b"q".to_vec(),
        ];
        let mut scratch = Scratch::new();
        for data in &inputs {
            let mut fresh = Vec::new();
            codec.compress(data, &mut fresh).unwrap();
            let mut reused = Vec::new();
            codec
                .compress_into(data, &mut reused, &mut scratch)
                .unwrap();
            assert_eq!(fresh, reused);
            let mut back = Vec::new();
            codec.decompress(&reused, &mut back).unwrap();
            assert_eq!(&back, data);
        }
    }

    #[test]
    fn page_of_structured_data() {
        let mut page = Vec::with_capacity(4096);
        for i in 0..256u32 {
            page.extend_from_slice(&i.to_le_bytes());
            page.extend_from_slice(b"record-name-");
        }
        page.truncate(4096);
        let c = round_trip(&page);
        assert!(c < page.len(), "structured page should compress");
    }
}
