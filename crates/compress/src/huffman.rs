//! Length-limited canonical Huffman coding.
//!
//! Code lengths are computed with the package-merge algorithm (optimal
//! under a maximum-length constraint), then turned into canonical codes
//! exactly as DEFLATE does, so only the length vector needs to be
//! transmitted.

use xfm_types::{Error, Result};

use crate::bitio::{BitReader, BitWriter};

/// Maximum code length used by xdeflate (same as DEFLATE).
pub const MAX_CODE_LEN: u32 = 15;

/// Reusable buffers for [`code_lengths_into`].
///
/// Package-merge items are `(weight, node)` pairs; a node id below the
/// active-symbol count is a leaf (an index into `active_syms`), anything
/// larger points into `arena`, whose entries hold the two child node
/// ids of a package. This replaces the per-item symbol `Vec`s (and
/// their clones on every merge) with integer ids into one arena.
#[derive(Debug, Clone, Default)]
pub struct HuffScratch {
    active_syms: Vec<u32>,
    arena: Vec<(u32, u32)>,
    original: Vec<(u64, u32)>,
    list: Vec<(u64, u32)>,
    merged: Vec<(u64, u32)>,
    stack: Vec<u32>,
}

impl HuffScratch {
    /// Creates empty buffers (first use sizes them).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes optimal length-limited code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (absent). A single-symbol
/// alphabet gets length 1.
///
/// Thin wrapper over [`code_lengths_into`] with fresh buffers.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if more than `2^max_len` symbols have
/// non-zero frequency (no prefix code of that length exists).
///
/// # Examples
///
/// ```
/// use xfm_compress::huffman::code_lengths;
///
/// let lens = code_lengths(&[10, 1, 1, 0], 15)?;
/// assert_eq!(lens[3], 0);            // absent symbol
/// assert!(lens[0] <= lens[1]);       // frequent symbol gets short code
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Result<Vec<u32>> {
    let mut lens = Vec::new();
    code_lengths_into(freqs, max_len, &mut HuffScratch::new(), &mut lens)?;
    Ok(lens)
}

/// [`code_lengths`] into caller-provided buffers: `lens` is cleared and
/// refilled, `scratch` holds the package-merge working set. Steady-state
/// calls perform no heap allocation.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if more than `2^max_len` symbols have
/// non-zero frequency.
pub fn code_lengths_into(
    freqs: &[u64],
    max_len: u32,
    scratch: &mut HuffScratch,
    lens: &mut Vec<u32>,
) -> Result<()> {
    lens.clear();
    lens.resize(freqs.len(), 0);
    scratch.active_syms.clear();
    scratch
        .active_syms
        .extend((0..freqs.len()).filter(|&i| freqs[i] > 0).map(|i| i as u32));
    let n = scratch.active_syms.len();
    match n {
        0 => return Ok(()),
        1 => {
            lens[scratch.active_syms[0] as usize] = 1;
            return Ok(());
        }
        _ => {}
    }
    if n > (1usize << max_len.min(31)) {
        return Err(Error::InvalidConfig(format!(
            "{n} symbols cannot fit codes of at most {max_len} bits"
        )));
    }

    // Leaves sorted by (weight, symbol order) — identical ordering to a
    // stable sort by weight over the ascending symbol list.
    scratch.original.clear();
    scratch.original.extend(
        scratch
            .active_syms
            .iter()
            .enumerate()
            .map(|(leaf, &sym)| (freqs[sym as usize], leaf as u32)),
    );
    scratch
        .original
        .sort_unstable_by_key(|&(w, leaf)| (w, leaf));

    scratch.arena.clear();
    scratch.list.clear();
    scratch.list.extend_from_slice(&scratch.original);
    for _ in 1..max_len {
        // Package: pair consecutive items into arena nodes.
        scratch.merged.clear();
        let packages = scratch.list.len() / 2;
        let (mut a, mut b) = (0usize, 0usize);
        // Merge the (sorted) leaves with the (sorted) packages; ties
        // take the leaf first, matching the reference implementation.
        while a < scratch.original.len() || b < packages {
            let package_weight = (b < packages).then(|| {
                let (w0, _) = scratch.list[2 * b];
                let (w1, _) = scratch.list[2 * b + 1];
                w0 + w1
            });
            let take_original = match (scratch.original.get(a), package_weight) {
                (Some(&(w, _)), Some(pw)) => w <= pw,
                (Some(_), None) => true,
                _ => false,
            };
            if take_original {
                scratch.merged.push(scratch.original[a]);
                a += 1;
            } else {
                let (w0, n0) = scratch.list[2 * b];
                let (w1, n1) = scratch.list[2 * b + 1];
                let id = (n + scratch.arena.len()) as u32;
                scratch.arena.push((n0, n1));
                scratch.merged.push((w0 + w1, id));
                b += 1;
            }
        }
        std::mem::swap(&mut scratch.list, &mut scratch.merged);
    }

    // The first 2n-2 items define the code: each leaf reachable from an
    // item's node adds one to its symbol's code length.
    for &(_, node) in scratch.list.iter().take(2 * n - 2) {
        scratch.stack.clear();
        scratch.stack.push(node);
        while let Some(id) = scratch.stack.pop() {
            if (id as usize) < n {
                lens[scratch.active_syms[id as usize] as usize] += 1;
            } else {
                let (l, r) = scratch.arena[id as usize - n];
                scratch.stack.push(l);
                scratch.stack.push(r);
            }
        }
    }
    debug_assert!(lens.iter().all(|&l| l <= max_len));
    Ok(())
}

/// A canonical Huffman encoder: symbol -> (code, length).
///
/// Codes are stored bit-reversed so a symbol is emitted with a single
/// [`BitWriter::write_bits`] call: writing the reversed code LSB-first
/// produces exactly the MSB-first bit order of
/// [`BitWriter::write_code_msb`].
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    /// `(reversed_code, length)` per symbol.
    codes: Vec<(u32, u32)>,
}

impl Encoder {
    /// Builds the canonical codes for the given length vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the lengths violate the Kraft
    /// inequality (no prefix code exists) or exceed [`MAX_CODE_LEN`].
    pub fn from_lengths(lens: &[u32]) -> Result<Self> {
        let mut enc = Self::default();
        enc.rebuild(lens)?;
        Ok(enc)
    }

    /// Rebuilds the code table in place, reusing its storage. A scratch-
    /// held encoder performs no heap allocation once warmed up.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on invalid lengths (Kraft violation).
    pub fn rebuild(&mut self, lens: &[u32]) -> Result<()> {
        validate_lengths(lens)?;
        let mut bl_count = [0u32; MAX_CODE_LEN as usize + 1];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = [0u32; MAX_CODE_LEN as usize + 2];
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN {
            code = (code + bl_count[(len - 1) as usize]) << 1;
            next_code[len as usize] = code;
        }
        self.codes.clear();
        self.codes.extend(lens.iter().map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c.reverse_bits() >> (32 - l), l)
            }
        }));
        Ok(())
    }

    /// Writes the code for `symbol` to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (length 0) or is out of range.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let (rev, len) = self.codes[symbol];
        assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(rev, len);
    }

    /// Returns the code length for `symbol` (0 if absent).
    #[must_use]
    pub fn length(&self, symbol: usize) -> u32 {
        self.codes[symbol].1
    }
}

/// Width of the [`Decoder`] primary lookup table in bits.
const PRIMARY_BITS: u32 = 10;

/// A canonical Huffman decoder.
///
/// Decoding peeks [`PRIMARY_BITS`] bits and resolves codes up to that
/// length with one table load; longer (rare) codes fall back to the
/// bit-at-a-time first-code arithmetic.
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    /// `first_code[len]`, `offset[len]` into `symbols`, `count[len]`.
    first_code: Vec<u32>,
    offset: Vec<u32>,
    count: Vec<u32>,
    symbols: Vec<u16>,
    max_len: u32,
    /// Primary table indexed by the next `PRIMARY_BITS` stream bits
    /// (LSB-first); entries pack `symbol << 4 | code_len`, 0 = miss.
    primary: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from the canonical length vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on invalid lengths (Kraft violation).
    pub fn from_lengths(lens: &[u32]) -> Result<Self> {
        let mut dec = Self::default();
        dec.rebuild(lens)?;
        Ok(dec)
    }

    /// Rebuilds the decode tables in place, reusing their storage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on invalid lengths (Kraft violation).
    pub fn rebuild(&mut self, lens: &[u32]) -> Result<()> {
        validate_lengths(lens)?;
        let max = lens.iter().copied().max().unwrap_or(0);
        self.count.clear();
        self.count.resize((max + 1) as usize, 0);
        for &l in lens {
            if l > 0 {
                self.count[l as usize] += 1;
            }
        }
        self.first_code.clear();
        self.first_code.resize((max + 1) as usize, 0);
        self.offset.clear();
        self.offset.resize((max + 1) as usize, 0);
        let mut code = 0u32;
        let mut sym_base = 0u32;
        for len in 1..=max as usize {
            code = (code + self.count[len - 1]) << 1;
            self.first_code[len] = code;
            self.offset[len] = sym_base;
            sym_base += self.count[len];
        }
        // Symbols sorted by (length, symbol index) — canonical order.
        self.symbols.clear();
        for len in 1..=max {
            for (i, &l) in lens.iter().enumerate() {
                if l == len {
                    self.symbols.push(i as u16);
                }
            }
        }
        self.max_len = max;

        // Primary table: for every code of length ≤ PRIMARY_BITS, fill
        // all slots whose low `len` bits equal the bit-reversed code
        // (the stream delivers the code MSB-first, so the first stream
        // bit lands in bit 0 of the peeked index). Stale entries from a
        // previous rebuild are cleared so they fall back to the exact
        // (error-checked) path rather than decode wrongly.
        self.primary.clear();
        self.primary.resize(1 << PRIMARY_BITS, 0);
        if lens.len() <= (u16::MAX >> 4) as usize {
            for len in 1..=max.min(PRIMARY_BITS) {
                let code = self.first_code[len as usize];
                let base = self.offset[len as usize];
                for rel in 0..self.count[len as usize] {
                    let sym = self.symbols[(base + rel) as usize];
                    let rev = (code + rel).reverse_bits() >> (32 - len);
                    let entry = (sym << 4) | len as u16;
                    let mut slot = rev;
                    while (slot as usize) < self.primary.len() {
                        self.primary[slot as usize] = entry;
                        slot += 1 << len;
                    }
                }
            }
        }
        Ok(())
    }

    /// Decodes one symbol from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the bits do not form a valid code or
    /// the stream ends early.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        // Fast path: one table load resolves codes ≤ PRIMARY_BITS long.
        // peek_bits pads past end-of-stream with zeros; consume() still
        // errors if the matched length exceeds the real stream.
        let idx = r.peek_bits(PRIMARY_BITS) as usize;
        let entry = self.primary.get(idx).copied().unwrap_or(0);
        if entry != 0 {
            r.consume(u32::from(entry & 0xf))?;
            return Ok(entry >> 4);
        }
        self.decode_slow(r)
    }

    /// Bit-at-a-time fallback for codes longer than [`PRIMARY_BITS`]
    /// (or invalid bit patterns).
    fn decode_slow(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()?;
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Ok(self.symbols[(self.offset[len] + rel) as usize]);
            }
        }
        Err(Error::Corrupt("invalid Huffman code".into()))
    }
}

fn validate_lengths(lens: &[u32]) -> Result<()> {
    let mut kraft = 0u64;
    for &l in lens {
        if l > MAX_CODE_LEN {
            return Err(Error::Corrupt(format!("code length {l} exceeds limit")));
        }
        if l > 0 {
            kraft += 1u64 << (MAX_CODE_LEN - l);
        }
    }
    // A single symbol of length 1 (kraft = 2^14) is allowed; otherwise the
    // code must not over-subscribe the tree.
    if kraft > 1u64 << MAX_CODE_LEN {
        return Err(Error::Corrupt(
            "code lengths violate Kraft inequality".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], message: &[u16]) {
        let lens = code_lengths(freqs, MAX_CODE_LEN).unwrap();
        let enc = Encoder::from_lengths(&lens).unwrap();
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            enc.encode(&mut w, s as usize);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn skewed_distribution_round_trips() {
        let freqs = [1000, 500, 100, 10, 1, 1, 1, 1];
        let msg: Vec<u16> = (0..8).cycle().take(100).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let lens = code_lengths(&[100, 50, 10, 1], MAX_CODE_LEN).unwrap();
        assert!(lens[0] <= lens[1]);
        assert!(lens[1] <= lens[2]);
        assert!(lens[2] <= lens[3]);
    }

    #[test]
    fn kraft_equality_holds_for_optimal_codes() {
        let freqs = [7, 6, 5, 4, 3, 2, 1];
        let lens = code_lengths(&freqs, MAX_CODE_LEN).unwrap();
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft {kraft}");
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-like weights force deep trees in unconstrained Huffman.
        let freqs: Vec<u64> = {
            let mut f = vec![1u64, 1];
            for i in 2..30 {
                let next = f[i - 1] + f[i - 2];
                f.push(next);
            }
            f
        };
        let lens = code_lengths(&freqs, 8).unwrap();
        assert!(lens.iter().all(|&l| l <= 8 && l > 0));
        let kraft: f64 = lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn single_symbol_alphabet() {
        let lens = code_lengths(&[0, 42, 0], MAX_CODE_LEN).unwrap();
        assert_eq!(lens, vec![0, 1, 0]);
        round_trip(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn empty_alphabet() {
        let lens = code_lengths(&[0, 0], MAX_CODE_LEN).unwrap();
        assert_eq!(lens, vec![0, 0]);
    }

    #[test]
    fn too_many_symbols_for_limit_rejected() {
        let freqs = vec![1u64; 16];
        assert!(code_lengths(&freqs, 3).is_err());
        assert!(code_lengths(&freqs, 4).is_ok());
    }

    #[test]
    fn decoder_rejects_garbage() {
        // Lengths for a 2-symbol code; a truncated stream must error.
        let lens = vec![1, 1];
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three symbols of length 1 violate Kraft.
        assert!(Encoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn full_byte_alphabet_round_trips() {
        let freqs: Vec<u64> = (0..256).map(|i| (i % 7 + 1) as u64 * 3).collect();
        let msg: Vec<u16> = (0..256).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn reused_scratch_reproduces_fresh_lengths() {
        let cases: Vec<Vec<u64>> = vec![
            vec![1000, 500, 100, 10, 1, 1, 1, 1],
            vec![7, 6, 5, 4, 3, 2, 1],
            (0..256).map(|i| (i % 7 + 1) as u64 * 3).collect(),
            vec![0, 42, 0],
            vec![0, 0],
            vec![5, 5, 5, 5, 5, 5, 5, 5], // all-tied weights
        ];
        let mut scratch = HuffScratch::new();
        let mut lens = Vec::new();
        for freqs in &cases {
            code_lengths_into(freqs, MAX_CODE_LEN, &mut scratch, &mut lens).unwrap();
            assert_eq!(lens, code_lengths(freqs, MAX_CODE_LEN).unwrap());
        }
    }

    #[test]
    fn rebuilt_coders_match_fresh_ones() {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        for lens in [vec![1u32, 2, 2], vec![2, 2, 2, 2], vec![1, 1]] {
            enc.rebuild(&lens).unwrap();
            dec.rebuild(&lens).unwrap();
            let fresh = Encoder::from_lengths(&lens).unwrap();
            let mut w1 = BitWriter::new();
            let mut w2 = BitWriter::new();
            for s in 0..lens.len() {
                enc.encode(&mut w1, s);
                fresh.encode(&mut w2, s);
            }
            let bytes = w1.finish();
            assert_eq!(bytes, w2.finish());
            let mut r = BitReader::new(&bytes);
            for s in 0..lens.len() {
                assert_eq!(dec.decode(&mut r).unwrap(), s as u16);
            }
        }
    }
}
