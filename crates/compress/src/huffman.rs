//! Length-limited canonical Huffman coding.
//!
//! Code lengths are computed with the package-merge algorithm (optimal
//! under a maximum-length constraint), then turned into canonical codes
//! exactly as DEFLATE does, so only the length vector needs to be
//! transmitted.

use xfm_types::{Error, Result};

use crate::bitio::{BitReader, BitWriter};

/// Maximum code length used by xdeflate (same as DEFLATE).
pub const MAX_CODE_LEN: u32 = 15;

/// Computes optimal length-limited code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (absent). A single-symbol
/// alphabet gets length 1.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if more than `2^max_len` symbols have
/// non-zero frequency (no prefix code of that length exists).
///
/// # Examples
///
/// ```
/// use xfm_compress::huffman::code_lengths;
///
/// let lens = code_lengths(&[10, 1, 1, 0], 15)?;
/// assert_eq!(lens[3], 0);            // absent symbol
/// assert!(lens[0] <= lens[1]);       // frequent symbol gets short code
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Result<Vec<u32>> {
    let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let n = active.len();
    let mut lens = vec![0u32; freqs.len()];
    match n {
        0 => return Ok(lens),
        1 => {
            lens[active[0]] = 1;
            return Ok(lens);
        }
        _ => {}
    }
    if n > (1usize << max_len.min(31)) {
        return Err(Error::InvalidConfig(format!(
            "{n} symbols cannot fit codes of at most {max_len} bits"
        )));
    }

    // Package-merge. Items carry the set of original symbols they contain.
    #[derive(Clone)]
    struct Item {
        weight: u64,
        symbols: Vec<u16>,
    }
    let mut original: Vec<Item> = active
        .iter()
        .map(|&i| Item {
            weight: freqs[i],
            symbols: vec![i as u16],
        })
        .collect();
    original.sort_by_key(|it| it.weight);

    let mut list = original.clone();
    for _ in 1..max_len {
        // Package: pair consecutive items.
        let mut packages = Vec::with_capacity(list.len() / 2);
        let mut iter = list.chunks_exact(2);
        for pair in &mut iter {
            let mut symbols = pair[0].symbols.clone();
            symbols.extend_from_slice(&pair[1].symbols);
            packages.push(Item {
                weight: pair[0].weight + pair[1].weight,
                symbols,
            });
        }
        // Merge with the original items (both sorted).
        let mut merged = Vec::with_capacity(original.len() + packages.len());
        let (mut a, mut b) = (0, 0);
        while a < original.len() || b < packages.len() {
            let take_original = match (original.get(a), packages.get(b)) {
                (Some(x), Some(y)) => x.weight <= y.weight,
                (Some(_), None) => true,
                _ => false,
            };
            if take_original {
                merged.push(original[a].clone());
                a += 1;
            } else {
                merged.push(packages[b].clone());
                b += 1;
            }
        }
        list = merged;
    }

    // The first 2n-2 items define the code: each occurrence of a symbol
    // adds one to its code length.
    for item in list.iter().take(2 * n - 2) {
        for &s in &item.symbols {
            lens[s as usize] += 1;
        }
    }
    debug_assert!(lens.iter().all(|&l| l <= max_len));
    Ok(lens)
}

/// A canonical Huffman encoder: symbol -> (code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u32)>,
}

impl Encoder {
    /// Builds the canonical codes for the given length vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the lengths violate the Kraft
    /// inequality (no prefix code exists) or exceed [`MAX_CODE_LEN`].
    pub fn from_lengths(lens: &[u32]) -> Result<Self> {
        validate_lengths(lens)?;
        let max = lens.iter().copied().max().unwrap_or(0);
        let mut bl_count = vec![0u32; (max + 1) as usize];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; (max + 2) as usize];
        let mut code = 0u32;
        for len in 1..=max {
            code = (code + bl_count[(len - 1) as usize]) << 1;
            next_code[len as usize] = code;
        }
        let codes = lens
            .iter()
            .map(|&l| {
                if l == 0 {
                    (0, 0)
                } else {
                    let c = next_code[l as usize];
                    next_code[l as usize] += 1;
                    (c, l)
                }
            })
            .collect();
        Ok(Self { codes })
    }

    /// Writes the code for `symbol` to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (length 0) or is out of range.
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let (code, len) = self.codes[symbol];
        assert!(len > 0, "symbol {symbol} has no code");
        w.write_code_msb(code, len);
    }

    /// Returns the code length for `symbol` (0 if absent).
    #[must_use]
    pub fn length(&self, symbol: usize) -> u32 {
        self.codes[symbol].1
    }
}

/// A canonical Huffman decoder (bit-at-a-time, first-code arithmetic).
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[len]`, `offset[len]` into `symbols`, `count[len]`.
    first_code: Vec<u32>,
    offset: Vec<u32>,
    count: Vec<u32>,
    symbols: Vec<u16>,
    max_len: u32,
}

impl Decoder {
    /// Builds a decoder from the canonical length vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on invalid lengths (Kraft violation).
    pub fn from_lengths(lens: &[u32]) -> Result<Self> {
        validate_lengths(lens)?;
        let max = lens.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; (max + 1) as usize];
        for &l in lens {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut first_code = vec![0u32; (max + 1) as usize];
        let mut offset = vec![0u32; (max + 1) as usize];
        let mut code = 0u32;
        let mut sym_base = 0u32;
        for len in 1..=max as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            offset[len] = sym_base;
            sym_base += count[len];
        }
        // Symbols sorted by (length, symbol index) — canonical order.
        let mut symbols: Vec<u16> = Vec::with_capacity(sym_base as usize);
        for len in 1..=max {
            for (i, &l) in lens.iter().enumerate() {
                if l == len {
                    symbols.push(i as u16);
                }
            }
        }
        Ok(Self {
            first_code,
            offset,
            count,
            symbols,
            max_len: max,
        })
    }

    /// Decodes one symbol from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the bits do not form a valid code or
    /// the stream ends early.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()?;
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Ok(self.symbols[(self.offset[len] + rel) as usize]);
            }
        }
        Err(Error::Corrupt("invalid Huffman code".into()))
    }
}

fn validate_lengths(lens: &[u32]) -> Result<()> {
    let mut kraft = 0u64;
    for &l in lens {
        if l > MAX_CODE_LEN {
            return Err(Error::Corrupt(format!("code length {l} exceeds limit")));
        }
        if l > 0 {
            kraft += 1u64 << (MAX_CODE_LEN - l);
        }
    }
    // A single symbol of length 1 (kraft = 2^14) is allowed; otherwise the
    // code must not over-subscribe the tree.
    if kraft > 1u64 << MAX_CODE_LEN {
        return Err(Error::Corrupt("code lengths violate Kraft inequality".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], message: &[u16]) {
        let lens = code_lengths(freqs, MAX_CODE_LEN).unwrap();
        let enc = Encoder::from_lengths(&lens).unwrap();
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            enc.encode(&mut w, s as usize);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn skewed_distribution_round_trips() {
        let freqs = [1000, 500, 100, 10, 1, 1, 1, 1];
        let msg: Vec<u16> = (0..8).cycle().take(100).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let lens = code_lengths(&[100, 50, 10, 1], MAX_CODE_LEN).unwrap();
        assert!(lens[0] <= lens[1]);
        assert!(lens[1] <= lens[2]);
        assert!(lens[2] <= lens[3]);
    }

    #[test]
    fn kraft_equality_holds_for_optimal_codes() {
        let freqs = [7, 6, 5, 4, 3, 2, 1];
        let lens = code_lengths(&freqs, MAX_CODE_LEN).unwrap();
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft {kraft}");
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-like weights force deep trees in unconstrained Huffman.
        let freqs: Vec<u64> = {
            let mut f = vec![1u64, 1];
            for i in 2..30 {
                let next = f[i - 1] + f[i - 2];
                f.push(next);
            }
            f
        };
        let lens = code_lengths(&freqs, 8).unwrap();
        assert!(lens.iter().all(|&l| l <= 8 && l > 0));
        let kraft: f64 = lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn single_symbol_alphabet() {
        let lens = code_lengths(&[0, 42, 0], MAX_CODE_LEN).unwrap();
        assert_eq!(lens, vec![0, 1, 0]);
        round_trip(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn empty_alphabet() {
        let lens = code_lengths(&[0, 0], MAX_CODE_LEN).unwrap();
        assert_eq!(lens, vec![0, 0]);
    }

    #[test]
    fn too_many_symbols_for_limit_rejected() {
        let freqs = vec![1u64; 16];
        assert!(code_lengths(&freqs, 3).is_err());
        assert!(code_lengths(&freqs, 4).is_ok());
    }

    #[test]
    fn decoder_rejects_garbage() {
        // Lengths for a 2-symbol code; a truncated stream must error.
        let lens = vec![1, 1];
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three symbols of length 1 violate Kraft.
        assert!(Encoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn full_byte_alphabet_round_trips() {
        let freqs: Vec<u64> = (0..256).map(|i| (i % 7 + 1) as u64 * 3).collect();
        let msg: Vec<u16> = (0..256).collect();
        round_trip(&freqs, &msg);
    }
}
