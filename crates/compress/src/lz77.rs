//! LZ77 match finding with hash chains and one-step lazy matching.
//!
//! Produces a token stream (literals and back-references) consumed by the
//! [`crate::xdeflate`] entropy stage. The window defaults to 32 KiB like
//! DEFLATE; page-sized SFM inputs (≤ 4 KiB) always fit entirely in the
//! window.

use serde::{Deserialize, Serialize};

/// Smallest back-reference the tokenizer will emit.
pub const MIN_MATCH: usize = 4;
/// Largest back-reference length.
pub const MAX_MATCH: usize = 258;
/// Largest back-reference distance (32 KiB window).
pub const MAX_DIST: usize = 32 * 1024;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u32,
        /// Distance in `1..=MAX_DIST`.
        dist: u32,
    },
}

/// Configurable hash-chain match finder.
///
/// # Examples
///
/// ```
/// use xfm_compress::lz77::{MatchFinder, Token};
///
/// let mf = MatchFinder::default();
/// let tokens = mf.tokenize(b"abcdabcdabcd");
/// assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchFinder {
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
}

impl MatchFinder {
    /// A fast configuration (short chains, no lazy matching).
    #[must_use]
    pub const fn fast() -> Self {
        Self {
            max_chain: 8,
            good_enough: 32,
            lazy: false,
        }
    }

    /// A thorough configuration (long chains, lazy matching).
    #[must_use]
    pub const fn thorough() -> Self {
        Self {
            max_chain: 128,
            good_enough: 128,
            lazy: true,
        }
    }

    fn hash(data: &[u8], i: usize) -> usize {
        let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        (v.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
    }

    /// Tokenizes `data` into literals and back-references. Decoding the
    /// token stream always reproduces `data` exactly.
    #[must_use]
    pub fn tokenize(&self, data: &[u8]) -> Vec<Token> {
        let n = data.len();
        let mut tokens = Vec::with_capacity(n / 2);
        if n < MIN_MATCH {
            tokens.extend(data.iter().map(|&b| Token::Literal(b)));
            return tokens;
        }

        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; n];
        let mut i = 0usize;

        let find = |head: &[usize], prev: &[usize], i: usize| -> Option<(usize, usize)> {
            if i + MIN_MATCH > n {
                return None;
            }
            let mut best_len = MIN_MATCH - 1;
            let mut best_dist = 0usize;
            let mut cand = head[Self::hash(data, i)];
            let mut chain = self.max_chain;
            let limit = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && chain > 0 {
                let dist = i - cand;
                if dist > MAX_DIST {
                    break;
                }
                // Quick reject on the byte after the current best.
                if i + best_len < n && data[cand + best_len] == data[i + best_len] {
                    let mut l = 0usize;
                    while l < limit && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l >= self.good_enough || l == limit {
                            break;
                        }
                    }
                }
                cand = prev[cand];
                chain -= 1;
            }
            (best_len >= MIN_MATCH).then_some((best_len, best_dist))
        };

        let insert = |head: &mut [usize], prev: &mut [usize], i: usize| {
            if i + MIN_MATCH <= n {
                let h = Self::hash(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
        };

        while i < n {
            let found = find(&head, &prev, i);
            match found {
                None => {
                    tokens.push(Token::Literal(data[i]));
                    insert(&mut head, &mut prev, i);
                    i += 1;
                }
                Some((len, dist)) => {
                    // Lazy: check if deferring one byte yields a longer match.
                    let mut take_len = len;
                    let mut take_dist = dist;
                    let mut emitted_literal = false;
                    if self.lazy && i + 1 < n {
                        insert(&mut head, &mut prev, i);
                        if let Some((len2, dist2)) = find(&head, &prev, i + 1) {
                            if len2 > len {
                                tokens.push(Token::Literal(data[i]));
                                i += 1;
                                take_len = len2;
                                take_dist = dist2;
                                emitted_literal = true;
                            }
                        }
                        if !emitted_literal {
                            // `i` was already inserted above.
                        }
                    } else {
                        insert(&mut head, &mut prev, i);
                    }
                    tokens.push(Token::Match {
                        len: take_len as u32,
                        dist: take_dist as u32,
                    });
                    // Insert the positions covered by the match (sparsely,
                    // every position keeps ratios good on page inputs).
                    let start = i + 1;
                    let end = (i + take_len).min(n);
                    for j in start..end {
                        insert(&mut head, &mut prev, j);
                    }
                    i = end;
                }
            }
        }
        tokens
    }
}

const HASH_SIZE: usize = 1 << 15;

impl Default for MatchFinder {
    /// Defaults to the thorough configuration (xdeflate's profile).
    fn default() -> Self {
        Self::thorough()
    }
}

/// Expands a token stream back into bytes (reference decoder used by
/// tests and by the xdeflate decompressor's copy loop).
#[must_use]
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], mf: MatchFinder) {
        let tokens = mf.tokenize(data);
        assert_eq!(expand(&tokens), data, "round-trip failed");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            round_trip(b"", mf);
            round_trip(b"a", mf);
            round_trip(b"abc", mf);
        }
    }

    #[test]
    fn repetitive_input_compresses_to_matches() {
        let data = b"hello world hello world hello world hello world";
        let tokens = MatchFinder::default().tokenize(data);
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .count();
        assert!(matches >= 1);
        assert!(tokens.len() < data.len() / 2);
        round_trip(data, MatchFinder::default());
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." produces a dist-1 overlapping match like DEFLATE RLE.
        let data = vec![b'a'; 300];
        let tokens = MatchFinder::default().tokenize(&data);
        assert!(tokens.len() <= 4, "RLE should be a couple of tokens");
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn match_lengths_and_dists_in_bounds() {
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.push((i % 251) as u8);
        }
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            for t in mf.tokenize(&data) {
                if let Token::Match { len, dist } = t {
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                    assert!((1..=MAX_DIST).contains(&(dist as usize)));
                }
            }
            round_trip(&data, mf);
        }
    }

    #[test]
    fn incompressible_input_is_all_literals() {
        // A de Bruijn-ish sequence with no 4-byte repeats.
        let data: Vec<u8> = (0..600u32)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        round_trip(&data, MatchFinder::default());
    }

    #[test]
    fn lazy_matching_never_corrupts() {
        let data = b"abcabcabxabcabcabcabyabcabc".repeat(20);
        round_trip(&data, MatchFinder::thorough());
        round_trip(&data, MatchFinder::fast());
    }
}
