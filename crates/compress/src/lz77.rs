//! LZ77 match finding with hash chains and one-step lazy matching.
//!
//! Produces a token stream (literals and back-references) consumed by the
//! [`crate::xdeflate`] entropy stage. The window defaults to 32 KiB like
//! DEFLATE; page-sized SFM inputs (≤ 4 KiB) always fit entirely in the
//! window.
//!
//! The hot path is allocation-free: [`MatchFinder::tokenize_into`] reuses
//! the hash-chain tables in a [`Lz77Scratch`] across pages (the head
//! table is invalidated by bumping a generation counter, not by
//! refilling it) and streams tokens into a [`TokenSink`] instead of
//! materializing a `Vec<Token>`.

use serde::{Deserialize, Serialize};

/// Smallest back-reference the tokenizer will emit.
pub const MIN_MATCH: usize = 4;
/// Largest back-reference length.
pub const MAX_MATCH: usize = 258;
/// Largest back-reference distance (32 KiB window).
pub const MAX_DIST: usize = 32 * 1024;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u32,
        /// Distance in `1..=MAX_DIST`.
        dist: u32,
    },
}

/// Receives the token stream produced by [`MatchFinder::tokenize_into`].
///
/// `pos` is the byte offset of the literal in the source, which lets
/// sinks that keep the source slice around (like the xlz packetizer)
/// reference literal runs without buffering the bytes.
pub trait TokenSink {
    /// One literal byte at source offset `pos`.
    fn literal(&mut self, pos: usize, byte: u8);
    /// A back-reference of `len` bytes at distance `dist`.
    fn emit_match(&mut self, len: u32, dist: u32);
}

impl TokenSink for Vec<Token> {
    fn literal(&mut self, _pos: usize, byte: u8) {
        self.push(Token::Literal(byte));
    }

    fn emit_match(&mut self, len: u32, dist: u32) {
        self.push(Token::Match { len, dist });
    }
}

/// Chain terminator inside [`Lz77Scratch`].
const NO_POS: usize = usize::MAX;

/// Reusable hash-chain tables for the tokenizer.
///
/// The `head` table stores `(generation << 32) | position`; starting a
/// new page bumps the generation, instantly invalidating every stale
/// entry without touching the 32 K-entry table. `prev` needs no such
/// tagging: `prev[i]` is always written when position `i` is inserted,
/// before any chain walk of the current generation can read it.
#[derive(Debug, Clone)]
pub struct Lz77Scratch {
    head: Vec<u64>,
    prev: Vec<u32>,
    generation: u32,
}

impl Default for Lz77Scratch {
    fn default() -> Self {
        Self {
            head: vec![0; HASH_SIZE],
            prev: Vec::new(),
            generation: 0,
        }
    }
}

impl Lz77Scratch {
    /// Creates empty tables (first use sizes them).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "input too large for u32 positions");
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation counter wrapped: stale tags could now collide
            // with live ones, so pay for one full reset.
            self.head.iter_mut().for_each(|e| *e = 0);
            self.generation = 1;
        }
        if self.prev.len() < n {
            self.prev.resize(n, 0);
        }
    }

    #[inline]
    fn chain_head(&self, h: usize) -> usize {
        let e = self.head[h];
        if (e >> 32) as u32 == self.generation {
            (e & 0xffff_ffff) as usize
        } else {
            NO_POS
        }
    }

    #[inline]
    fn chain_next(&self, pos: usize) -> usize {
        let p = self.prev[pos];
        if p == u32::MAX {
            NO_POS
        } else {
            p as usize
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize, n: usize) {
        if i + MIN_MATCH <= n {
            self.insert_hashed(MatchFinder::hash(data, i), i);
        }
    }

    /// Inserts position `i` with its hash already computed (the hot
    /// loop hashes once and shares it between lookup and insert). The
    /// caller guarantees `i + MIN_MATCH <= data.len()`.
    #[inline]
    fn insert_hashed(&mut self, h: usize, i: usize) {
        let e = self.head[h];
        self.prev[i] = if (e >> 32) as u32 == self.generation {
            (e & 0xffff_ffff) as u32
        } else {
            u32::MAX
        };
        self.head[h] = (u64::from(self.generation) << 32) | i as u64;
    }
}

/// Longest common prefix of `data[cand..]` and `data[i..]`, capped at
/// `limit`, compared a 128-bit word at a time (64/8-bit tails). Caller
/// guarantees `cand < i` and `i + limit <= data.len()`.
#[inline]
fn match_len(data: &[u8], cand: usize, i: usize, limit: usize) -> usize {
    let mut l = 0usize;
    while l + 16 <= limit {
        let a = u128::from_le_bytes(data[cand + l..cand + l + 16].try_into().unwrap());
        let b = u128::from_le_bytes(data[i + l..i + l + 16].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 16;
    }
    while l + 8 <= limit {
        let a = u64::from_le_bytes(data[cand + l..cand + l + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[i + l..i + l + 8].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < limit && data[cand + l] == data[i + l] {
        l += 1;
    }
    l
}

/// Configurable hash-chain match finder.
///
/// # Examples
///
/// ```
/// use xfm_compress::lz77::{MatchFinder, Token};
///
/// let mf = MatchFinder::default();
/// let tokens = mf.tokenize(b"abcdabcdabcd");
/// assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchFinder {
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
    /// Stride for inserting positions covered by a match into the hash
    /// chains (1 = every position; 2+ trades a little ratio for speed).
    pub insert_step: usize,
}

impl MatchFinder {
    /// A fast configuration (short chains, no lazy matching).
    #[must_use]
    pub const fn fast() -> Self {
        Self {
            max_chain: 8,
            good_enough: 32,
            lazy: false,
            insert_step: 1,
        }
    }

    /// The fastest configuration (minimal chains, sparse insertion) —
    /// the profile of the FSE-based throughput codec.
    #[must_use]
    pub const fn turbo() -> Self {
        Self {
            max_chain: 2,
            good_enough: 8,
            lazy: false,
            insert_step: 3,
        }
    }

    /// A thorough configuration (long chains, lazy matching).
    #[must_use]
    pub const fn thorough() -> Self {
        Self {
            max_chain: 128,
            good_enough: 128,
            lazy: true,
            insert_step: 1,
        }
    }

    fn hash(data: &[u8], i: usize) -> usize {
        let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    }

    /// Tokenizes `data` into literals and back-references. Decoding the
    /// token stream always reproduces `data` exactly.
    ///
    /// Thin wrapper over [`Self::tokenize_into`] that allocates fresh
    /// tables and collects into a `Vec<Token>`.
    #[must_use]
    pub fn tokenize(&self, data: &[u8]) -> Vec<Token> {
        let mut tokens = Vec::with_capacity(data.len() / 2);
        self.tokenize_into(data, &mut Lz77Scratch::new(), &mut tokens);
        tokens
    }

    fn find(&self, data: &[u8], scratch: &Lz77Scratch, i: usize) -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        self.find_from(data, scratch, i, scratch.chain_head(Self::hash(data, i)))
    }

    /// The chain walk of [`Self::find`] with the first candidate (the
    /// hash-head for position `i`) already looked up.
    fn find_from(
        &self,
        data: &[u8],
        scratch: &Lz77Scratch,
        i: usize,
        mut cand: usize,
    ) -> Option<(usize, usize)> {
        let n = data.len();
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.max_chain;
        let limit = (n - i).min(MAX_MATCH);
        while cand != NO_POS && chain > 0 {
            let dist = i - cand;
            if dist > MAX_DIST {
                break;
            }
            // Quick reject on the byte after the current best.
            if i + best_len < n && data[cand + best_len] == data[i + best_len] {
                let l = match_len(data, cand, i, limit);
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= self.good_enough || l == limit {
                        break;
                    }
                }
            }
            cand = scratch.chain_next(cand);
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }

    /// Tokenizes `data`, streaming tokens into `sink` and reusing the
    /// hash-chain tables in `scratch`. Emits the exact same token
    /// sequence as [`Self::tokenize`] without allocating.
    pub fn tokenize_into<S: TokenSink>(
        &self,
        data: &[u8],
        scratch: &mut Lz77Scratch,
        sink: &mut S,
    ) {
        let n = data.len();
        if n < MIN_MATCH {
            for (i, &b) in data.iter().enumerate() {
                sink.literal(i, b);
            }
            return;
        }

        scratch.begin(n);
        let mut i = 0usize;
        // Hash each position once, sharing it between the chain lookup
        // and the insert (the two used to hash independently).
        while i + MIN_MATCH <= n {
            let h = Self::hash(data, i);
            let cand = scratch.chain_head(h);
            let found = self.find_from(data, scratch, i, cand);
            scratch.insert_hashed(h, i);
            match found {
                None => {
                    sink.literal(i, data[i]);
                    i += 1;
                }
                Some((len, dist)) => {
                    // Lazy: check if deferring one byte yields a longer match.
                    let mut take_len = len;
                    let mut take_dist = dist;
                    if self.lazy && i + 1 < n {
                        if let Some((len2, dist2)) = self.find(data, scratch, i + 1) {
                            if len2 > len {
                                sink.literal(i, data[i]);
                                i += 1;
                                take_len = len2;
                                take_dist = dist2;
                            }
                        }
                    }
                    sink.emit_match(take_len as u32, take_dist as u32);
                    // Insert the positions covered by the match; the
                    // turbo profile strides to trade ratio for speed.
                    let start = i + 1;
                    let end = (i + take_len).min(n);
                    let mut j = start;
                    while j < end {
                        scratch.insert(data, j, n);
                        j += self.insert_step;
                    }
                    i = end;
                }
            }
        }
        // Tail too short to match or hash: literals.
        while i < n {
            sink.literal(i, data[i]);
            i += 1;
        }
    }
}

/// log2 of the hash-head table size. 13 bits (8 K entries, 64 KiB of
/// `u64` tags) keeps the table inside L2 and makes the fresh-scratch
/// zeroing cost negligible next to a page tokenize, closing most of the
/// fresh-vs-warm throughput gap.
const HASH_BITS: u32 = 13;
const HASH_SIZE: usize = 1 << HASH_BITS;

impl Default for MatchFinder {
    /// Defaults to the thorough configuration (xdeflate's profile).
    fn default() -> Self {
        Self::thorough()
    }
}

/// Appends the `len`-byte back-reference at distance `dist` to `dst`
/// using bulk copies instead of a byte loop.
///
/// Non-overlapping copies (`dist >= len`) are a single
/// `extend_from_within` (memcpy). Overlapping copies exploit that the
/// output is periodic with period `dist`: once the first `dist` bytes
/// are appended, the copyable region doubles each iteration, so even a
/// 258-byte dist-1 RLE run takes O(log len) bulk copies.
///
/// # Panics
///
/// Panics if `dist` is 0 or greater than `dst.len()` — callers validate
/// distances before copying.
#[inline]
pub(crate) fn copy_match(dst: &mut Vec<u8>, dist: usize, len: usize) {
    let start = dst.len() - dist;
    if dist >= len {
        dst.extend_from_within(start..start + len);
        return;
    }
    if dist == 1 {
        let b = dst[start];
        dst.resize(dst.len() + len, b);
        return;
    }
    let mut copied = 0usize;
    while copied < len {
        let n = (len - copied).min(dst.len() - start);
        dst.extend_from_within(start..start + n);
        copied += n;
    }
}

/// Expands a token stream back into bytes (reference decoder used by
/// tests and by the xdeflate decompressor's copy loop).
#[must_use]
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => copy_match(&mut out, dist as usize, len as usize),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], mf: MatchFinder) {
        let tokens = mf.tokenize(data);
        assert_eq!(expand(&tokens), data, "round-trip failed");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            round_trip(b"", mf);
            round_trip(b"a", mf);
            round_trip(b"abc", mf);
        }
    }

    #[test]
    fn repetitive_input_compresses_to_matches() {
        let data = b"hello world hello world hello world hello world";
        let tokens = MatchFinder::default().tokenize(data);
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .count();
        assert!(matches >= 1);
        assert!(tokens.len() < data.len() / 2);
        round_trip(data, MatchFinder::default());
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." produces a dist-1 overlapping match like DEFLATE RLE.
        let data = vec![b'a'; 300];
        let tokens = MatchFinder::default().tokenize(&data);
        assert!(tokens.len() <= 4, "RLE should be a couple of tokens");
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn match_lengths_and_dists_in_bounds() {
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.push((i % 251) as u8);
        }
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            for t in mf.tokenize(&data) {
                if let Token::Match { len, dist } = t {
                    assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                    assert!((1..=MAX_DIST).contains(&(dist as usize)));
                }
            }
            round_trip(&data, mf);
        }
    }

    #[test]
    fn incompressible_input_is_all_literals() {
        // A de Bruijn-ish sequence with no 4-byte repeats.
        let data: Vec<u8> = (0..600u32)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        round_trip(&data, MatchFinder::default());
    }

    #[test]
    fn lazy_matching_never_corrupts() {
        let data = b"abcabcabxabcabcabcabyabcabc".repeat(20);
        round_trip(&data, MatchFinder::thorough());
        round_trip(&data, MatchFinder::fast());
    }

    #[test]
    fn reused_scratch_emits_identical_tokens() {
        let inputs: Vec<Vec<u8>> = vec![
            b"hello world hello world hello world".to_vec(),
            vec![b'a'; 300],
            (0..600u32)
                .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
                .collect(),
            b"abcabcabxabcabcabcabyabcabc".repeat(20),
            b"".to_vec(),
            b"xy".to_vec(),
        ];
        for mf in [MatchFinder::fast(), MatchFinder::thorough()] {
            let mut scratch = Lz77Scratch::new();
            for data in &inputs {
                let mut streamed = Vec::new();
                mf.tokenize_into(data, &mut scratch, &mut streamed);
                assert_eq!(streamed, mf.tokenize(data), "scratch reuse changed tokens");
            }
        }
    }

    #[test]
    fn generation_wrap_resets_head_table() {
        let mut scratch = Lz77Scratch::new();
        scratch.generation = u32::MAX;
        let data = b"wrap wrap wrap wrap wrap wrap";
        let mut tokens = Vec::new();
        MatchFinder::default().tokenize_into(data, &mut scratch, &mut tokens);
        assert_eq!(scratch.generation, 1);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn copy_match_agrees_with_byte_loop() {
        // Every (dist, len) shape: non-overlapping, overlapping with
        // every period, dist-1 RLE, and len < dist.
        let seed: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        for dist in 1..=seed.len() {
            for len in [1, 2, 3, 5, 8, 17, 64, 130, 258] {
                let mut fast = seed.clone();
                copy_match(&mut fast, dist, len);
                let mut slow = seed.clone();
                let start = slow.len() - dist;
                for k in 0..len {
                    let b = slow[start + k];
                    slow.push(b);
                }
                assert_eq!(fast, slow, "dist {dist} len {len}");
            }
        }
    }

    #[test]
    fn word_at_a_time_match_len_agrees_with_bytes() {
        let mut data = b"0123456789abcdef0123456789abcdeX".to_vec();
        data.extend_from_slice(&data.clone());
        for limit in 0..=16 {
            let expected = (0..limit).take_while(|&l| data[l] == data[16 + l]).count();
            assert_eq!(match_len(&data, 0, 16, limit), expected, "limit {limit}");
        }
    }
}
