//! A from-scratch tabled Asymmetric Numeral System (tANS/FSE) entropy
//! coder — the fast alternative to the Huffman stage in `xdeflate`.
//!
//! The coder follows the classic FSE construction: symbol frequencies
//! are normalized to sum to `1 << LOG`, spread over the state table
//! with a coprime step, and the encoder walks states *backwards*
//! through the message while the decoder replays them forwards. Each
//! symbol costs `LOG - log2(freq)` bits (fractional on average), so a
//! skewed literal distribution codes tighter than Huffman's whole-bit
//! codes while the per-symbol work is one table load, one shift, and
//! one bit push — no tree walk.
//!
//! The table size is a const-generic: literals ride a 512-state table
//! (`LOG = 9`, enough for the 265-symbol alphabet), distances a
//! 64-state one. Small tables keep the per-block rebuild cost — the
//! dominant fixed cost on 4 KiB pages — proportional to what the
//! alphabet actually needs.
//!
//! Encoding pushes bits into a [`BackwardBitWriter`], so the backward
//! symbol walk directly produces a stream the forward [`BitReader`]
//! decodes in order — no staging buffer, no reversal pass.
//!
//! Two interleaved states (even/odd symbol positions) share one table,
//! giving the decoder two independent dependency chains per stream for
//! instruction-level parallelism; [`crate::xdef_fse`] wires them up.
//!
//! # Examples
//!
//! ```
//! use xfm_compress::fse::{normalize_freqs, FseDecoder, FseEncoder};
//! use xfm_compress::bitio::{BackwardBitWriter, BitReader};
//!
//! const LOG: u32 = 9;
//! let mut freqs = [0u64; 4];
//! let msg = [0usize, 1, 0, 2, 0, 0, 3, 1, 0, 0];
//! for &s in &msg {
//!     freqs[s] += 1;
//! }
//! let mut norm = Vec::new();
//! normalize_freqs(&freqs, &mut norm, LOG);
//!
//! let mut enc = FseEncoder::<LOG>::default();
//! enc.rebuild(&norm)?;
//! let mut w = BackwardBitWriter::default();
//! w.begin(64);
//! let mut state = FseEncoder::<LOG>::INITIAL_STATE;
//! for &s in msg.iter().rev() {
//!     enc.encode(s, &mut state, &mut w);
//! }
//! w.push(state - (1 << LOG), LOG); // read back first
//! let (pad, bytes) = w.finish();
//!
//! let mut dec = FseDecoder::<LOG>::default();
//! dec.rebuild(&norm)?;
//! let mut r = BitReader::new(bytes);
//! r.read_bits(pad)?;
//! let mut state = r.read_bits(LOG)?;
//! let view = dec.view();
//! let decoded: Vec<usize> = (0..msg.len())
//!     .map(|_| view.step(&mut state, &mut r).map(usize::from))
//!     .collect::<Result<_, _>>()?;
//! assert_eq!(decoded, msg);
//! # Ok::<(), xfm_types::Error>(())
//! ```

use xfm_types::{Error, Result};

use crate::bitio::{BackwardBitWriter, BitReader, BitWriter};

/// Normalizes raw symbol frequencies so they sum to exactly `1 << log`,
/// with every present symbol keeping a frequency of at least 1
/// (largest-remainder rounding; drift is settled against the most
/// frequent symbols, which costs the least precision).
///
/// Returns the number of present symbols; zero means every frequency
/// was zero and `norm` is all zeros.
///
/// # Panics
///
/// Panics if more than `1 << log` symbols are present (they cannot all
/// keep a nonzero slot) — pick `log` ≥ log2(alphabet).
pub fn normalize_freqs(freqs: &[u64], norm: &mut Vec<u16>, log: u32) -> usize {
    let table_size = 1u64 << log;
    norm.clear();
    norm.resize(freqs.len(), 0);
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0;
    }
    let present = freqs.iter().filter(|&&f| f > 0).count();
    assert!(
        present as u64 <= table_size,
        "{present} symbols cannot share {table_size} states"
    );
    let mut assigned = 0u64;
    for (n, &f) in norm.iter_mut().zip(freqs) {
        if f > 0 {
            let share = ((u128::from(f) * u128::from(table_size)) / u128::from(total)) as u64;
            *n = share.clamp(1, table_size - 1) as u16;
            assigned += u64::from(*n);
        }
    }
    // Settle rounding drift on the largest entries: adding there wastes
    // the least precision, and subtracting there never hits the floor
    // of 1 until everything else has.
    while assigned != table_size {
        let idx = if assigned < table_size {
            (0..norm.len()).max_by_key(|&i| norm[i]).unwrap()
        } else {
            (0..norm.len())
                .filter(|&i| norm[i] > 1)
                .max_by_key(|&i| norm[i])
                .unwrap()
        };
        if assigned < table_size {
            let room = (table_size - assigned).min(table_size - u64::from(norm[idx]));
            norm[idx] += room as u16;
            assigned += room;
        } else {
            let cut = (assigned - table_size).min(u64::from(norm[idx]) - 1);
            norm[idx] -= cut as u16;
            assigned -= cut;
        }
    }
    present
}

// Symbols are spread over table positions by walking with a step
// coprime to the table size (the step is odd, so the walk is a
// permutation). Occurrence `k` of a symbol is, by convention, its k-th
// *walk* position — both table builds below use the same numbering, so
// each build is a single pass over the walk with no intermediate
// spread array or per-symbol counters.
#[inline]
fn spread_step(log: u32) -> usize {
    let table_size = 1usize << log;
    (table_size >> 1) + (table_size >> 3) + 3
}

fn validate_norm(norm: &[u16], log: u32) -> Result<()> {
    let total: u32 = norm.iter().map(|&f| u32::from(f)).sum();
    if total != 1 << log {
        return Err(Error::Corrupt(format!(
            "FSE table normalizes to {total}, want {}",
            1u32 << log
        )));
    }
    Ok(())
}

/// Per-symbol encode metadata plus the state-transition table, over a
/// `1 << LOG`-state table.
///
/// Encoder states live in `TABLE..2*TABLE`; for symbol `s` with
/// normalized frequency `f`, a state `x` emits
/// `maxbits - (x < threshold)` low bits of `x` and transitions through
/// `state_table[base + (x >> nbits)]` (`base` is pre-offset by `-f`).
/// The three per-symbol fields pack into one `u64`
/// (`threshold << 32 | (base as u16) << 16 | maxbits`) so the encode
/// hot loop issues a single metadata load per symbol.
#[derive(Debug, Clone, Default)]
pub struct FseEncoder<const LOG: u32> {
    meta: Vec<u64>,
    state_table: Vec<u16>,
}

impl<const LOG: u32> FseEncoder<LOG> {
    /// The canonical starting state for the backward pass. Any state in
    /// `TABLE..2*TABLE` works; fixing one keeps output deterministic.
    pub const INITIAL_STATE: u32 = 1 << LOG;

    /// Rebuilds the tables for a normalized frequency vector (must sum
    /// to `1 << LOG`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the frequencies do not sum to
    /// `1 << LOG`.
    pub fn rebuild(&mut self, norm: &[u16]) -> Result<()> {
        validate_norm(norm, LOG)?;
        let table_size = 1usize << LOG;
        let step = spread_step(LOG);
        let mask = table_size - 1;
        self.meta.clear();
        self.state_table.clear();
        self.state_table.resize(table_size, 0);
        // Single fused pass: the walk visits symbol `s`'s occurrences
        // in order, and occurrence `k` serves sub-state `f + k`, whose
        // transition slot is `base + f + k = cum + k` — consecutive, so
        // the inner loop is a sequential fill.
        let mut cum = 0usize;
        let mut pos = 0usize;
        for &f in norm {
            let f = usize::from(f);
            if f == 0 {
                self.meta.push(0);
                continue;
            }
            let max_bits = LOG - (31 - (f as u32).leading_zeros());
            let b = cum as i32 - f as i32;
            self.meta.push(
                (u64::from((f as u32) << max_bits) << 32)
                    | (u64::from(b as u16) << 16)
                    | u64::from(max_bits),
            );
            for slot in &mut self.state_table[cum..cum + f] {
                *slot = pos as u16;
                pos = (pos + step) & mask;
            }
            cum += f;
        }
        debug_assert_eq!(pos, 0, "spread walk is a permutation");
        Ok(())
    }

    /// Encodes one symbol (backward pass): pushes the state's low bits
    /// and advances `state`.
    ///
    /// # Panics
    ///
    /// Panics (or indexes out of bounds) if `sym` was absent from the
    /// normalized frequencies — the caller's frequency count covers
    /// every symbol it encodes.
    #[inline]
    pub fn encode(&self, sym: usize, state: &mut u32, w: &mut BackwardBitWriter) {
        let (bits, nb) = self.encode_raw(sym, state);
        w.push(bits, nb);
    }

    /// Like [`encode`](Self::encode) but returns the `(bits, nbits)`
    /// pair instead of pushing it, so callers can merge several fields
    /// into one [`BackwardBitWriter::push`]. The returned bits are in
    /// decoder read order LSB-first (state-transition bits).
    #[inline]
    pub fn encode_raw(&self, sym: usize, state: &mut u32) -> (u32, u32) {
        let m = self.meta[sym];
        let nb = (m as u32 & 0xffff) - u32::from(*state < (m >> 32) as u32);
        let bits = *state & ((1 << nb) - 1);
        let base = (m >> 16) as u16 as i16 as i32;
        let idx = (base + (*state >> nb) as i32) as usize;
        *state = (1 << LOG) + u32::from(self.state_table[idx]);
        (bits, nb)
    }

    /// Bits the current `state` would emit for `sym` (the encode cost,
    /// excluding extra bits), without mutating anything.
    #[must_use]
    pub fn cost_bits(&self, sym: usize, state: u32) -> u32 {
        let m = self.meta[sym];
        (m as u32 & 0xffff) - u32::from(state < (m >> 32) as u32)
    }
}

/// The decode table: one packed entry per state.
///
/// Entry layout: `symbol << 16 | nbits << 12 | new_base`. The decoder's
/// states are table indices in `0..1 << LOG`; stepping reads `nbits`
/// and jumps to `new_base + bits`, which always lands back in range —
/// corrupt input can decode garbage symbols but never index out of
/// bounds.
#[derive(Debug, Clone, Default)]
pub struct FseDecoder<const LOG: u32> {
    table: Vec<u32>,
}

/// A borrowed view of a built [`FseDecoder`] table used in decode
/// loops.
#[derive(Debug, Clone, Copy)]
pub struct FseView<'a, const LOG: u32> {
    table: &'a [u32],
}

impl<const LOG: u32> FseDecoder<LOG> {
    /// Rebuilds the decode table for a normalized frequency vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the frequencies do not sum to
    /// `1 << LOG`.
    pub fn rebuild(&mut self, norm: &[u16]) -> Result<()> {
        validate_norm(norm, LOG)?;
        let table_size = 1usize << LOG;
        let step = spread_step(LOG);
        let mask = table_size - 1;
        self.table.clear();
        self.table.resize(table_size, 0);
        // Same fused walk as the encoder build: occurrence `k` of a
        // symbol lands at its k-th walk position and represents
        // sub-state `c = f + k`.
        let mut pos = 0usize;
        for (sym, &f) in norm.iter().enumerate() {
            let f = u32::from(f);
            for c in f..2 * f {
                let nb = LOG - (31 - c.leading_zeros());
                let new_base = (c << nb) - table_size as u32;
                self.table[pos] = ((sym as u32) << 16) | (nb << 12) | new_base;
                pos = (pos + step) & mask;
            }
        }
        debug_assert_eq!(pos, 0, "spread walk is a permutation");
        Ok(())
    }

    /// A table view for the decode hot loop.
    ///
    /// # Panics
    ///
    /// Panics if the table has not been built yet.
    #[must_use]
    pub fn view(&self) -> FseView<'_, LOG> {
        assert_eq!(self.table.len(), 1 << LOG, "table built");
        FseView { table: &self.table }
    }
}

impl<const LOG: u32> FseView<'_, LOG> {
    /// Decodes the symbol at `state` and advances it by reading the
    /// transition bits. `state` must be below `1 << LOG`; the updated
    /// state always is.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the bitstream ends early.
    #[inline]
    pub fn step(&self, state: &mut u32, r: &mut BitReader<'_>) -> Result<u16> {
        let e = self.table[(*state as usize) & ((1 << LOG) - 1)];
        let nb = (e >> 12) & 0xf;
        *state = (e & 0xfff) + r.read_bits(nb)?;
        Ok((e >> 16) as u16)
    }
}

/// Writes a normalized frequency table: per symbol either a `0` bit and
/// a 4-bit zero-run length (`run - 1`, covering up to 16 absent symbols
/// at once), or a `1` bit and `freq - 1` in `log` bits.
pub fn write_norm(w: &mut BitWriter, norm: &[u16], log: u32) {
    let mut i = 0usize;
    while i < norm.len() {
        if norm[i] == 0 {
            let mut run = 1usize;
            while i + run < norm.len() && norm[i + run] == 0 && run < 16 {
                run += 1;
            }
            w.write_bits(0, 1);
            w.write_bits(run as u32 - 1, 4);
            i += run;
        } else {
            w.write_bits(1, 1);
            w.write_bits(u32::from(norm[i]) - 1, log);
            i += 1;
        }
    }
}

/// Reads a normalized frequency table of `alphabet` symbols written by
/// [`write_norm`], validating that it sums to exactly `1 << log`.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] on truncation, oversubscription, or a
/// total below `1 << log`.
pub fn read_norm(
    r: &mut BitReader<'_>,
    alphabet: usize,
    norm: &mut Vec<u16>,
    log: u32,
) -> Result<()> {
    norm.clear();
    let mut total = 0u32;
    while norm.len() < alphabet {
        if r.read_bit()? == 1 {
            let f = r.read_bits(log)? + 1;
            total += f;
            if total > 1 << log {
                return Err(Error::Corrupt("FSE frequencies oversubscribed".into()));
            }
            norm.push(f as u16);
        } else {
            let run = r.read_bits(4)? as usize + 1;
            if norm.len() + run > alphabet {
                return Err(Error::Corrupt("FSE zero-run overruns alphabet".into()));
            }
            norm.extend(std::iter::repeat_n(0u16, run));
        }
    }
    if total != 1 << log {
        return Err(Error::Corrupt(format!(
            "FSE frequencies sum to {total}, want {}",
            1u32 << log
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: u32 = 10;
    const TABLE_SIZE: u32 = 1 << LOG;

    fn norm_of(freqs: &[u64]) -> Vec<u16> {
        let mut norm = Vec::new();
        normalize_freqs(freqs, &mut norm, LOG);
        norm
    }

    fn round_trip_msg(freqs: &[u64], msg: &[usize]) {
        let norm = norm_of(freqs);
        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let mut bw = BackwardBitWriter::default();
        bw.begin(4 * msg.len() + 16);
        let mut state = FseEncoder::<LOG>::INITIAL_STATE;
        for &s in msg.iter().rev() {
            enc.encode(s, &mut state, &mut bw);
        }
        bw.push(state - TABLE_SIZE, LOG);
        let (pad, body) = bw.finish();
        let mut w = BitWriter::new();
        write_norm(&mut w, &norm, LOG);
        w.write_bits(pad, 3);
        w.align_byte();
        w.write_bytes(body);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        let mut read_back = Vec::new();
        read_norm(&mut r, freqs.len(), &mut read_back, LOG).unwrap();
        assert_eq!(read_back, norm, "norm table survives the wire");
        let skip = r.read_bits(3).unwrap();
        r.align_byte();
        r.read_bits(skip).unwrap();
        let mut dec = FseDecoder::<LOG>::default();
        dec.rebuild(&read_back).unwrap();
        let mut state = r.read_bits(LOG).unwrap();
        let view = dec.view();
        for &want in msg {
            assert_eq!(view.step(&mut state, &mut r).unwrap() as usize, want);
        }
    }

    #[test]
    fn normalize_sums_to_table_size() {
        for freqs in [
            vec![3u64, 1, 4, 1, 5, 9, 2, 6],
            vec![1; 200],
            vec![1_000_000, 1],
            vec![0, 7, 0, 0, 1],
        ] {
            let norm = norm_of(&freqs);
            let total: u32 = norm.iter().map(|&f| u32::from(f)).sum();
            assert_eq!(total, TABLE_SIZE);
            for (n, f) in norm.iter().zip(&freqs) {
                assert_eq!(*n == 0, *f == 0, "presence preserved");
            }
        }
    }

    #[test]
    fn normalize_works_at_small_logs() {
        for log in [6u32, 8, 9] {
            let mut norm = Vec::new();
            normalize_freqs(&[100, 10, 1, 0, 7], &mut norm, log);
            let total: u32 = norm.iter().map(|&f| u32::from(f)).sum();
            assert_eq!(total, 1 << log, "log {log}");
        }
    }

    #[test]
    fn normalize_single_symbol_saturates_table() {
        let norm = norm_of(&[0, 42, 0]);
        assert_eq!(norm, vec![0, TABLE_SIZE as u16, 0]);
    }

    #[test]
    fn normalize_empty_is_zero() {
        assert_eq!(normalize_freqs(&[0, 0, 0], &mut Vec::new(), LOG), 0);
    }

    #[test]
    fn skewed_distribution_round_trips() {
        let freqs = [1000u64, 500, 100, 10, 1, 1, 1, 1];
        let msg: Vec<usize> = (0..8).cycle().take(300).collect();
        round_trip_msg(&freqs, &msg);
    }

    #[test]
    fn single_symbol_alphabet_codes_in_zero_bits() {
        // f == TABLE_SIZE ⇒ nbits == 0 for every state: pure RLE.
        let freqs = [0u64, 99, 0];
        let msg = vec![1usize; 500];
        let norm = norm_of(&freqs);
        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let mut bw = BackwardBitWriter::default();
        bw.begin(64);
        let mut state = FseEncoder::<LOG>::INITIAL_STATE;
        for &s in msg.iter().rev() {
            enc.encode(s, &mut state, &mut bw);
        }
        bw.push(state - TABLE_SIZE, LOG);
        let (_, body) = bw.finish();
        assert!(body.len() <= 2, "500 symbols in {} bytes", body.len());
        round_trip_msg(&freqs, &msg);
    }

    #[test]
    fn two_symbol_near_saturation_round_trips() {
        // One symbol at TABLE_SIZE - 1, the other at the floor of 1.
        let freqs = [u64::MAX / 2, 1];
        let norm = norm_of(&freqs);
        assert_eq!(norm[0], TABLE_SIZE as u16 - 1);
        assert_eq!(norm[1], 1);
        let mut msg = vec![0usize; 400];
        msg[13] = 1;
        msg[399] = 1;
        round_trip_msg(&freqs, &msg);
    }

    #[test]
    fn full_byte_alphabet_round_trips() {
        let freqs: Vec<u64> = (0..256).map(|i| (i % 7 + 1) as u64 * 3).collect();
        let msg: Vec<usize> = (0..256).collect();
        round_trip_msg(&freqs, &msg);
    }

    #[test]
    fn small_table_round_trips() {
        // The distance alphabet's configuration: 17 symbols, 64 states.
        let freqs = [40u64, 30, 20, 10, 5, 2, 1, 1, 1, 0, 0, 1, 0, 0, 0, 0, 1];
        let msg: Vec<usize> = (0..300).map(|i| [0, 1, 2, 3, 4, 5, 6, 16][i % 8]).collect();
        let mut norm = Vec::new();
        normalize_freqs(&freqs, &mut norm, 6);
        let mut enc = FseEncoder::<6>::default();
        enc.rebuild(&norm).unwrap();
        let mut bw = BackwardBitWriter::default();
        bw.begin(4 * msg.len() + 16);
        let mut state = FseEncoder::<6>::INITIAL_STATE;
        for &s in msg.iter().rev() {
            enc.encode(s, &mut state, &mut bw);
        }
        bw.push(state - (1 << 6), 6);
        let (pad, body) = bw.finish();
        let mut dec = FseDecoder::<6>::default();
        dec.rebuild(&norm).unwrap();
        let mut r = BitReader::new(body);
        r.read_bits(pad).unwrap();
        let mut state = r.read_bits(6).unwrap();
        let view = dec.view();
        for &want in &msg {
            assert_eq!(view.step(&mut state, &mut r).unwrap() as usize, want);
        }
    }

    #[test]
    fn average_cost_beats_flat_code_on_skew() {
        // 90/10 split: entropy ≈ 0.47 bits/symbol; Huffman would pay 1.
        let freqs = [9000u64, 1000];
        let norm = norm_of(&freqs);
        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let msg: Vec<usize> = (0..1000).map(|i| usize::from(i % 10 == 0)).collect();
        let mut bw = BackwardBitWriter::default();
        bw.begin(1024);
        let mut state = FseEncoder::<LOG>::INITIAL_STATE;
        for &s in msg.iter().rev() {
            enc.encode(s, &mut state, &mut bw);
        }
        let (_, body) = bw.finish();
        let bits = body.len() * 8;
        assert!(
            bits < 700,
            "1000 symbols at H≈0.47 cost {bits} bits, expected < 700"
        );
    }

    #[test]
    fn corrupt_norm_tables_rejected() {
        let mut dec = FseDecoder::<LOG>::default();
        // Does not sum to TABLE_SIZE.
        assert!(dec.rebuild(&[1, 2, 3]).is_err());
        let mut enc = FseEncoder::<LOG>::default();
        assert!(enc.rebuild(&[0; 7]).is_err());
    }

    #[test]
    fn read_norm_rejects_oversubscription_and_truncation() {
        let mut w = BitWriter::new();
        // Two symbols that each claim the full table.
        w.write_bits(1, 1);
        w.write_bits(TABLE_SIZE - 1, LOG);
        w.write_bits(1, 1);
        w.write_bits(TABLE_SIZE - 1, LOG);
        let bytes = w.finish();
        let mut norm = Vec::new();
        assert!(read_norm(&mut BitReader::new(&bytes), 2, &mut norm, LOG).is_err());
        assert!(read_norm(&mut BitReader::new(&[]), 2, &mut norm, LOG).is_err());
    }

    #[test]
    fn decoder_state_stays_in_bounds_on_garbage() {
        // Any bit salad keeps indices valid; only stream exhaustion errors.
        let norm = norm_of(&[5, 3, 2, 1, 1]);
        let mut dec = FseDecoder::<LOG>::default();
        dec.rebuild(&norm).unwrap();
        let garbage: Vec<u8> = (0..64u32).map(|i| (i * 151 % 251) as u8).collect();
        let mut r = BitReader::new(&garbage);
        let mut state = 777u32 % TABLE_SIZE;
        let view = dec.view();
        for _ in 0..300 {
            match view.step(&mut state, &mut r) {
                Ok(_) => assert!(state < TABLE_SIZE),
                Err(_) => return,
            }
        }
    }

    #[test]
    fn interleaved_dual_state_round_trips() {
        // Even positions on state A, odd on state B, one shared table —
        // the layout xdef-fse uses for its literal stream.
        let freqs: Vec<u64> = (1..=64).collect();
        let msg: Vec<usize> = (0..500).map(|i| (i * 17) % 64).collect();
        let norm = norm_of(&freqs);
        let mut enc = FseEncoder::<LOG>::default();
        enc.rebuild(&norm).unwrap();
        let (mut a, mut b) = (
            FseEncoder::<LOG>::INITIAL_STATE,
            FseEncoder::<LOG>::INITIAL_STATE,
        );
        let mut bw = BackwardBitWriter::default();
        bw.begin(4 * msg.len() + 16);
        for i in (0..msg.len()).rev() {
            let st = if i % 2 == 0 { &mut a } else { &mut b };
            enc.encode(msg[i], st, &mut bw);
        }
        bw.push(b - TABLE_SIZE, LOG);
        bw.push(a - TABLE_SIZE, LOG);
        let (pad, body) = bw.finish();

        let mut dec = FseDecoder::<LOG>::default();
        dec.rebuild(&norm).unwrap();
        let mut r = BitReader::new(body);
        r.read_bits(pad).unwrap();
        let mut a = r.read_bits(LOG).unwrap();
        let mut b = r.read_bits(LOG).unwrap();
        let view = dec.view();
        for (i, &want) in msg.iter().enumerate() {
            let st = if i % 2 == 0 { &mut a } else { &mut b };
            assert_eq!(view.step(st, &mut r).unwrap() as usize, want, "pos {i}");
        }
    }
}
