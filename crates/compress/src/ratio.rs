//! Page-granular and channel-interleaved compression-ratio measurement.
//!
//! Reproduces the data path of the paper's multi-channel mode (§6,
//! Fig. 9): a 4 KiB page is striped across `n` DIMMs at 256 B channel
//! granularity, each DIMM compresses only its own interleaved share, and
//! compressed pages are placed at the *same offset* in every DIMM's SFM
//! region — so each page's slot is sized by the *largest* per-DIMM
//! compressed output (internal fragmentation).

use serde::{Deserialize, Serialize};
use xfm_types::{Error, Result};

use crate::codec::Codec;

/// Channel interleave granularity (Skylake: 256 B).
pub const INTERLEAVE_GRANULE: usize = 256;

/// Measures the plain page-granular compression ratio of `data`:
/// `original_bytes / compressed_bytes`, compressing each `page_size`
/// chunk independently (as the SFM does).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `page_size` is zero, or propagates
/// codec failures.
///
/// # Examples
///
/// ```
/// use xfm_compress::{page_ratio, Corpus, XDeflate};
///
/// let data = Corpus::Json.generate(1, 64 * 1024);
/// let r = page_ratio(&XDeflate::default(), &data, 4096)?;
/// assert!(r > 1.5);
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub fn page_ratio(codec: &dyn Codec, data: &[u8], page_size: usize) -> Result<f64> {
    if page_size == 0 {
        return Err(Error::InvalidConfig("page_size must be non-zero".into()));
    }
    let mut compressed_total = 0usize;
    for page in data.chunks(page_size) {
        let mut out = Vec::with_capacity(page.len());
        compressed_total += codec.compress(page, &mut out)?;
    }
    if compressed_total == 0 {
        return Ok(1.0);
    }
    Ok(data.len() as f64 / compressed_total as f64)
}

/// Splits one page into `n_dimms` interleaved shares: DIMM `d` receives
/// granules `d, d + n, d + 2n, …` of [`INTERLEAVE_GRANULE`] bytes each
/// (paper Fig. 9b's reordered data).
///
/// # Panics
///
/// Panics if `n_dimms` is zero.
#[must_use]
pub fn split_interleaved(page: &[u8], n_dimms: usize) -> Vec<Vec<u8>> {
    assert!(n_dimms > 0, "n_dimms must be non-zero");
    let mut shares = vec![Vec::with_capacity(page.len() / n_dimms + INTERLEAVE_GRANULE); n_dimms];
    for (i, granule) in page.chunks(INTERLEAVE_GRANULE).enumerate() {
        shares[i % n_dimms].extend_from_slice(granule);
    }
    shares
}

/// Reassembles a page from its interleaved shares (the gather step of
/// the specialized `CPU_Fallback` decompression path).
///
/// # Panics
///
/// Panics if `shares` is empty.
#[must_use]
pub fn gather_interleaved(shares: &[Vec<u8>]) -> Vec<u8> {
    assert!(!shares.is_empty(), "shares must be non-empty");
    let total: usize = shares.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut offsets = vec![0usize; shares.len()];
    let mut d = 0usize;
    while out.len() < total {
        let share = &shares[d % shares.len()];
        let off = &mut offsets[d % shares.len()];
        if *off < share.len() {
            let end = (*off + INTERLEAVE_GRANULE).min(share.len());
            out.extend_from_slice(&share[*off..end]);
            *off = end;
        }
        d += 1;
    }
    out
}

/// Result of the multi-channel compression study for one corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterleaveReport {
    /// DIMMs the page was striped over (1, 2, or 4 in the paper).
    pub n_dimms: usize,
    /// Ratio counting only compressed bytes (`orig / sum(compressed)`).
    pub raw_ratio: f64,
    /// Ratio after same-offset slot alignment
    /// (`orig / (n_dimms x max(compressed))` summed per page) —
    /// the deployable ratio the paper reports.
    pub aligned_ratio: f64,
}

impl InterleaveReport {
    /// Fraction of the 1-DIMM space savings retained, given the 1-DIMM
    /// aligned ratio (paper: 86.2% on average for 4 DIMMs).
    ///
    /// Savings are `1 - 1/ratio`; this returns the savings quotient.
    #[must_use]
    pub fn savings_retention(&self, single_dimm_ratio: f64) -> f64 {
        let base = 1.0 - 1.0 / single_dimm_ratio;
        if base <= 0.0 {
            return 1.0;
        }
        ((1.0 - 1.0 / self.aligned_ratio) / base).max(0.0)
    }
}

/// Runs the Fig. 8 measurement: compresses `data` page by page in
/// `n_dimms`-way interleaved mode and reports both the raw and the
/// aligned (same-offset placement) compression ratios.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for a zero page size or zero DIMM
/// count, or propagates codec failures.
pub fn interleaved_ratio(
    codec: &dyn Codec,
    data: &[u8],
    page_size: usize,
    n_dimms: usize,
) -> Result<InterleaveReport> {
    if page_size == 0 || n_dimms == 0 {
        return Err(Error::InvalidConfig(
            "page_size and n_dimms must be non-zero".into(),
        ));
    }
    let mut raw_total = 0usize;
    let mut aligned_total = 0usize;
    for page in data.chunks(page_size) {
        let shares = split_interleaved(page, n_dimms);
        let mut largest = 0usize;
        for share in &shares {
            let mut out = Vec::with_capacity(share.len());
            let n = codec.compress(share, &mut out)?;
            raw_total += n;
            largest = largest.max(n);
        }
        // Same-offset placement: every DIMM reserves the largest share.
        aligned_total += largest * n_dimms;
    }
    Ok(InterleaveReport {
        n_dimms,
        raw_ratio: data.len() as f64 / raw_total.max(1) as f64,
        aligned_ratio: data.len() as f64 / aligned_total.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::xdeflate::XDeflate;

    #[test]
    fn split_gather_round_trips() {
        for n in [1usize, 2, 4] {
            for len in [0usize, 100, 256, 4096, 5000] {
                let page: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let shares = split_interleaved(&page, n);
                assert_eq!(shares.len(), n);
                assert_eq!(gather_interleaved(&shares), page, "n={n} len={len}");
            }
        }
    }

    #[test]
    fn one_dimm_split_is_identity() {
        let page = Corpus::Html.generate(5, 4096);
        let shares = split_interleaved(&page, 1);
        assert_eq!(shares[0], page);
    }

    #[test]
    fn four_dimm_shares_are_quarter_pages() {
        let page = vec![7u8; 4096];
        let shares = split_interleaved(&page, 4);
        for s in &shares {
            assert_eq!(s.len(), 1024); // 4 granules of 256 B each
        }
    }

    #[test]
    fn interleaving_degrades_ratio_mildly() {
        // The paper: 2-/4-DIMM modes lose ~5%/~14% of savings on average.
        let codec = XDeflate::default();
        let data = Corpus::EnglishText.generate(11, 128 * 1024);
        let r1 = interleaved_ratio(&codec, &data, 4096, 1).unwrap();
        let r2 = interleaved_ratio(&codec, &data, 4096, 2).unwrap();
        let r4 = interleaved_ratio(&codec, &data, 4096, 4).unwrap();
        assert!(r1.aligned_ratio >= r2.aligned_ratio);
        assert!(r2.aligned_ratio >= r4.aligned_ratio);
        // But most of the savings survive interleaving.
        assert!(r4.savings_retention(r1.aligned_ratio) > 0.5);
    }

    #[test]
    fn aligned_ratio_never_exceeds_raw() {
        let codec = XDeflate::default();
        for corpus in [Corpus::Json, Corpus::LogLines, Corpus::TimeSeries] {
            let data = corpus.generate(3, 64 * 1024);
            let r = interleaved_ratio(&codec, &data, 4096, 4).unwrap();
            assert!(
                r.aligned_ratio <= r.raw_ratio + 1e-9,
                "{}: aligned {} raw {}",
                corpus.name(),
                r.aligned_ratio,
                r.raw_ratio
            );
        }
    }

    #[test]
    fn page_ratio_matches_manual_computation() {
        let codec = XDeflate::default();
        let data = vec![0u8; 8192];
        let r = page_ratio(&codec, &data, 4096).unwrap();
        assert!(r > 100.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let codec = XDeflate::default();
        assert!(page_ratio(&codec, b"xy", 0).is_err());
        assert!(interleaved_ratio(&codec, b"xy", 0, 2).is_err());
        assert!(interleaved_ratio(&codec, b"xy", 4096, 0).is_err());
    }

    #[test]
    fn savings_retention_of_incompressible_is_one() {
        let r = InterleaveReport {
            n_dimms: 4,
            raw_ratio: 1.0,
            aligned_ratio: 1.0,
        };
        assert_eq!(r.savings_retention(1.0), 1.0);
    }
}
