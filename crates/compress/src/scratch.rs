//! Reusable codec scratch state for the zero-allocation hot path.
//!
//! A [`Scratch`] bundles every buffer the codecs need across a page:
//! the LZ77 hash-chain tables, the xdeflate token/frequency/entropy
//! buffers, and the package-merge working set. One `Scratch` per worker
//! thread turns the per-page swap path into pure compute plus memcpys —
//! after a warm-up page, steady-state `compress_into`/`decompress_into`
//! calls perform no heap allocation.
//!
//! # Examples
//!
//! ```
//! use xfm_compress::{Codec, Scratch, XDeflate};
//!
//! let codec = XDeflate::default();
//! let mut scratch = Scratch::new();
//! let mut out = Vec::with_capacity(4096);
//! for page in [vec![7u8; 4096], vec![9u8; 4096]] {
//!     out.clear();
//!     codec.compress_into(&page, &mut out, &mut scratch)?;
//!     assert!(out.len() < 64);
//! }
//! # Ok::<(), xfm_types::Error>(())
//! ```

use crate::huffman::HuffScratch;
use crate::lz77::Lz77Scratch;
use crate::xdef_fse::FseScratch;
use crate::xdeflate::XdefScratch;

/// Per-thread reusable state for [`crate::Codec::compress_into`] and
/// [`crate::Codec::decompress_into`].
///
/// The sub-structs are separate fields (rather than one flat struct) so
/// codec internals can borrow the match-finder tables, the token
/// buffers, and the package-merge working set disjointly.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// LZ77 hash-chain tables (generation-tagged, reset in O(1)).
    pub(crate) lz: Lz77Scratch,
    /// xdeflate token, frequency, entropy-coder, and bitstream buffers.
    pub(crate) xd: XdefScratch,
    /// Package-merge working set for Huffman code-length computation.
    pub(crate) huff: HuffScratch,
    /// FSE normalized tables, entropy coders, and staging buffers.
    pub(crate) fse: FseScratch,
}

impl Scratch {
    /// Creates empty scratch state; buffers are sized lazily on first
    /// use and retained afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-warms this scratch for `codec` by compressing and
    /// decompressing representative pages through it.
    ///
    /// Lazy sizing means the first few real pages through a fresh
    /// scratch pay every buffer growth and table build — the documented
    /// ~6–12% fresh-vs-warm gap in `BENCH_codec.json`. Backends call
    /// this once at construction so the first *real* page already runs
    /// at steady-state speed. Three synthetic 4 KiB pages cover the
    /// routes an [`crate::AutoCodec`] can take (text-like → FSE with
    /// encode *and* decode tables, run-heavy → xlz, high-entropy →
    /// raw), which also sizes every buffer a single-route codec needs.
    ///
    /// Returns the number of pages warmed through the codec (0 if any
    /// round-trip failed — warming is best-effort and must never sink a
    /// backend construction).
    pub fn warm(&mut self, codec: &dyn crate::codec::Codec) -> usize {
        const PAGE: usize = 4096;
        // Text-like: moderate entropy with match structure → FSE route.
        let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog 0123456789 "
            .iter()
            .copied()
            .cycle()
            .take(PAGE)
            .collect();
        // Near-zero page (one run plus a marker byte) → xlz route.
        let mut runs = vec![0u8; PAGE];
        runs[PAGE - 1] = 1;
        // High-entropy: xorshift noise → raw route.
        let mut noise = Vec::with_capacity(PAGE);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        while noise.len() < PAGE {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            noise.extend_from_slice(&state.to_le_bytes());
        }
        noise.truncate(PAGE);

        let mut compressed = Vec::with_capacity(PAGE + 64);
        let mut restored = Vec::with_capacity(PAGE);
        let mut warmed = 0usize;
        for page in [&text, &runs, &noise] {
            compressed.clear();
            restored.clear();
            if codec.compress_into(page, &mut compressed, self).is_err() {
                return warmed;
            }
            if codec
                .decompress_into(&compressed, &mut restored, self)
                .is_err()
                || &restored != page
            {
                return warmed;
            }
            warmed += 1;
        }
        warmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::{block_route, TAG_FSE, TAG_RAW, TAG_XLZ};
    use crate::codec::{Codec, CodecKind};
    use crate::{AutoCodec, XDeflate, XDeflateFse, Xlz};

    #[test]
    fn warm_round_trips_every_codec() {
        let codecs: [&dyn Codec; 4] = [
            &AutoCodec::default(),
            &XDeflate::default(),
            &XDeflateFse::default(),
            &Xlz::default(),
        ];
        for codec in codecs {
            let mut scratch = Scratch::new();
            assert_eq!(scratch.warm(codec), 3, "warm failed for {}", codec.name());
        }
    }

    #[test]
    fn warm_pages_cover_all_auto_routes() {
        // The three synthetic pages must actually exercise raw, xlz,
        // and FSE under AutoCodec, or the FSE decode tables stay cold.
        let codec = AutoCodec::default();
        let mut scratch = Scratch::new();
        assert_eq!(scratch.warm(&codec), 3);
        // Reconstruct the same pages and probe their routes.
        const PAGE: usize = 4096;
        let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog 0123456789 "
            .iter()
            .copied()
            .cycle()
            .take(PAGE)
            .collect();
        let mut runs = vec![0u8; PAGE];
        runs[PAGE - 1] = 1;
        let mut noise = Vec::with_capacity(PAGE);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        while noise.len() < PAGE {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            noise.extend_from_slice(&state.to_le_bytes());
        }
        noise.truncate(PAGE);
        let mut tags = Vec::new();
        for page in [&text, &runs, &noise] {
            let mut out = Vec::new();
            codec.compress_into(page, &mut out, &mut scratch).unwrap();
            tags.push(out[0]);
        }
        assert!(tags.contains(&TAG_FSE), "no page routed to FSE: {tags:?}");
        assert!(tags.contains(&TAG_XLZ), "no page routed to xlz: {tags:?}");
        assert!(tags.contains(&TAG_RAW), "no page routed raw: {tags:?}");
        assert_eq!(block_route(&[TAG_FSE]), Some(CodecKind::XDeflateFse));
    }

    #[test]
    fn warm_scratch_compresses_identically_to_fresh() {
        // Warming must not perturb subsequent output: the scratch
        // contract says compress_into output is independent of prior
        // scratch contents.
        let codec = AutoCodec::default();
        let page: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut fresh = Scratch::new();
        let mut warmed = Scratch::new();
        warmed.warm(&codec);
        let mut out_fresh = Vec::new();
        let mut out_warm = Vec::new();
        codec
            .compress_into(&page, &mut out_fresh, &mut fresh)
            .unwrap();
        codec
            .compress_into(&page, &mut out_warm, &mut warmed)
            .unwrap();
        assert_eq!(out_fresh, out_warm);
    }

    #[test]
    fn codec_kind_codes_round_trip() {
        for code in 0..6u8 {
            let kind = CodecKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(CodecKind::from_code(6), None);
    }
}
