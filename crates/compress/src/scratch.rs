//! Reusable codec scratch state for the zero-allocation hot path.
//!
//! A [`Scratch`] bundles every buffer the codecs need across a page:
//! the LZ77 hash-chain tables, the xdeflate token/frequency/entropy
//! buffers, and the package-merge working set. One `Scratch` per worker
//! thread turns the per-page swap path into pure compute plus memcpys —
//! after a warm-up page, steady-state `compress_into`/`decompress_into`
//! calls perform no heap allocation.
//!
//! # Examples
//!
//! ```
//! use xfm_compress::{Codec, Scratch, XDeflate};
//!
//! let codec = XDeflate::default();
//! let mut scratch = Scratch::new();
//! let mut out = Vec::with_capacity(4096);
//! for page in [vec![7u8; 4096], vec![9u8; 4096]] {
//!     out.clear();
//!     codec.compress_into(&page, &mut out, &mut scratch)?;
//!     assert!(out.len() < 64);
//! }
//! # Ok::<(), xfm_types::Error>(())
//! ```

use crate::huffman::HuffScratch;
use crate::lz77::Lz77Scratch;
use crate::xdef_fse::FseScratch;
use crate::xdeflate::XdefScratch;

/// Per-thread reusable state for [`crate::Codec::compress_into`] and
/// [`crate::Codec::decompress_into`].
///
/// The sub-structs are separate fields (rather than one flat struct) so
/// codec internals can borrow the match-finder tables, the token
/// buffers, and the package-merge working set disjointly.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// LZ77 hash-chain tables (generation-tagged, reset in O(1)).
    pub(crate) lz: Lz77Scratch,
    /// xdeflate token, frequency, entropy-coder, and bitstream buffers.
    pub(crate) xd: XdefScratch,
    /// Package-merge working set for Huffman code-length computation.
    pub(crate) huff: HuffScratch,
    /// FSE normalized tables, entropy coders, and staging buffers.
    pub(crate) fse: FseScratch,
}

impl Scratch {
    /// Creates empty scratch state; buffers are sized lazily on first
    /// use and retained afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}
