//! LSB-first bit-level I/O.
//!
//! The xdeflate bitstream packs bits into bytes LSB-first (like DEFLATE):
//! the first bit written becomes bit 0 of the first byte. Huffman codes
//! are written MSB-of-the-code-first via [`BitWriter::write_code_msb`],
//! which lets the canonical decoder consume them one bit at a time.

use xfm_types::{Error, Result};

/// Writes bits LSB-first into a growing byte buffer.
///
/// # Examples
///
/// ```
/// use xfm_compress::bitio::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xff, 8);
/// let bytes = w.finish();
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(8)?, 0xff);
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator, filled from bit 0 upward.
    acc: u64,
    /// Number of valid bits in `acc`.
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (LSB first). `n` must be ≤ 32.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32` or if `value` has bits set above `n`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        debug_assert!(
            n == 32 || u64::from(value) < (1u64 << n),
            "value wider than n bits"
        );
        self.acc |= u64::from(value) << self.nbits;
        self.nbits += n;
        // Flush whole words at a time; byte order is identical to the
        // one-byte-at-a-time loop below (LSB-first).
        if self.nbits >= 32 {
            self.bytes
                .extend_from_slice(&(self.acc as u32).to_le_bytes());
            self.acc >>= 32;
            self.nbits -= 32;
        }
        while self.nbits >= 8 {
            self.bytes.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman `code` of `len` bits, most-significant code bit
    /// first, so the canonical bit-at-a-time decoder can read it back.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 32.
    pub fn write_code_msb(&mut self, code: u32, len: u32) {
        assert!((1..=32).contains(&len), "code length out of range");
        for i in (0..len).rev() {
            self.write_bits((code >> i) & 1, 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.bytes.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends whole bytes; the writer must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the writer is not byte-aligned.
    pub fn write_bytes(&mut self, data: &[u8]) {
        assert!(self.nbits == 0, "write_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Number of complete bytes emitted so far (excluding buffered bits).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Resets the writer to empty, keeping the byte buffer's capacity so
    /// a scratch-held writer never reallocates in steady state.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.nbits = 0;
    }

    /// The bytes emitted so far; the writer must be byte-aligned (call
    /// [`Self::align_byte`] first).
    ///
    /// # Panics
    ///
    /// Panics if bits are still buffered.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        assert!(self.nbits == 0, "bytes() requires byte alignment");
        &self.bytes
    }

    /// Flushes any buffered bits (zero-padded) and returns the bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

/// Writes bits *backwards*: each push places its bits logically before
/// everything pushed so far, so pushing groups in reverse order yields a
/// stream a forward [`BitReader`] reads in the original order.
///
/// This is the natural emitter for ANS coders, which encode a message
/// walking backwards: the encoder pushes each symbol's bits as it walks,
/// and the finished buffer decodes front-to-back with no intermediate
/// staging or reversal pass.
///
/// The buffer is filled from the end; [`Self::finish`] byte-aligns by
/// *prepending* zero bits and returns how many, so the reader can skip
/// them (`read_bits(pad)`) before the payload.
///
/// # Examples
///
/// ```
/// use xfm_compress::bitio::{BackwardBitWriter, BitReader};
///
/// let mut w = BackwardBitWriter::default();
/// w.begin(64);
/// w.push(0xff, 8); // read last
/// w.push(0b101, 3); // read first
/// let (pad, bytes) = w.finish();
/// let mut r = BitReader::new(bytes);
/// r.read_bits(pad)?;
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(8)?, 0xff);
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackwardBitWriter {
    buf: Vec<u8>,
    /// Next unwritten position (bytes `pos..` hold the stream suffix).
    pos: usize,
    /// Pending bits; bit 0 is the earliest-read bit of the pending run.
    acc: u64,
    nbits: u32,
}

impl BackwardBitWriter {
    /// Starts a new stream with at least `capacity` bytes of headroom.
    /// The buffer is retained across calls, so a scratch-held writer
    /// stops allocating once it has seen its largest stream.
    pub fn begin(&mut self, capacity: usize) {
        if self.buf.len() < capacity {
            self.buf.resize(capacity, 0);
        }
        self.pos = self.buf.len();
        self.acc = 0;
        self.nbits = 0;
    }

    /// Pushes the low `n` bits of `value` in front of everything pushed
    /// so far. `n ≤ 32`; the final stream must fit the `begin` capacity.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `value` has bits above `n`, and in
    /// all builds if the stream overruns the buffer.
    #[inline]
    pub fn push(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32, "cannot push more than 32 bits");
        debug_assert!(
            n == 32 || u64::from(value) < (1u64 << n),
            "value wider than n bits"
        );
        self.acc = (self.acc << n) | u64::from(value);
        self.nbits += n;
        if self.nbits >= 32 {
            // Flush the 32 latest-read pending bits next to the suffix.
            self.nbits -= 32;
            let word = (self.acc >> self.nbits) as u32;
            self.pos -= 4;
            self.buf[self.pos..self.pos + 4].copy_from_slice(&word.to_le_bytes());
            self.acc &= (1u64 << self.nbits) - 1;
        }
    }

    /// Byte-aligns by prepending zero bits and returns `(pad, bytes)`:
    /// the number of pad bits a reader must skip, and the finished
    /// stream.
    pub fn finish(&mut self) -> (u32, &[u8]) {
        let pad = (8 - self.nbits % 8) % 8;
        self.acc <<= pad;
        self.nbits += pad;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.pos -= 1;
            self.buf[self.pos] = (self.acc >> self.nbits) as u8;
        }
        debug_assert_eq!(self.nbits, 0);
        (pad, &self.buf[self.pos..])
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte index to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self, need: u32) -> Result<()> {
        while self.nbits < need {
            // Word-at-a-time fast path: load four bytes when they fit in
            // the accumulator (nbits ≤ 31 here since need ≤ 32).
            if self.pos + 4 <= self.bytes.len() {
                let w = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
                self.acc |= u64::from(w) << self.nbits;
                self.nbits += 32;
                self.pos += 4;
                break;
            }
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::Corrupt("bitstream ended mid-symbol".into()))?;
            self.acc |= u64::from(byte) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        Ok(())
    }

    /// Reads `n ≤ 32` bits (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn read_bits(&mut self, n: u32) -> Result<u32> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        if n == 0 {
            return Ok(0);
        }
        self.refill(n)?;
        let value = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(value)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<u32> {
        self.read_bits(1)
    }

    /// Peeks the next `n ≤ 32` bits without consuming them. Bits past
    /// the end of the stream read as zero — callers that act on a
    /// padded peek must follow up with [`Self::consume`], which still
    /// fails when the consumed length exceeds the real stream.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        assert!(n <= 32, "cannot peek more than 32 bits at once");
        while self.nbits < n {
            if self.pos + 4 <= self.bytes.len() {
                let w = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
                self.acc |= u64::from(w) << self.nbits;
                self.nbits += 32;
                self.pos += 4;
            } else if self.pos < self.bytes.len() {
                self.acc |= u64::from(self.bytes[self.pos]) << self.nbits;
                self.nbits += 8;
                self.pos += 1;
            } else {
                // End of stream: the missing high bits peek as zero.
                break;
            }
        }
        if n == 32 {
            self.acc as u32
        } else {
            (self.acc & ((1u64 << n) - 1)) as u32
        }
    }

    /// Consumes `n` bits previously examined with [`Self::peek_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if fewer than `n` real bits remain.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        self.refill(n)?;
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Reads `n` whole bytes; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if fewer than `n` bytes remain.
    ///
    /// # Panics
    ///
    /// Panics if the reader is not byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        assert!(
            self.nbits.is_multiple_of(8),
            "read_bytes requires byte alignment"
        );
        // Return buffered whole bytes to the slice position first.
        let buffered = (self.nbits / 8) as usize;
        self.pos -= buffered;
        self.acc = 0;
        self.nbits = 0;
        if self.pos + n > self.bytes.len() {
            return Err(Error::Corrupt("raw byte run truncated".into()));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// `true` when every input bit has been consumed (padding ignored).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pos >= self.bytes.len() && self.acc == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b1011, 4);
        w.write_bits(0xabcd, 16);
        w.write_bits(0, 3);
        w.write_bits(0xffff_ffff, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(16).unwrap(), 0xabcd);
        assert_eq!(r.read_bits(3).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn msb_code_round_trips_bit_by_bit() {
        let mut w = BitWriter::new();
        w.write_code_msb(0b1101, 4);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut code = 0u32;
        for _ in 0..4 {
            code = (code << 1) | r.read_bit().unwrap();
        }
        assert_eq!(code, 0b1101);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_byte();
        w.write_bytes(b"hello");
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        r.align_byte();
        assert_eq!(r.read_bytes(5).unwrap(), b"hello");
    }

    #[test]
    fn read_past_end_is_corrupt() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(matches!(r.read_bits(1), Err(Error::Corrupt(_))));
    }

    #[test]
    fn read_bytes_past_end_is_corrupt() {
        let mut r = BitReader::new(&[1, 2]);
        assert!(r.read_bytes(3).is_err());
    }

    #[test]
    fn read_bytes_after_buffered_bits() {
        // Reading 8 bits buffers a byte; read_bytes must rewind correctly.
        let mut w = BitWriter::new();
        w.write_bits(0xaa, 8);
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xaa);
        assert_eq!(r.read_bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_drained());
    }

    #[test]
    fn zero_bit_read_is_noop() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }
}
