//! From-scratch lossless compression codecs and synthetic corpora for the
//! XFM reproduction.
//!
//! The paper's SFM stack compresses cold 4 KiB pages with zstd/lzo on the
//! CPU and with an open-source Deflate core on the near-memory FPGA. This
//! crate provides two from-scratch codecs in the same two speed classes:
//!
//! - [`xdeflate`] — an LZ77 + canonical-Huffman block codec in the spirit
//!   of DEFLATE (the algorithm the paper's NMA implements), tuned for
//!   page-sized inputs;
//! - [`xdef_fse`] — the same token model with an FSE/tANS entropy stage
//!   and the turbo match finder: the throughput profile for the
//!   compression-bound swap-out path;
//! - [`xlz`] — a byte-oriented LZ4-style codec standing in for the
//!   lzo/zstd speed class used by production SFM deployments;
//! - [`auto`] — a per-page probe routing each page to raw / `xlz` /
//!   `xdef-fse` behind a self-describing tag byte.
//!
//! All implement the [`Codec`] trait and are exercised by the SFM stack,
//! the multi-channel compression-ratio study (paper Fig. 8), and the cost
//! model (cycles-per-byte table).
//!
//! [`corpus`] generates the deterministic synthetic corpora that
//! substitute for the paper's (unshipped) corpus files, and [`ratio`]
//! implements page-granular and channel-interleaved compression-ratio
//! measurement.
//!
//! # Examples
//!
//! ```
//! use xfm_compress::{Codec, XDeflate};
//!
//! let codec = XDeflate::default();
//! let data = b"far memory far memory far memory far memory".repeat(10);
//! let mut compressed = Vec::new();
//! codec.compress(&data, &mut compressed)?;
//! assert!(compressed.len() < data.len());
//!
//! let mut restored = Vec::new();
//! codec.decompress(&compressed, &mut restored)?;
//! assert_eq!(restored, data);
//! # Ok::<(), xfm_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;
pub mod bitio;
pub mod codec;
pub mod corpus;
pub mod fse;
pub mod huffman;
pub mod lz77;
pub mod parallel;
pub mod ratio;
pub mod scratch;
pub mod xdef_fse;
pub mod xdeflate;
pub mod xlz;

pub use auto::AutoCodec;
pub use codec::{Codec, CodecKind, CostModel};
pub use corpus::Corpus;
pub use parallel::{
    compress_pages, compress_pages_streamed, compress_pages_streamed_traced, compress_pages_traced,
    decompress_pages, map_pages, split_pages,
};
pub use ratio::{interleaved_ratio, page_ratio, InterleaveReport};
pub use scratch::Scratch;
pub use xdef_fse::XDeflateFse;
pub use xdeflate::XDeflate;
pub use xlz::Xlz;
