//! The LZ77 + FSE/tANS throughput codec (`xdef-fse`).
//!
//! Same token model as [`crate::xdeflate`] (literals, length buckets,
//! distance buckets) but the entropy stage is the [`crate::fse`] coder
//! instead of canonical Huffman: no package-merge pass, no per-symbol
//! tree walk, and fractional-bit coding of the literal distribution.
//! Combined with the `turbo` match-finder profile this is the
//! paper-motivated answer to compression being the critical path of the
//! swap-out pipeline.
//!
//! Table sizes are tuned for 4 KiB pages, where per-block table builds
//! are the dominant fixed cost: literals use 512 states (`LOG = 9`, the
//! minimum that fits the 265-symbol alphabet) and distances 64 states
//! (`LOG = 6` for 17 symbols).
//!
//! # Block format
//!
//! One block per `compress` call, LSB-first bits:
//!
//! ```text
//! mode:1           1 = FSE block, 0 = stored
//! -- stored --
//! align, len:32, bytes
//! -- FSE --
//! n_tokens:32
//! lit_norm         write_norm over the 265-symbol literal alphabet
//! has_dist:1
//! [dist_norm]      present when the block has any match
//! pad:3, align     pad = leading zero bits of the FSE body
//! FSE body bytes   states then token bits, as laid out below
//! ```
//!
//! The FSE body reads forward as: `state_a:9`, `state_b:9`,
//! `[state_d:6]`, then per token the literal/length symbol bits, length
//! extra bits, distance symbol bits, and distance extra bits. It is
//! *produced* backwards — ANS encodes in reverse — by pushing those
//! fields in reverse order into a [`BackwardBitWriter`], so emission is
//! single-pass with no staging buffer.
//!
//! Literal/length symbols alternate between two FSE states (A for even
//! token indices, B for odd) sharing one table, giving the decoder two
//! independent dependency chains.

use xfm_types::{Error, Result};

use crate::bitio::{BackwardBitWriter, BitReader, BitWriter};
use crate::codec::{Codec, CodecKind};
use crate::fse::{normalize_freqs, read_norm, write_norm, FseDecoder, FseEncoder};
use crate::lz77::{copy_match, MatchFinder, MAX_MATCH, MIN_MATCH};
use crate::scratch::Scratch;
use crate::xdeflate::{
    dist_bucket, dist_unbucket, length_bucket, length_unbucket, DIST_SYMS, EOB, LIT_SYMS, MATCH_BIT,
};

/// Literal/length table log: 512 states for the 265-symbol alphabet.
pub(crate) const LIT_LOG: u32 = 9;
/// Distance table log: 64 states for the 17 distance buckets.
pub(crate) const DIST_LOG: u32 = 6;

/// Reusable FSE codec state: normalized tables, entropy coders, and the
/// two bitstream writers (forward header, backward FSE body).
///
/// The decoder side keeps the norm vectors it last built tables for
/// (`lit_built`/`dist_built`); when a batch of blocks shares a frequency
/// header — pages from one application usually do — the rebuild is
/// skipped entirely.
#[derive(Debug, Clone, Default)]
pub struct FseScratch {
    lit_norm: Vec<u16>,
    dist_norm: Vec<u16>,
    lit_enc: FseEncoder<LIT_LOG>,
    dist_enc: FseEncoder<DIST_LOG>,
    lit_dec: FseDecoder<LIT_LOG>,
    dist_dec: FseDecoder<DIST_LOG>,
    /// Norms the decoders were last rebuilt for; empty = never built.
    lit_built: Vec<u16>,
    dist_built: Vec<u16>,
    back: BackwardBitWriter,
    writer: BitWriter,
}

/// The xdeflate+FSE throughput codec.
///
/// # Examples
///
/// ```
/// use xfm_compress::{Codec, XDeflateFse};
///
/// let codec = XDeflateFse::default();
/// let data = b"far memory far memory far memory far memory".repeat(10);
/// let mut compressed = Vec::new();
/// codec.compress(&data, &mut compressed)?;
/// assert!(compressed.len() < data.len());
///
/// let mut restored = Vec::new();
/// codec.decompress(&compressed, &mut restored)?;
/// assert_eq!(restored, data);
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct XDeflateFse {
    finder: MatchFinder,
}

impl XDeflateFse {
    /// Creates the codec with a specific match-finder profile.
    #[must_use]
    pub fn with_finder(finder: MatchFinder) -> Self {
        Self { finder }
    }
}

impl Default for XDeflateFse {
    /// Defaults to the turbo finder — this codec exists for throughput.
    fn default() -> Self {
        Self::with_finder(MatchFinder::turbo())
    }
}

/// Encodes one packed token backwards: the decoder-read-order fields
/// are pushed in reverse, with the distance symbol+extra and the
/// length symbol+extra each merged into a single push.
#[inline]
fn emit_token(
    t: u32,
    lit_enc: &FseEncoder<LIT_LOG>,
    dist_enc: &FseEncoder<DIST_LOG>,
    lit_state: &mut u32,
    state_d: &mut u32,
    bw: &mut BackwardBitWriter,
) {
    if t & MATCH_BIT != 0 {
        let len = ((t >> 16) & 0xff) + MIN_MATCH as u32;
        let dist = t & 0xffff;
        let (dsym, dextra, debits) = dist_bucket(dist);
        let (db, dnb) = dist_enc.encode_raw(dsym, state_d);
        bw.push((dextra << dnb) | db, dnb + debits);
        let (sym, extra, ebits) = length_bucket(len);
        let (lb, lnb) = lit_enc.encode_raw(sym, lit_state);
        bw.push((extra << lnb) | lb, lnb + ebits);
    } else {
        lit_enc.encode(t as usize, lit_state, bw);
    }
}

/// Writes `src` as a stored block (mode bit already not written).
fn write_stored(w: &mut BitWriter, src: &[u8]) {
    w.clear();
    w.write_bits(0, 1); // mode = stored
    w.align_byte();
    w.write_bits(src.len() as u32, 32);
    w.write_bytes(src);
}

impl Codec for XDeflateFse {
    fn name(&self) -> &'static str {
        "xdef-fse"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::XDeflateFse
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.compress_into(src, dst, &mut Scratch::new())
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.decompress_into(src, dst, &mut Scratch::new())
    }

    fn compress_into(&self, src: &[u8], dst: &mut Vec<u8>, scratch: &mut Scratch) -> Result<usize> {
        let start = dst.len();
        let Scratch { lz, xd, fse, .. } = scratch;
        xd.reset();
        self.finder.tokenize_into(src, lz, xd);

        let w = &mut fse.writer;
        if xd.tokens.is_empty() {
            write_stored(w, src);
            dst.extend_from_slice(w.bytes());
            return Ok(dst.len() - start);
        }

        normalize_freqs(&xd.lit_freq, &mut fse.lit_norm, LIT_LOG);
        let has_dist = normalize_freqs(&xd.dist_freq, &mut fse.dist_norm, DIST_LOG) > 0;
        fse.lit_enc.rebuild(&fse.lit_norm)?;
        if has_dist {
            fse.dist_enc.rebuild(&fse.dist_norm)?;
        }

        // Backward pass: walk tokens in reverse, pushing bit fields in
        // reverse of the decoder's read order (within each token:
        // dist-extra, dist-state, len-extra, lit-state; after all
        // tokens the three initial states, read back first). Worst
        // case is bounded by ~2 bits of entropy overhead per input
        // byte plus the states, far under `2 * len + 64`.
        let bw = &mut fse.back;
        bw.begin(2 * src.len() + 64);
        // Walk tokens backwards two at a time so the even/odd state
        // alternation is resolved statically instead of per token, and
        // the chunked iteration carries no per-token bounds checks.
        // Pairs are aligned so every chunk's high index has the same
        // parity (odd exactly when the count is even); an odd count
        // leaves token 0 (state A) for last. `s_hi`/`s_lo` are plain
        // locals so the states live in registers through the loop.
        let toks = xd.tokens.as_slice();
        let (head, pairs) = toks.split_at(toks.len() % 2);
        let hi_is_odd = toks.len() % 2 == 0;
        let mut s_hi = FseEncoder::<LIT_LOG>::INITIAL_STATE;
        let mut s_lo = FseEncoder::<LIT_LOG>::INITIAL_STATE;
        let mut state_d = FseEncoder::<DIST_LOG>::INITIAL_STATE;
        for pair in pairs.rchunks_exact(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if (lo | hi) & MATCH_BIT == 0 {
                // Both literals (the common case): two independent
                // state steps, one merged push. The low token is read
                // first, so its bits sit at the bottom.
                let (hb, hn) = fse.lit_enc.encode_raw(hi as usize, &mut s_hi);
                let (lb, ln) = fse.lit_enc.encode_raw(lo as usize, &mut s_lo);
                bw.push((hb << ln) | lb, hn + ln);
            } else {
                emit_token(hi, &fse.lit_enc, &fse.dist_enc, &mut s_hi, &mut state_d, bw);
                emit_token(lo, &fse.lit_enc, &fse.dist_enc, &mut s_lo, &mut state_d, bw);
            }
        }
        let (mut state_a, state_b) = if hi_is_odd {
            (s_lo, s_hi)
        } else {
            (s_hi, s_lo)
        };
        if let [first] = *head {
            emit_token(
                first,
                &fse.lit_enc,
                &fse.dist_enc,
                &mut state_a,
                &mut state_d,
                bw,
            );
        }
        if has_dist {
            bw.push(state_d - FseEncoder::<DIST_LOG>::INITIAL_STATE, DIST_LOG);
        }
        bw.push(state_b - FseEncoder::<LIT_LOG>::INITIAL_STATE, LIT_LOG);
        bw.push(state_a - FseEncoder::<LIT_LOG>::INITIAL_STATE, LIT_LOG);
        let (pad, body) = bw.finish();

        w.clear();
        w.write_bits(1, 1); // mode = FSE
        w.write_bits(xd.tokens.len() as u32, 32);
        write_norm(w, &fse.lit_norm, LIT_LOG);
        w.write_bits(u32::from(has_dist), 1);
        if has_dist {
            write_norm(w, &fse.dist_norm, DIST_LOG);
        }
        w.write_bits(pad, 3);
        w.align_byte();

        // Stored fallback when entropy coding does not pay (stored
        // overhead is 5 bytes: mode byte plus the 32-bit length). The
        // FSE body is appended straight to `dst` — never staged through
        // the forward writer — so the hot path copies it exactly once.
        if w.byte_len() + body.len() >= src.len() + 5 {
            write_stored(w, src);
            dst.extend_from_slice(w.bytes());
        } else {
            dst.extend_from_slice(w.bytes());
            dst.extend_from_slice(body);
        }
        Ok(dst.len() - start)
    }

    fn decompress_into(
        &self,
        src: &[u8],
        dst: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<usize> {
        let start = dst.len();
        let fse = &mut scratch.fse;
        let mut r = BitReader::new(src);
        if r.read_bit()? == 0 {
            r.align_byte();
            let len = r.read_bits(32)? as usize;
            dst.extend_from_slice(r.read_bytes(len)?);
            return Ok(dst.len() - start);
        }

        let n = r.read_bits(32)? as usize;
        // Every token costs at least its state-table share on average;
        // a stream claiming far more tokens than it has bits is corrupt
        // (this also bounds output growth on malicious input).
        if n > 8 * src.len() + 64 {
            return Err(Error::Corrupt(format!(
                "token count {n} impossible for {} input bytes",
                src.len()
            )));
        }
        read_norm(&mut r, LIT_SYMS, &mut fse.lit_norm, LIT_LOG)?;
        if fse.lit_built != fse.lit_norm {
            fse.lit_dec.rebuild(&fse.lit_norm)?;
            fse.lit_built.clone_from(&fse.lit_norm);
        }
        let has_dist = r.read_bit()? == 1;
        if has_dist {
            read_norm(&mut r, DIST_SYMS, &mut fse.dist_norm, DIST_LOG)?;
            if fse.dist_built != fse.dist_norm {
                fse.dist_dec.rebuild(&fse.dist_norm)?;
                fse.dist_built.clone_from(&fse.dist_norm);
            }
        }
        let pad = r.read_bits(3)?;
        r.align_byte();
        r.read_bits(pad)?;
        let mut state_a = r.read_bits(LIT_LOG)?;
        let mut state_b = r.read_bits(LIT_LOG)?;
        let mut state_d = if has_dist { r.read_bits(DIST_LOG)? } else { 0 };

        let lit_view = fse.lit_dec.view();
        for i in 0..n {
            let lit_state = if i % 2 == 0 {
                &mut state_a
            } else {
                &mut state_b
            };
            let sym = lit_view.step(lit_state, &mut r)? as usize;
            if sym < 256 {
                dst.push(sym as u8);
            } else if sym == EOB {
                return Err(Error::Corrupt("EOB symbol in counted stream".into()));
            } else {
                let ebits = (sym - 257) as u32;
                let extra = r.read_bits(ebits)?;
                let len = length_unbucket(sym, extra);
                if !(MIN_MATCH as u32..=MAX_MATCH as u32).contains(&len) {
                    return Err(Error::Corrupt(format!("match length {len}")));
                }
                if !has_dist {
                    return Err(Error::Corrupt("match token without distance table".into()));
                }
                let dsym = fse.dist_dec.view().step(&mut state_d, &mut r)? as usize;
                if dsym == 0 || dsym >= DIST_SYMS {
                    return Err(Error::Corrupt("bad distance symbol".into()));
                }
                let dextra = r.read_bits((dsym - 1) as u32)?;
                let dist = dist_unbucket(dsym, dextra) as usize;
                let produced = dst.len() - start;
                if dist == 0 || dist > produced {
                    return Err(Error::Corrupt(format!(
                        "distance {dist} exceeds output {produced}"
                    )));
                }
                copy_match(dst, dist, len as usize);
            }
        }
        Ok(dst.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn round_trip(data: &[u8]) -> usize {
        let codec = XDeflateFse::default();
        let mut compressed = Vec::new();
        codec.compress(data, &mut compressed).unwrap();
        let mut restored = Vec::new();
        codec.decompress(&compressed, &mut restored).unwrap();
        assert_eq!(restored, data, "round-trip mismatch");
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd"] {
            round_trip(data);
        }
    }

    #[test]
    fn repetitive_page_compresses_hard() {
        let data = b"swap out swap in swap out swap in ".repeat(120);
        let n = round_trip(&data);
        assert!(n < data.len() / 8, "{n} bytes for {}", data.len());
    }

    #[test]
    fn constant_page_is_tiny() {
        let n = round_trip(&vec![0x5au8; 4096]);
        assert!(n < 64, "constant page took {n} bytes");
    }

    #[test]
    fn incompressible_data_stored_with_bounded_overhead() {
        let data: Vec<u8> = (0..4096u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u8)
            .collect();
        let n = round_trip(&data);
        assert!(n <= data.len() + 5, "{n} bytes for {}", data.len());
    }

    #[test]
    fn all_corpora_round_trip() {
        for corpus in Corpus::all() {
            for seed in 0..3u64 {
                let page = corpus.generate(seed, 4096);
                round_trip(&page);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical_across_mixed_pages() {
        let pages: Vec<Vec<u8>> = vec![
            Corpus::Json.generate(1, 4096),
            vec![0u8; 4096],
            Corpus::RandomBytes.generate(2, 4096),
            Corpus::EnglishText.generate(3, 4096),
            b"x".repeat(17),
            Vec::new(),
        ];
        let codec = XDeflateFse::default();
        let mut scratch = Scratch::new();
        for page in &pages {
            let mut fresh = Vec::new();
            codec.compress(page, &mut fresh).unwrap();
            let mut warm = Vec::new();
            codec.compress_into(page, &mut warm, &mut scratch).unwrap();
            assert_eq!(fresh, warm, "scratch reuse changed the stream");
            let mut restored = Vec::new();
            codec
                .decompress_into(&warm, &mut restored, &mut scratch)
                .unwrap();
            assert_eq!(&restored, page);
        }
    }

    #[test]
    fn batch_decompress_matches_single_and_caches_tables() {
        let codec = XDeflateFse::default();
        // Same corpus → likely identical headers are NOT guaranteed, so
        // correctness must not depend on the cache hitting.
        let pages: Vec<Vec<u8>> = (0..8).map(|i| Corpus::Json.generate(i, 4096)).collect();
        let blocks: Vec<Vec<u8>> = pages
            .iter()
            .map(|p| {
                let mut c = Vec::new();
                codec.compress(p, &mut c).unwrap();
                c
            })
            .collect();
        let srcs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let mut dsts: Vec<Vec<u8>> = vec![Vec::new(); srcs.len()];
        let mut scratch = Scratch::new();
        codec
            .decompress_batch_into(&srcs, &mut dsts, &mut scratch)
            .unwrap();
        assert_eq!(dsts, pages);
    }

    #[test]
    fn truncated_and_garbage_streams_are_rejected() {
        let codec = XDeflateFse::default();
        let mut compressed = Vec::new();
        codec
            .compress(&Corpus::Json.generate(7, 4096), &mut compressed)
            .unwrap();
        for cut in [1, compressed.len() / 2, compressed.len() - 1] {
            let mut out = Vec::new();
            assert!(
                codec.decompress(&compressed[..cut], &mut out).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Bit salad must never panic; errors are fine.
        let garbage: Vec<u8> = (0..256u32).map(|i| (i * 193 % 251) as u8).collect();
        let mut out = Vec::new();
        let _ = codec.decompress(&garbage, &mut out);
    }

    #[test]
    fn absurd_token_count_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(u32::MAX, 32);
        let bytes = w.finish();
        let mut out = Vec::new();
        assert!(XDeflateFse::default().decompress(&bytes, &mut out).is_err());
    }
}
