//! Synthetic compression corpora.
//!
//! The paper's Fig. 8 measures compression ratios over 16 corpus files.
//! Those exact files are not shipped with the artifact, so this module
//! provides deterministic synthetic generators whose compressibility
//! spans the same range — from all-zero pages (hundreds-to-one) through
//! natural-language text, structured records, and binary struct dumps
//! (2–6x) down to random bytes (1x). Every generator is seeded and
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic corpus class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Corpus {
    /// English-like word salad with Zipfian word frequencies.
    EnglishText,
    /// Nested HTML markup with repeated tags.
    Html,
    /// JSON records sharing a fixed schema.
    Json,
    /// Comma-separated numeric/text table.
    Csv,
    /// C-like source code.
    SourceCode,
    /// Timestamped server log lines.
    LogLines,
    /// Raw little-endian `f64` samples (nearly incompressible).
    NumericF64,
    /// Sorted integers stored as `u64` (high-byte redundancy).
    DeltaIntegers,
    /// Base64 text of random bytes (6 bits of entropy per byte).
    Base64,
    /// All-zero pages (the best case for SFM).
    ZeroPage,
    /// Sparse records: mostly zero bytes with occasional structs.
    SparseRecords,
    /// Uniform random bytes (the worst case; stored raw).
    RandomBytes,
    /// DNA-like ACGT sequence (2 bits of entropy per byte).
    Dna,
    /// URL list with long shared prefixes.
    UrlList,
    /// `key = value` configuration lines.
    KeyValue,
    /// Slowly-varying 16-bit time-series samples.
    TimeSeries,
    /// Binary struct dumps: fixed-layout C-style records mixing small
    /// integers, enum bytes, pointers sharing a heap base, and zero
    /// padding — the in-memory shape of pointer-rich application heaps.
    StructDump,
}

impl Corpus {
    /// All corpora, in display order (matches Fig. 8's x-axis role: a
    /// spread of compressibility classes, plus the binary struct-dump
    /// class used by the codec-selection study).
    #[must_use]
    pub fn all() -> [Corpus; 17] {
        [
            Corpus::EnglishText,
            Corpus::Html,
            Corpus::Json,
            Corpus::Csv,
            Corpus::SourceCode,
            Corpus::LogLines,
            Corpus::NumericF64,
            Corpus::DeltaIntegers,
            Corpus::Base64,
            Corpus::ZeroPage,
            Corpus::SparseRecords,
            Corpus::RandomBytes,
            Corpus::Dna,
            Corpus::UrlList,
            Corpus::KeyValue,
            Corpus::TimeSeries,
            Corpus::StructDump,
        ]
    }

    /// Stable display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Corpus::EnglishText => "english-text",
            Corpus::Html => "html",
            Corpus::Json => "json",
            Corpus::Csv => "csv",
            Corpus::SourceCode => "source-code",
            Corpus::LogLines => "log-lines",
            Corpus::NumericF64 => "numeric-f64",
            Corpus::DeltaIntegers => "delta-integers",
            Corpus::Base64 => "base64",
            Corpus::ZeroPage => "zero-page",
            Corpus::SparseRecords => "sparse-records",
            Corpus::RandomBytes => "random-bytes",
            Corpus::Dna => "dna",
            Corpus::UrlList => "url-list",
            Corpus::KeyValue => "key-value",
            Corpus::TimeSeries => "time-series",
            Corpus::StructDump => "struct-dump",
        }
    }

    /// Generates exactly `len` bytes of this corpus, deterministically
    /// from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64, len: usize) -> Vec<u8> {
        // Mix the corpus discriminant into the seed so different corpora
        // never share random streams.
        let mixed = seed ^ (self.name().bytes().map(u64::from).sum::<u64>() << 32);
        let mut rng = StdRng::seed_from_u64(mixed);
        let mut out = Vec::with_capacity(len + 128);
        while out.len() < len {
            self.extend(&mut rng, &mut out);
        }
        out.truncate(len);
        out
    }

    fn extend(&self, rng: &mut StdRng, out: &mut Vec<u8>) {
        match self {
            Corpus::EnglishText => {
                let word = WORDS[zipf(rng, WORDS.len())];
                out.extend_from_slice(word.as_bytes());
                out.push(b' ');
                if rng.gen_ratio(1, 12) {
                    out.truncate(out.len() - 1);
                    out.extend_from_slice(b". ");
                }
            }
            Corpus::Html => {
                let tag = ["div", "span", "p", "li", "td", "a", "h2"][zipf(rng, 7)];
                let class = ["row", "col", "item", "nav", "hero"][zipf(rng, 5)];
                out.extend_from_slice(
                    format!(
                        "<{tag} class=\"{class}\">{}</{tag}>\n",
                        WORDS[zipf(rng, WORDS.len())]
                    )
                    .as_bytes(),
                );
            }
            Corpus::Json => {
                let id: u32 = rng.gen_range(0..1_000_000);
                let name = WORDS[zipf(rng, WORDS.len())];
                let flag = rng.gen_bool(0.5);
                out.extend_from_slice(
                    format!(
                        "{{\"id\":{id},\"name\":\"{name}\",\"active\":{flag},\"score\":{:.2}}},\n",
                        rng.gen_range(0.0..100.0)
                    )
                    .as_bytes(),
                );
            }
            Corpus::Csv => {
                out.extend_from_slice(
                    format!(
                        "{},{},{:.3},{}\n",
                        rng.gen_range(0..10_000),
                        WORDS[zipf(rng, WORDS.len())],
                        rng.gen_range(-1.0..1.0),
                        ["OK", "WARN", "FAIL"][zipf(rng, 3)]
                    )
                    .as_bytes(),
                );
            }
            Corpus::SourceCode => {
                let kw = ["if", "for", "while", "return", "int", "void"][zipf(rng, 6)];
                let var = ["count", "index", "buffer", "result", "state"][zipf(rng, 5)];
                out.extend_from_slice(
                    format!(
                        "    {kw} ({var} < {}) {{ {var} += 1; }}\n",
                        rng.gen_range(1..256)
                    )
                    .as_bytes(),
                );
            }
            Corpus::LogLines => {
                out.extend_from_slice(
                    format!(
                        "2026-07-{:02}T{:02}:{:02}:{:02}Z [{}] service={} latency_ms={}\n",
                        rng.gen_range(1..29),
                        rng.gen_range(0..24),
                        rng.gen_range(0..60),
                        rng.gen_range(0..60),
                        ["INFO", "INFO", "INFO", "WARN", "ERROR"][zipf(rng, 5)],
                        ["frontend", "cache", "db", "auth"][zipf(rng, 4)],
                        rng.gen_range(1..500)
                    )
                    .as_bytes(),
                );
            }
            Corpus::NumericF64 => {
                let v: f64 = rng.gen_range(-1e6..1e6);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Corpus::DeltaIntegers => {
                // Monotone sequence: the top bytes repeat heavily.
                let base = out.len() as u64 * 3;
                let v = base + rng.gen_range(0..16);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Corpus::Base64 => {
                const B64: &[u8] =
                    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
                for _ in 0..64 {
                    out.push(B64[rng.gen_range(0..64)]);
                }
                out.push(b'\n');
            }
            Corpus::ZeroPage => {
                out.extend(std::iter::repeat_n(0u8, 512));
            }
            Corpus::SparseRecords => {
                out.extend(std::iter::repeat_n(0u8, rng.gen_range(48..160)));
                out.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
                out.extend_from_slice(b"REC");
                out.push(rng.gen_range(0..8));
            }
            Corpus::RandomBytes => {
                let mut chunk = [0u8; 64];
                rng.fill(&mut chunk);
                out.extend_from_slice(&chunk);
            }
            Corpus::Dna => {
                const ACGT: &[u8] = b"ACGT";
                for _ in 0..64 {
                    out.push(ACGT[rng.gen_range(0..4)]);
                }
            }
            Corpus::UrlList => {
                out.extend_from_slice(
                    format!(
                        "https://cdn.example.com/assets/{}/{}/{}.{}\n",
                        ["img", "js", "css"][zipf(rng, 3)],
                        WORDS[zipf(rng, WORDS.len())],
                        rng.gen_range(0..100_000),
                        ["png", "js", "css", "webp"][zipf(rng, 4)]
                    )
                    .as_bytes(),
                );
            }
            Corpus::KeyValue => {
                out.extend_from_slice(
                    format!(
                        "{}.{}.enabled = {}\n",
                        ["cache", "net", "disk", "cpu"][zipf(rng, 4)],
                        WORDS[zipf(rng, WORDS.len())],
                        rng.gen_bool(0.7)
                    )
                    .as_bytes(),
                );
            }
            Corpus::TimeSeries => {
                // Random walk of u16 samples: small deltas, repetitive
                // high bytes.
                let last = out
                    .len()
                    .checked_sub(2)
                    .map(|i| u16::from_le_bytes([out[i], out[i + 1]]))
                    .unwrap_or(30_000);
                let next = last.wrapping_add(rng.gen_range(0..8)).wrapping_sub(3);
                out.extend_from_slice(&next.to_le_bytes());
            }
            Corpus::StructDump => {
                // One 48-byte record: { u32 id; u16 kind; u16 flags;
                // u64 ptr_a; u64 ptr_b; u32 len; u8 state; pad[3];
                // u64 checksum; pad[8] } — pointers cluster around a
                // shared heap base, most numeric fields are small, and
                // padding is zero, like a real allocator dump.
                const HEAP_BASE: u64 = 0x7F3A_0000_0000;
                out.extend_from_slice(&rng.gen_range(0..100_000u32).to_le_bytes());
                out.extend_from_slice(&rng.gen_range(0..12u16).to_le_bytes());
                out.extend_from_slice(&[0u8, rng.gen_range(0..4u8)]);
                let ptr_a = HEAP_BASE + u64::from(rng.gen_range(0..1_000_000u32)) * 64;
                out.extend_from_slice(&ptr_a.to_le_bytes());
                let ptr_b = if rng.gen_bool(0.3) {
                    0
                } else {
                    HEAP_BASE + u64::from(rng.gen_range(0..1_000_000u32)) * 64
                };
                out.extend_from_slice(&ptr_b.to_le_bytes());
                out.extend_from_slice(&rng.gen_range(0..4096u32).to_le_bytes());
                out.push(rng.gen_range(0..5));
                out.extend_from_slice(&[0u8; 3]);
                out.extend_from_slice(&rng.gen::<u64>().to_le_bytes());
                out.extend_from_slice(&[0u8; 8]);
            }
        }
    }
}

/// Zipf-ish index sampler: index 0 is most likely.
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let idx = (n as f64 * u * u) as usize;
    idx.min(n - 1)
}

const WORDS: [&str; 64] = [
    "the",
    "memory",
    "of",
    "and",
    "page",
    "to",
    "data",
    "in",
    "cache",
    "is",
    "far",
    "cold",
    "swap",
    "system",
    "with",
    "compression",
    "rate",
    "access",
    "bandwidth",
    "latency",
    "that",
    "for",
    "refresh",
    "bank",
    "row",
    "dram",
    "channel",
    "control",
    "software",
    "defined",
    "near",
    "accelerator",
    "cost",
    "model",
    "server",
    "capacity",
    "application",
    "workload",
    "performance",
    "energy",
    "carbon",
    "pool",
    "tier",
    "hot",
    "promote",
    "demote",
    "scan",
    "table",
    "entry",
    "queue",
    "buffer",
    "region",
    "address",
    "virtual",
    "physical",
    "kernel",
    "driver",
    "device",
    "register",
    "offload",
    "engine",
    "window",
    "cycle",
    "interval",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::xdeflate::XDeflate;

    #[test]
    fn generation_is_deterministic() {
        for corpus in Corpus::all() {
            let a = corpus.generate(42, 8192);
            let b = corpus.generate(42, 8192);
            assert_eq!(a, b, "{} not deterministic", corpus.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::Json.generate(1, 4096);
        let b = Corpus::Json.generate(2, 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn exact_length_honored() {
        for corpus in Corpus::all() {
            for len in [0usize, 1, 100, 4096, 10_000] {
                assert_eq!(corpus.generate(7, len).len(), len, "{}", corpus.name());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Corpus::all().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn compressibility_spans_expected_range() {
        let codec = XDeflate::default();
        let ratio = |corpus: Corpus| {
            let data = corpus.generate(3, 16 * 1024);
            let mut c = Vec::new();
            codec.compress(&data, &mut c).unwrap();
            data.len() as f64 / c.len() as f64
        };
        // Zero pages compress drastically.
        assert!(ratio(Corpus::ZeroPage) > 50.0);
        // Random bytes do not compress (stored raw, ratio ~1).
        let r = ratio(Corpus::RandomBytes);
        assert!(r > 0.95 && r < 1.05, "random ratio {r}");
        // Text-like corpora land in between.
        for corpus in [Corpus::EnglishText, Corpus::Json, Corpus::LogLines] {
            let r = ratio(corpus);
            assert!(r > 1.8 && r < 20.0, "{} ratio {r}", corpus.name());
        }
        // DNA approaches the 2-bit entropy bound but not below 1.
        let dna = ratio(Corpus::Dna);
        assert!(dna > 2.0 && dna < 6.0, "dna ratio {dna}");
        // Struct dumps: zero padding plus shared pointer high bytes.
        let sd = ratio(Corpus::StructDump);
        assert!(sd > 1.8 && sd < 8.0, "struct-dump ratio {sd}");
    }
}
