//! Per-page codec selection: a cheap probe routes each page to raw
//! storage, [`crate::xlz`], or [`crate::xdef_fse`].
//!
//! The probe reads a strided sample of the page and computes a plug-in
//! estimate of the byte entropy plus the fraction of sampled positions
//! whose 4-byte gram repeats nearby. Near-random pages (entropy above
//! [`AutoCodec::RAW_ENTROPY_BITS`] with no repeat structure) skip
//! compression entirely; rep-heavy/low-entropy pages (long runs,
//! zero pages) take the byte-oriented `xlz` fast path where an entropy
//! stage would only add table overhead; everything else takes the
//! `xdeflate+FSE` ratio path.
//!
//! Every block is self-describing: one leading tag byte (version
//! nibble + route) chosen *at compress time*, so decompression never
//! re-probes. A misrouted page costs throughput or ratio, never
//! correctness — each inner codec has its own stored fallback, and the
//! wrapper additionally rewrites any block that ends up at least as
//! large as the page to a raw block, bounding expansion to one byte.

use xfm_types::{Error, Result};

use crate::codec::{Codec, CodecKind};
use crate::scratch::Scratch;
use crate::xdef_fse::XDeflateFse;
use crate::xlz::Xlz;

/// Block tag: raw page bytes follow. High nibble is the format version.
pub const TAG_RAW: u8 = 0x10;
/// Block tag: an `xlz` stream follows.
pub const TAG_XLZ: u8 = 0x11;
/// Block tag: an `xdef-fse` stream follows.
pub const TAG_FSE: u8 = 0x12;

/// Returns the inner codec kind a compressed `auto` block was routed
/// to, or `None` if the block is empty or from an unknown version.
///
/// This is a pure peek at the tag byte — telemetry and tooling use it
/// to attribute stored blocks without decompressing them.
#[must_use]
pub fn block_route(block: &[u8]) -> Option<CodecKind> {
    match block.first() {
        Some(&TAG_RAW) => Some(CodecKind::Raw),
        Some(&TAG_XLZ) => Some(CodecKind::Xlz),
        Some(&TAG_FSE) => Some(CodecKind::XDeflateFse),
        _ => None,
    }
}

/// The probe verdict for a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Raw,
    Xlz,
    Fse,
}

/// The self-describing per-page codec selector.
///
/// # Examples
///
/// ```
/// use xfm_compress::{auto::block_route, AutoCodec, Codec, CodecKind};
///
/// let codec = AutoCodec::default();
/// let data = b"far memory far memory far memory far memory".repeat(10);
/// let mut compressed = Vec::new();
/// codec.compress(&data, &mut compressed)?;
/// assert!(compressed.len() < data.len());
/// assert!(block_route(&compressed).is_some());
///
/// let mut restored = Vec::new();
/// codec.decompress(&compressed, &mut restored)?;
/// assert_eq!(restored, data);
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoCodec {
    xlz: Xlz,
    fse: XDeflateFse,
}

impl AutoCodec {
    /// Sampled-entropy threshold (bits/byte) above which a page with no
    /// repeat structure is stored raw. Uniform-random 4 KiB pages probe
    /// at ≈7.3 bits with the 512-sample plug-in estimator (the
    /// estimator's small-sample bias keeps even true 8.0-bit pages
    /// below 7.5); text/JSON pages probe at ≤5.5.
    pub const RAW_ENTROPY_BITS: f64 = 6.8;
    /// Sampled-entropy threshold (bits/byte) below which a page is
    /// rep-heavy enough that the `xlz` fast path compresses it well
    /// without paying for FSE table builds.
    pub const XLZ_ENTROPY_BITS: f64 = 1.5;
    /// Fraction of sampled 4-grams that repeat nearby, above which a
    /// high-entropy page is still worth an LZ pass.
    pub const RAW_REPEAT_FRACTION: f64 = 0.25;

    /// Probes a strided sample of `page` and picks a route.
    fn probe(page: &[u8]) -> Route {
        if page.len() < 64 {
            // Too small for the sample to mean anything; the ratio
            // codec's stored fallback bounds the damage either way.
            return Route::Fse;
        }
        // Entropy over every 8th byte (512 samples on a 4 KiB page).
        let mut hist = [0u32; 256];
        let mut samples = 0u32;
        let mut i = 0;
        while i < page.len() {
            hist[page[i] as usize] += 1;
            samples += 1;
            i += 8;
        }
        let n = f64::from(samples);
        let mut entropy = 0.0f64;
        for &c in &hist {
            if c > 0 {
                let p = f64::from(c) / n;
                entropy -= p * p.log2();
            }
        }
        // Repeat structure: fraction of sampled positions whose 4-gram
        // reappears at a recent sampled position (tiny direct-mapped
        // table of gram fingerprints).
        let mut grams = [0u32; 64];
        let mut repeats = 0u32;
        let mut probes = 0u32;
        let mut i = 0;
        while i + 4 <= page.len() {
            let g = u32::from_le_bytes([page[i], page[i + 1], page[i + 2], page[i + 3]]);
            let slot = (g.wrapping_mul(0x9E37_79B1) >> 26) as usize;
            repeats += u32::from(grams[slot] == g);
            probes += 1;
            grams[slot] = g;
            i += 16;
        }
        let repeat_frac = f64::from(repeats) / f64::from(probes.max(1));

        if entropy <= Self::XLZ_ENTROPY_BITS {
            Route::Xlz
        } else if entropy >= Self::RAW_ENTROPY_BITS && repeat_frac < Self::RAW_REPEAT_FRACTION {
            Route::Raw
        } else {
            Route::Fse
        }
    }
}

impl Codec for AutoCodec {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Auto
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.compress_into(src, dst, &mut Scratch::new())
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize> {
        self.decompress_into(src, dst, &mut Scratch::new())
    }

    fn compress_into(&self, src: &[u8], dst: &mut Vec<u8>, scratch: &mut Scratch) -> Result<usize> {
        let start = dst.len();
        match Self::probe(src) {
            Route::Raw => {
                dst.push(TAG_RAW);
                dst.extend_from_slice(src);
            }
            Route::Xlz => {
                dst.push(TAG_XLZ);
                self.xlz.compress_into(src, dst, scratch)?;
            }
            Route::Fse => {
                dst.push(TAG_FSE);
                self.fse.compress_into(src, dst, scratch)?;
            }
        }
        // Misclassification guard: whatever the probe said, a block
        // that did not actually shrink is rewritten as a raw block, so
        // expansion is capped at the tag byte (and swap-in never pays a
        // decode for a page that compression did not help).
        if dst.len() - start > src.len() && dst[start] != TAG_RAW {
            dst.truncate(start);
            dst.push(TAG_RAW);
            dst.extend_from_slice(src);
        }
        Ok(dst.len() - start)
    }

    fn decompress_into(
        &self,
        src: &[u8],
        dst: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<usize> {
        let start = dst.len();
        let (&tag, body) = src
            .split_first()
            .ok_or_else(|| Error::Corrupt("empty auto block".into()))?;
        match tag {
            TAG_RAW => {
                dst.extend_from_slice(body);
            }
            TAG_XLZ => {
                self.xlz.decompress_into(body, dst, scratch)?;
            }
            TAG_FSE => {
                self.fse.decompress_into(body, dst, scratch)?;
            }
            other => {
                return Err(Error::Corrupt(format!(
                    "unknown auto codec tag {other:#04x}"
                )));
            }
        }
        Ok(dst.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = AutoCodec::default();
        let mut compressed = Vec::new();
        codec.compress(data, &mut compressed).unwrap();
        assert!(
            compressed.len() <= data.len() + 1,
            "expansion beyond tag byte: {} vs {}",
            compressed.len(),
            data.len()
        );
        let mut restored = Vec::new();
        codec.decompress(&compressed, &mut restored).unwrap();
        assert_eq!(restored, data, "round-trip mismatch");
        compressed
    }

    #[test]
    fn random_pages_route_raw() {
        for seed in 0..8 {
            let page = Corpus::RandomBytes.generate(seed, 4096);
            let block = round_trip(&page);
            assert_eq!(block_route(&block), Some(CodecKind::Raw), "{seed}");
            assert_eq!(block.len(), page.len() + 1);
        }
    }

    #[test]
    fn zero_and_constant_pages_route_xlz() {
        for page in [vec![0u8; 4096], vec![0xAAu8; 4096]] {
            let block = round_trip(&page);
            assert_eq!(block_route(&block), Some(CodecKind::Xlz));
            assert!(block.len() < 128, "near-constant page took {}", block.len());
        }
    }

    #[test]
    fn structured_pages_route_fse() {
        for corpus in [Corpus::Json, Corpus::EnglishText] {
            for seed in 0..4 {
                let page = corpus.generate(seed, 4096);
                let block = round_trip(&page);
                assert_eq!(
                    block_route(&block),
                    Some(CodecKind::XDeflateFse),
                    "{corpus:?}/{seed}"
                );
                assert!(block.len() < page.len() / 2);
            }
        }
    }

    #[test]
    fn all_corpora_round_trip_with_bounded_expansion() {
        for corpus in Corpus::all() {
            for seed in 0..3u64 {
                round_trip(&corpus.generate(seed, 4096));
            }
        }
    }

    #[test]
    fn tiny_inputs_round_trip() {
        for data in [&b""[..], b"a", b"ab", b"abcabcabcabc"] {
            round_trip(data);
        }
    }

    #[test]
    fn unknown_tag_and_empty_block_rejected() {
        let codec = AutoCodec::default();
        let mut out = Vec::new();
        assert!(codec.decompress(&[], &mut out).is_err());
        assert!(codec.decompress(&[0xFF, 1, 2, 3], &mut out).is_err());
        // Future version nibble must not silently decode.
        assert!(codec.decompress(&[0x20, 1, 2, 3], &mut out).is_err());
    }

    #[test]
    fn block_route_reports_tags() {
        assert_eq!(block_route(&[TAG_RAW]), Some(CodecKind::Raw));
        assert_eq!(block_route(&[TAG_XLZ, 9]), Some(CodecKind::Xlz));
        assert_eq!(block_route(&[TAG_FSE, 9]), Some(CodecKind::XDeflateFse));
        assert_eq!(block_route(&[]), None);
        assert_eq!(block_route(&[0x42]), None);
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        let codec = AutoCodec::default();
        let mut scratch = Scratch::new();
        for corpus in [Corpus::Json, Corpus::RandomBytes, Corpus::ZeroPage] {
            let page = corpus.generate(11, 4096);
            let mut fresh = Vec::new();
            codec.compress(&page, &mut fresh).unwrap();
            let mut warm = Vec::new();
            codec.compress_into(&page, &mut warm, &mut scratch).unwrap();
            assert_eq!(fresh, warm);
        }
    }
}
