//! The [`Codec`] trait and the compression cost model.

use serde::{Deserialize, Serialize};
use xfm_types::{Bandwidth, Cycles, Result};

use crate::scratch::Scratch;

/// Identifies a codec implementation (used by SFM entries so swap-in
/// knows how to decompress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodecKind {
    /// The LZ77 + Huffman block codec (Deflate class).
    XDeflate,
    /// The byte-oriented fast codec (lzo/zstd speed class).
    Xlz,
    /// The LZ77 + FSE/tANS throughput codec.
    XDeflateFse,
    /// Per-page probe routing to raw / xlz / xdeflate+FSE; blocks are
    /// self-describing via a tag byte.
    Auto,
    /// Data stored uncompressed (incompressible page).
    Raw,
    /// Page whose every byte is identical: only the fill byte is stored
    /// (zswap's same-filled-page optimization).
    SameFilled,
}

impl CodecKind {
    /// Stable lowercase name (used in telemetry exposition).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::XDeflate => "xdeflate",
            CodecKind::Xlz => "xlz",
            CodecKind::XDeflateFse => "xdef_fse",
            CodecKind::Auto => "auto",
            CodecKind::Raw => "raw",
            CodecKind::SameFilled => "same_filled",
        }
    }

    /// Stable wire code (used as the `aux` datum of `codec_route`
    /// lifecycle events).
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            CodecKind::XDeflate => 0,
            CodecKind::Xlz => 1,
            CodecKind::XDeflateFse => 2,
            CodecKind::Auto => 3,
            CodecKind::Raw => 4,
            CodecKind::SameFilled => 5,
        }
    }

    /// Inverse of [`CodecKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => CodecKind::XDeflate,
            1 => CodecKind::Xlz,
            2 => CodecKind::XDeflateFse,
            3 => CodecKind::Auto,
            4 => CodecKind::Raw,
            5 => CodecKind::SameFilled,
            _ => return None,
        })
    }
}

/// A lossless compressor/decompressor.
///
/// Implementations append to the destination vector and return the number
/// of bytes produced, letting callers pack multiple pages into one buffer
/// (as the zpool allocator does).
pub trait Codec {
    /// Short stable name ("xdeflate", "xlz").
    fn name(&self) -> &'static str;

    /// The [`CodecKind`] tag stored in SFM entries.
    fn kind(&self) -> CodecKind;

    /// Compresses `src`, appending to `dst`.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal failures; incompressible data is
    /// stored in a raw container block, never rejected.
    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize>;

    /// Decompresses `src`, appending to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`xfm_types::Error::Corrupt`] when `src` is not a valid
    /// stream for this codec.
    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<usize>;

    /// [`Self::compress`] reusing caller-held scratch state, the
    /// zero-allocation hot path. Output is byte-identical to
    /// [`Self::compress`] regardless of what the scratch last held.
    ///
    /// The default implementation ignores the scratch and delegates to
    /// [`Self::compress`]; codecs with reusable state override it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::compress`].
    fn compress_into(&self, src: &[u8], dst: &mut Vec<u8>, scratch: &mut Scratch) -> Result<usize> {
        let _ = scratch;
        self.compress(src, dst)
    }

    /// [`Self::decompress`] reusing caller-held scratch state.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::decompress`].
    fn decompress_into(
        &self,
        src: &[u8],
        dst: &mut Vec<u8>,
        scratch: &mut Scratch,
    ) -> Result<usize> {
        let _ = scratch;
        self.decompress(src, dst)
    }

    /// Decompresses a batch of blocks, appending block `i` to `dsts[i]`.
    ///
    /// The batch shape lets codecs amortize per-block setup: the FSE
    /// codec keeps its decode tables when consecutive blocks carry the
    /// same frequency header (common for pages from one application),
    /// which is what `swap_in`-driven prefetching feeds on.
    ///
    /// # Errors
    ///
    /// Fails on the first corrupt block, with earlier outputs already
    /// appended.
    ///
    /// # Panics
    ///
    /// Panics if `srcs` and `dsts` lengths differ.
    fn decompress_batch_into(
        &self,
        srcs: &[&[u8]],
        dsts: &mut [Vec<u8>],
        scratch: &mut Scratch,
    ) -> Result<()> {
        assert_eq!(srcs.len(), dsts.len(), "batch shape mismatch");
        for (src, dst) in srcs.iter().zip(dsts.iter_mut()) {
            self.decompress_into(src, dst, scratch)?;
        }
        Ok(())
    }
}

/// CPU cost of running a codec, used by the §3 cost model and the co-run
/// interference simulation.
///
/// The paper's model uses the average of zstd and lzo costs: 7.65e9
/// cycles to (de)compress one GB.
///
/// # Examples
///
/// ```
/// use xfm_compress::CostModel;
///
/// let m = CostModel::paper_average();
/// assert_eq!(m.cycles_per_gb().count(), 7_650_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU cycles per byte compressed.
    pub compress_cycles_per_byte: f64,
    /// CPU cycles per byte decompressed.
    pub decompress_cycles_per_byte: f64,
}

impl CostModel {
    /// The paper's §3 average over zstd and lzo: 7.65e9 cycles/GB,
    /// split symmetrically.
    #[must_use]
    pub fn paper_average() -> Self {
        let per_byte = 7.65e9 / 1e9;
        Self {
            compress_cycles_per_byte: per_byte,
            decompress_cycles_per_byte: per_byte,
        }
    }

    /// A zstd-like profile (slower compression, fast decompression).
    #[must_use]
    pub fn zstd_like() -> Self {
        Self {
            compress_cycles_per_byte: 12.0,
            decompress_cycles_per_byte: 3.5,
        }
    }

    /// An lzo-like profile (fast both ways, worse ratio).
    #[must_use]
    pub fn lzo_like() -> Self {
        Self {
            compress_cycles_per_byte: 5.5,
            decompress_cycles_per_byte: 2.0,
        }
    }

    /// Average (compress + decompress) cycles for one gigabyte, the
    /// quantity the paper's EQ3.4 calls `CCPerGB`.
    #[must_use]
    pub fn cycles_per_gb(&self) -> Cycles {
        let per_byte = (self.compress_cycles_per_byte + self.decompress_cycles_per_byte) / 2.0;
        Cycles::new((per_byte * 1e9).round() as u64)
    }

    /// Cycles to compress `bytes` bytes.
    #[must_use]
    pub fn compress_cycles(&self, bytes: u64) -> Cycles {
        Cycles::new((self.compress_cycles_per_byte * bytes as f64).round() as u64)
    }

    /// Cycles to decompress `bytes` bytes.
    #[must_use]
    pub fn decompress_cycles(&self, bytes: u64) -> Cycles {
        Cycles::new((self.decompress_cycles_per_byte * bytes as f64).round() as u64)
    }

    /// Compression throughput of one core at `freq`.
    #[must_use]
    pub fn compress_throughput(&self, freq: xfm_types::Hertz) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(freq.as_hz() / self.compress_cycles_per_byte)
    }

    /// Decompression throughput of one core at `freq`.
    #[must_use]
    pub fn decompress_throughput(&self, freq: xfm_types::Hertz) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(freq.as_hz() / self.decompress_cycles_per_byte)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfm_types::Hertz;

    #[test]
    fn paper_average_matches_eq34_constant() {
        let m = CostModel::paper_average();
        assert_eq!(m.cycles_per_gb().count(), 7_650_000_000);
    }

    #[test]
    fn throughput_inverse_of_cost() {
        let m = CostModel::zstd_like();
        let f = Hertz::from_ghz(2.6);
        let bw = m.compress_throughput(f);
        // 2.6e9 / 12 cycles per byte ≈ 0.217 GB/s.
        assert!((bw.as_gbps() - 0.2167).abs() < 0.001);
        assert!(m.decompress_throughput(f).as_gbps() > bw.as_gbps());
    }

    #[test]
    fn cycle_counts_scale_linearly() {
        let m = CostModel::lzo_like();
        assert_eq!(
            m.compress_cycles(2000).count(),
            2 * m.compress_cycles(1000).count()
        );
    }

    #[test]
    fn codec_trait_is_object_safe() {
        fn _takes_dyn(_c: &dyn Codec) {}
    }
}
