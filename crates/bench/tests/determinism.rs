//! Acceptance: two same-seed full-stack simulated runs produce
//! byte-identical telemetry exports.

use xfm_bench::replay::replay;

#[test]
fn same_seed_full_stack_exports_are_byte_identical() {
    let first = replay(0xDEAD_BEEF, true);
    let second = replay(0xDEAD_BEEF, true);
    assert_eq!(first, second, "same-seed exports diverged");
    // Sanity: the export actually carries data from every layer.
    for key in ["\"fallback\"", "\"mem\"", "\"nma\"", "\"telemetry\""] {
        assert!(first.contains(key), "export missing {key} section");
    }
}

#[test]
fn different_seeds_change_the_export() {
    let a = replay(1, true);
    let b = replay(2, true);
    assert_ne!(a, b, "seed does not influence the export");
}
