//! `xfm-repro`: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! xfm-repro [--metrics-out <path>] [--trace-out <path>] [experiment...]
//! ```
//!
//! With no arguments, all experiments run. Experiment names: `fig1`,
//! `fig3`, `fig8`, `fig11`, `fig12`, `table1`, `table2`, `table3`,
//! `timing`, `energy`, `antagonist`, `latency`.
//!
//! `--metrics-out <path>` drives the instrumented stack (swap path,
//! refresh-window gauges, DRAM model, fallback and co-run simulators)
//! against one telemetry registry and writes the snapshot to `path` —
//! Prometheus text exposition when the path ends in `.prom` or `.txt`,
//! JSON otherwise. When no experiment names accompany the flag, only the
//! metrics pass runs.
//!
//! `--trace-out <path>` additionally exports the page-lifecycle audit
//! trail captured during that metrics pass as Chrome `trace_event` JSON
//! (open in Perfetto / `chrome://tracing`). Implies the metrics pass;
//! validate with `xfm-sentinel validate-trace <path>`.

use xfm_bench::{
    render_energy, render_fig1, render_fig11, render_fig12, render_fig3, render_fig8,
    render_table1, render_tables23, render_timing,
};
use xfm_sim::corun::{antagonist_study, CorunConfig};
use xfm_sim::figures;
use xfm_types::Nanos;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--metrics-out") {
        if i + 1 >= args.len() {
            eprintln!("--metrics-out requires a path argument");
            std::process::exit(2);
        }
        metrics_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut trace_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("--trace-out requires a path argument");
            std::process::exit(2);
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let all = args.is_empty() && metrics_out.is_none() && trace_out.is_none();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("XFM reproduction — regenerating the paper's tables and figures\n");

    if metrics_out.is_some() || trace_out.is_some() {
        let registry = xfm_telemetry::Registry::new();
        let snapshot = xfm_bench::metrics::collect(&registry).expect("metrics collection");
        if let Some(path) = &trace_out {
            let events = registry.lifecycle().snapshot();
            let trace = xfm_telemetry::chrome::to_chrome_trace(&events);
            std::fs::write(path, trace).expect("write chrome trace");
            println!(
                "lifecycle trace written to {path}: {} events ({} recorded, {} dropped)\n",
                events.len(),
                registry.lifecycle().recorded(),
                registry.lifecycle().dropped()
            );
        }
        if let Some(path) = &metrics_out {
            let rendered = if path.ends_with(".prom") || path.ends_with(".txt") {
                snapshot.to_prometheus()
            } else {
                snapshot.to_json()
            };
            std::fs::write(path, rendered).expect("write metrics snapshot");
            let outs = &snapshot.histograms["xfm_swap_out_latency_ns"];
            let ins = &snapshot.histograms["xfm_swap_in_latency_ns"];
            println!(
                "telemetry snapshot written to {path}: {} swap-outs (p50 {} ns, p99 {} ns), \
                 {} swap-ins (p50 {} ns, p99 {} ns), {} spans\n",
                outs.count,
                outs.p50,
                outs.p99,
                ins.count,
                ins.p50,
                ins.p99,
                snapshot.spans.len()
            );
        }
    }

    if want("fig1") {
        for pr in [0.14, 1.0] {
            println!("{}", render_fig1(&figures::fig1_bandwidth(pr)));
        }
        let cap = figures::xfm_max_sfm_capacity(0.5, 8, 3, 2.5);
        println!(
            "XFM side-channel headroom: supports SFM capacities up to {cap} \
             (8 ranks, 3 accesses/tRFC, 50% promotion) — abstract claim: ~1 TB\n"
        );
    }
    if want("fig3") {
        println!("{}", render_fig3(&figures::fig3_cost()));
        let model = xfm_cost::FarMemoryModel::default();
        if let Some(years) = model.cost_breakeven_years(xfm_cost::FarMemoryKind::DfmDram, 1.0) {
            println!(
                "cost break-even vs DRAM-DFM @100% promotion: {years:.1} years (paper: 8.5)\n"
            );
        }
        println!(
            "accelerated-SFM usefulness threshold: {:.1}% promotion rate (paper: ~6%)\n",
            model.accelerator_breakeven_promotion_rate() * 100.0
        );
    }
    if want("fig8") {
        let rows = figures::fig8_ratios(256 * 1024).expect("fig8");
        println!("{}", render_fig8(&rows));
    }
    if want("fig11") {
        println!("{}", render_fig11(&figures::fig11_interference()));
    }
    if want("fig12") || want("energy") {
        let rows = figures::fig12_fallbacks(Nanos::from_ms(200));
        if want("fig12") {
            println!("{}", render_fig12(&rows));
        }
        if want("energy") {
            println!("{}", render_energy(&rows));
        }
    }
    if want("table1") {
        println!("{}", render_table1(&figures::table1_devices()));
    }
    if want("table2") || want("table3") {
        println!("{}", render_tables23());
    }
    if want("timing") {
        println!("{}", render_timing(&figures::timing_summary()));
    }
    if want("antagonist") {
        let (app_hit, sfm_hit) = antagonist_study(&CorunConfig::default());
        println!(
            "Section 3.2 antagonist study: worst application slowdown {:.1}% \
             (paper: up to 7.5%), antagonist throughput degradation {:.1}% \
             (paper: >5.0%)\n",
            app_hit * 100.0,
            sfm_hit * 100.0
        );
    }
    if want("ablation") {
        println!(
            "{}",
            xfm_bench::render_ablations(
                &xfm_sim::ablation::prefetch_accuracy_sweep(Nanos::from_ms(100)),
                &xfm_sim::ablation::random_budget_sweep(Nanos::from_ms(100)),
                &xfm_sim::ablation::offload_granularity_sweep(256 * 1024).expect("granularity"),
                &xfm_sim::ablation::refresh_mode_compare(),
                &xfm_sim::ablation::predictor_study(5000, 17),
            )
        );
    }
    if want("latency") {
        // Drive one offload through a real NMA device and report the
        // measured end-to-end latency (Fig. 10's 2 x tREFI minimum).
        use xfm_core::nma::{NearMemoryAccelerator, NmaConfig, NmaEvent};
        let mut nma = NearMemoryAccelerator::new(NmaConfig::default());
        let page = vec![0x5au8; 4096];
        nma.submit_compress(
            xfm_types::PageNumber::new(1),
            page,
            xfm_types::RowId::new(1),
            Nanos::ZERO,
            true,
        )
        .expect("submit");
        let events = nma.advance_to(Nanos::from_ms(64));
        if let Some(NmaEvent::Completed {
            submitted_at,
            completed_at,
            ..
        }) = events.first()
        {
            let trefi = NmaConfig::default().timings.t_refi;
            println!(
                "Figure 10 latency check: offload completed in {} \
                 (minimum 2 x tREFI = {})\n",
                *completed_at - *submitted_at,
                trefi * 2
            );
        }
    }
}
