//! Chaos harness: drives the full XFM swap stack under a seeded fault
//! plan and proves the graceful-degradation story end to end —
//!
//! - **zero data loss**: every page demoted under chaos is restored
//!   byte-exact, however many injected timeouts, rejects, corruptions,
//!   and store failures the plan lands;
//! - **no deadlock**: every retry loop is bounded; exceeding the bound
//!   is a hard failure, so a hang can never pass;
//! - **monotone degradation**: sustained device faults drive the
//!   backend down the `Nma → Mixed → CpuOnly` ladder (visible in the
//!   printed transition count), never corrupt data on the way.
//!
//! The plan comes from `XFM_FAULT_PLAN`/`XFM_FAULT_SEED` (see
//! `xfm_faults::FaultPlan::parse`) or defaults to an all-sites storm
//! with the two host-side sites bounded (an always-corrupting channel
//! has no remedy; a bounded one must be survived).
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-fault-bench`;
//! pass `--smoke` for the seconds-long variant `ci.sh --chaos` uses.
//! `--bench-out <path>` writes a `BENCH_faults.json` survival record
//! (seeded, so byte-stable across runs), `--metrics-out <path>` writes
//! the telemetry snapshot (`.prom`/`.txt` → Prometheus exposition,
//! else JSON) exactly like `xfm-repro`, and `--dump-dir <dir>` attaches
//! the flight recorder so every degraded-mode transition and retry
//! exhaustion leaves a validated post-mortem file.

use std::path::PathBuf;
use std::sync::Arc;

use xfm_compress::Corpus;
use xfm_core::backend::{XfmBackend, XfmBackendConfig};
use xfm_faults::{DegradedMode, FaultInjector, FaultPlan, FaultSite, RetryPolicy, SiteSpec};
use xfm_sfm::backend::{SfmConfig, SwapPlane};
use xfm_telemetry::{flight, FlightRecorder, FlightRecorderConfig, Registry};
use xfm_types::{ByteSize, Nanos, PageNumber, PAGE_SIZE};

/// Any single swap op must land within this many attempts; more means
/// the fault plan and retry logic have livelocked.
const MAX_ATTEMPTS: u32 = 256;

/// The default storm when `XFM_FAULT_PLAN` is unset: every device-side
/// site hot enough to force visible degradation, host-side corruption
/// and store failures bounded so forward progress stays possible.
fn default_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(FaultSite::NmaEngineTimeout, SiteSpec::with_probability(0.5))
        .with_site(
            FaultSite::SpmExhaustion,
            SiteSpec::with_probability(0.5).burst(4),
        )
        .with_site(FaultSite::QueueFull, SiteSpec::with_probability(0.5))
        .with_site(
            FaultSite::RefreshWindowMiss,
            SiteSpec::with_probability(0.75),
        )
        .with_site(
            FaultSite::BitCorruption,
            SiteSpec::with_probability(0.25).max_fires(32),
        )
        .with_site(
            FaultSite::ZpoolStoreFailure,
            SiteSpec::with_probability(0.25).max_fires(32),
        )
}

/// Removes `flag <value>` from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    assert!(i + 1 < args.len(), "{flag} requires a path argument");
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_out = take_flag(&mut args, "--bench-out").map(PathBuf::from);
    let metrics_out = take_flag(&mut args, "--metrics-out").map(PathBuf::from);
    let dump_dir = take_flag(&mut args, "--dump-dir").map(PathBuf::from);
    let smoke = args.iter().any(|a| a == "--smoke");
    let pages: u64 = if smoke { 64 } else { 512 };
    let rounds = if smoke { 2 } else { 4 };

    let seed: u64 = std::env::var("XFM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE);
    let plan = FaultPlan::from_env()
        .expect("XFM_FAULT_PLAN must parse")
        .unwrap_or_else(|| default_plan(seed));

    let registry = Registry::new();
    let mut injector = FaultInjector::new(&plan);
    injector.attach_telemetry(&registry);
    let injector = Arc::new(injector);

    let recorder = dump_dir.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("create dump dir");
        Arc::new(FlightRecorder::new(
            &registry,
            FlightRecorderConfig::new(dir.clone()),
        ))
    });

    let mut builder = XfmBackend::builder()
        .config(XfmBackendConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(16),
                ..SfmConfig::default()
            },
            ..XfmBackendConfig::default()
        })
        .telemetry(&registry)
        .faults(Arc::clone(&injector))
        .retry_policy(RetryPolicy::default());
    if let Some(recorder) = &recorder {
        builder = builder.flight_recorder(Arc::clone(recorder));
    }
    let backend = builder.build().expect("valid chaos backend configuration");

    println!(
        "chaos plan (seed {}): {}",
        injector.seed(),
        plan.sites()
            .map(|(s, spec)| format!("{}:{:.2}", s.name(), spec.probability))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut now = Nanos::from_ms(1);
    backend.advance_to(now);
    let mut swap_outs = 0u64;
    let mut swap_ins = 0u64;
    let mut store_retries = 0u64;
    let mut corrupt_retries = 0u64;
    // Virtual nanoseconds spent in any non-Nma mode: measured on the
    // simulated clock, so it is deterministic for a fixed plan+seed.
    let mut degraded_dwell_ns = 0u64;

    for round in 0..rounds {
        for i in 0..pages {
            let page = PageNumber::new(i);
            let data = Corpus::all()[(i % 16) as usize].generate(i ^ round, PAGE_SIZE);
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                assert!(
                    attempts <= MAX_ATTEMPTS,
                    "swap_out of page {i} livelocked after {MAX_ATTEMPTS} attempts"
                );
                match SwapPlane::swap_out(&backend, page, &data) {
                    Ok(_) => break,
                    // An injected store failure surfaces as a capacity
                    // verdict; the entry was never recorded, so retry.
                    Err(e) if e.is_capacity() => store_retries += 1,
                    Err(e) => panic!("unexpected swap_out error: {e}"),
                }
            }
            swap_outs += 1;
            let step = Nanos::from_us(20);
            if backend.degraded_mode() != DegradedMode::Nma {
                degraded_dwell_ns += step.as_ns();
            }
            now += step;
            backend.advance_to(now);
        }

        // Let the refresh calendar drain whatever the chaos let through.
        let step = Nanos::from_ms(40);
        if backend.degraded_mode() != DegradedMode::Nma {
            degraded_dwell_ns += step.as_ns();
        }
        now += step;
        backend.advance_to(now);

        let mut lost = 0u64;
        for i in 0..pages {
            let page = PageNumber::new(i);
            let expected = Corpus::all()[(i % 16) as usize].generate(i ^ round, PAGE_SIZE);
            let mut attempts = 0u32;
            let restored = loop {
                attempts += 1;
                assert!(
                    attempts <= MAX_ATTEMPTS,
                    "swap_in of page {i} livelocked after {MAX_ATTEMPTS} attempts"
                );
                match SwapPlane::swap_in(&backend, page, i % 2 == 0) {
                    Ok((data, _)) => break data,
                    // Checksum caught an injected flip before the entry
                    // was consumed: the stored copy is intact, retry.
                    Err(e) if e.is_corruption() && e.is_retryable() => corrupt_retries += 1,
                    Err(e) => panic!("unexpected swap_in error: {e}"),
                }
            };
            if restored != expected {
                lost += 1;
            }
            swap_ins += 1;
        }
        assert_eq!(lost, 0, "round {round}: {lost} pages corrupted or lost");
        println!(
            "round {round}: {pages} pages out+in, mode {} ({} transitions so far)",
            backend.degraded_mode().name(),
            backend.degrade_transitions()
        );
    }

    let stats = backend.stats();
    let nma = backend.nma_stats();
    println!("\n== survival ==");
    println!(
        "swap-outs: {swap_outs} ({} on the NMA), swap-ins: {swap_ins}, lost pages: 0",
        stats.nma_executions
    );
    println!(
        "injected-store retries: {store_retries}, corruption retries: {corrupt_retries}, \
         NMA rejects: {}, CPU fallback share: {:.1}%",
        nma.rejected,
        backend.cpu_fallback_fraction() * 100.0
    );
    println!(
        "degraded mode: {} after {} transitions",
        backend.degraded_mode().name(),
        backend.degrade_transitions()
    );

    println!("\n== injected faults per site ==");
    for site in FaultSite::ALL {
        println!(
            "{:<22} {:>8} fires / {:>8} ops",
            site.name(),
            injector.fires(site),
            injector.ops(site)
        );
    }
    let fired: u64 = FaultSite::ALL.iter().map(|&s| injector.fires(s)).sum();
    assert!(fired > 0, "the chaos plan never fired — nothing was tested");

    let snap = registry.snapshot();
    let telemetry_fired: u64 = FaultSite::ALL
        .iter()
        .map(|s| {
            snap.counters
                .get(&format!(
                    "xfm_fault_injected_total{{site=\"{}\"}}",
                    s.name()
                ))
                .copied()
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        telemetry_fired, fired,
        "telemetry counters must agree with the injector"
    );
    println!(
        "\nchaos OK: {} faults injected, every page byte-exact, no deadlock",
        fired
    );

    if let Some(path) = &bench_out {
        let injected = FaultSite::ALL
            .iter()
            .map(|&s| format!("    \"{}\": {}", s.name(), injector.fires(s)))
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"pages\": {pages},\n  \"rounds\": {rounds},\n  \"seed\": {},\n  \
             \"injected\": {{\n{injected}\n  }},\n  \"total_injected\": {fired},\n  \
             \"store_retries\": {store_retries},\n  \"corrupt_retries\": {corrupt_retries},\n  \
             \"degrade_transitions\": {},\n  \"degraded_dwell_ns\": {degraded_dwell_ns},\n  \
             \"final_mode\": \"{}\",\n  \"lost_pages\": 0\n}}\n",
            injector.seed(),
            backend.degrade_transitions(),
            backend.degraded_mode().name(),
        );
        std::fs::write(path, json).expect("write bench-out");
        println!("survival record written to {}", path.display());
    }

    if let Some(path) = &metrics_out {
        let prometheus = path.extension().is_some_and(|e| e == "prom" || e == "txt");
        let rendered = if prometheus {
            snap.to_prometheus()
        } else {
            snap.to_json()
        };
        std::fs::write(path, rendered).expect("write metrics snapshot");
        println!(
            "telemetry snapshot written to {} ({} counters, {} histograms)",
            path.display(),
            snap.counters.len(),
            snap.histograms.len()
        );
    }

    if let Some(dir) = &dump_dir {
        let recorder = recorder.as_ref().expect("recorder attached with dump dir");
        let mut dumps: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("read dump dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("xfm-postmortem-"))
            })
            .collect();
        dumps.sort();
        assert_eq!(
            dumps.len() as u64,
            recorder.dumps(),
            "dump files on disk must match the recorder's count"
        );
        for path in &dumps {
            let text = std::fs::read_to_string(path).expect("read dump");
            let summary = flight::validate_dump(&text)
                .unwrap_or_else(|e| panic!("invalid post-mortem {}: {e}", path.display()));
            println!(
                "post-mortem {}: reason={} events={}",
                path.display(),
                summary.reason,
                summary.events
            );
        }
        if backend.degrade_transitions() > 0 {
            assert!(
                !dumps.is_empty(),
                "degraded-mode transitions occurred but no post-mortem was dumped"
            );
        }
        println!(
            "flight recorder: {} incidents, {} dumps, all parseable",
            recorder.incidents(),
            recorder.dumps()
        );
    }
}
