//! End-to-end swap throughput benchmark for the sharded data plane:
//! M worker threads of mixed fault/swap-out traffic against 1/2/4/8
//! shard configurations, emitting machine-readable `BENCH_swap.json`.
//!
//! # Methodology on small hosts
//!
//! This container frequently runs on a **single core**, where wall-clock
//! parallel speedup is physically impossible no matter how well the data
//! plane scales. The benchmark therefore reports two throughputs per
//! configuration:
//!
//! - `wall_pages_per_sec` — what this host actually sustained (on one
//!   core, roughly flat across shard counts);
//! - `pages_per_sec` (the headline) — a **critical-path model** computed
//!   from the per-shard `xfm_shard_busy_ns_total` counters of a clean
//!   single-threaded pass (no preemption noise):
//!   `ops / max(max_shard_busy, total_busy / threads)`.
//!   A shard is a serial resource — its lock admits one op at a time —
//!   so the busiest shard bounds any schedule from below, as does total
//!   work divided over `threads` cores. The model is exact for
//!   perfectly-overlapped execution and is what an M-core host would
//!   approach.
//!
//! The JSON also records `host_cores` so readers can judge which number
//! applies, plus a 1-shard/1-thread parity run against the pre-existing
//! single-threaded `CpuBackend` path (acceptance: within 10%).
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-swap-bench`;
//! pass `--smoke` for a seconds-long self-validating run (used by
//! `ci.sh`) that writes to a temporary file instead of the repo root.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xfm_compress::Corpus;
use xfm_sfm::{ColdScanConfig, CpuBackend, SfmConfig, ShardedSfm, ShardedSfmConfig};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, PageNumber, PAGE_SIZE};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Workload shape; `smoke` shrinks it to a CI-friendly size.
#[derive(Clone, Copy)]
struct Workload {
    workers: usize,
    pages_per_worker: usize,
    ops_per_worker: usize,
}

const FULL: Workload = Workload {
    workers: 4,
    pages_per_worker: 256,
    ops_per_worker: 1536,
};
const SMOKE: Workload = Workload {
    workers: 2,
    pages_per_worker: 16,
    ops_per_worker: 48,
};

/// Deterministic page contents: a mix of same-filled pages (zswap fast
/// path), three compressible corpora, and an incompressible page every
/// eighth slot (raw-store path).
fn page_contents(page: u64) -> Vec<u8> {
    match page % 8 {
        0 => vec![page as u8; PAGE_SIZE],
        7 => Corpus::RandomBytes.generate(page, PAGE_SIZE),
        1 | 4 => Corpus::Json.generate(page, PAGE_SIZE),
        2 | 5 => Corpus::KeyValue.generate(page, PAGE_SIZE),
        _ => Corpus::LogLines.generate(page, PAGE_SIZE),
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One worker's traffic: populate every other page, then `ops` random
/// fault/swap-out pairs over its disjoint page range. Returns the number
/// of swap operations performed.
fn drive_sharded(sfm: &ShardedSfm, worker: usize, wl: Workload, contents: &[Vec<u8>]) -> u64 {
    let base = (worker * wl.pages_per_worker) as u64;
    let mut swapped_out = vec![false; wl.pages_per_worker];
    let mut ops = 0u64;
    for i in (0..wl.pages_per_worker).step_by(2) {
        sfm.swap_out(PageNumber::new(base + i as u64), &contents[i])
            .expect("populate");
        swapped_out[i] = true;
        ops += 1;
    }
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((worker as u64 + 1) * 0x0D1B_54A3_2D19_2ED0);
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    for _ in 0..wl.ops_per_worker {
        let i = (xorshift(&mut rng) as usize) % wl.pages_per_worker;
        let pn = PageNumber::new(base + i as u64);
        if swapped_out[i] {
            sfm.swap_in_into(pn, false, &mut buf).expect("fault");
            assert_eq!(buf, contents[i], "page {pn} corrupted");
        } else {
            sfm.swap_out(pn, &contents[i]).expect("swap out");
        }
        swapped_out[i] = !swapped_out[i];
        ops += 1;
    }
    ops
}

/// The identical traffic against the pre-existing single-threaded path.
fn drive_cpu(backend: &CpuBackend, worker: usize, wl: Workload, contents: &[Vec<u8>]) -> u64 {
    let base = (worker * wl.pages_per_worker) as u64;
    let mut swapped_out = vec![false; wl.pages_per_worker];
    let mut ops = 0u64;
    for i in (0..wl.pages_per_worker).step_by(2) {
        backend
            .swap_out(PageNumber::new(base + i as u64), &contents[i])
            .expect("populate");
        swapped_out[i] = true;
        ops += 1;
    }
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((worker as u64 + 1) * 0x0D1B_54A3_2D19_2ED0);
    for _ in 0..wl.ops_per_worker {
        let i = (xorshift(&mut rng) as usize) % wl.pages_per_worker;
        let pn = PageNumber::new(base + i as u64);
        if swapped_out[i] {
            let (data, _) = backend.swap_in(pn, false).expect("fault");
            assert_eq!(data, contents[i], "page {pn} corrupted");
        } else {
            backend.swap_out(pn, &contents[i]).expect("swap out");
        }
        swapped_out[i] = !swapped_out[i];
        ops += 1;
    }
    ops
}

fn plane(shards: usize, registry: &Registry) -> ShardedSfm {
    let mut sfm = ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(16),
            ..SfmConfig::default()
        },
        scan: ColdScanConfig::default(),
        shards,
    });
    sfm.attach_telemetry(registry);
    sfm
}

struct ConfigResult {
    shards: usize,
    threads: usize,
    /// Critical-path model throughput (headline).
    pages_per_sec: f64,
    /// What this host's cores actually sustained.
    wall_pages_per_sec: f64,
    max_shard_busy_ns: u64,
    total_busy_ns: u64,
    /// `max_shard_busy * shards / total_busy`; 1.0 = perfectly balanced.
    busy_imbalance: f64,
    p99_fault_ns: u64,
    ops: u64,
}

fn run_config(shards: usize, wl: Workload, contents: &[Vec<Vec<u8>>]) -> ConfigResult {
    // Pass 1 (model): single-threaded, so per-shard busy counters carry
    // pure service time with no preemption or lock-wait noise.
    let registry = Registry::new();
    let sfm = plane(shards, &registry);
    let mut ops = 0u64;
    for (w, c) in contents.iter().enumerate() {
        ops += drive_sharded(&sfm, w, wl, c);
    }
    let snap = registry.snapshot();
    let busy: Vec<u64> = (0..shards)
        .map(|i| snap.counters[&format!("xfm_shard_busy_ns_total{{shard=\"{i}\"}}")])
        .collect();
    let total_busy: u64 = busy.iter().sum();
    let max_busy = busy.iter().copied().max().unwrap_or(0);
    let threads = wl.workers;
    let critical_path_ns = max_busy.max(total_busy / threads as u64).max(1);
    let pages_per_sec = ops as f64 * 1e9 / critical_path_ns as f64;
    let busy_imbalance = if total_busy == 0 {
        0.0
    } else {
        max_busy as f64 * shards as f64 / total_busy as f64
    };

    // Pass 2 (wall + tail latency): the same traffic from real threads,
    // proving the concurrent path is safe and measuring what this host's
    // cores deliver.
    let registry = Registry::new();
    let sfm = plane(shards, &registry);
    let wall_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (w, contents) in contents.iter().enumerate() {
            let sfm = &sfm;
            let wall_ops = &wall_ops;
            scope.spawn(move || {
                wall_ops.fetch_add(drive_sharded(sfm, w, wl, contents), Ordering::Relaxed);
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    sfm.update_shard_gauges();
    let snap = registry.snapshot();
    assert_eq!(
        wall_ops.load(Ordering::Relaxed),
        ops,
        "both passes run the same traffic"
    );

    ConfigResult {
        shards,
        threads,
        pages_per_sec,
        wall_pages_per_sec: ops as f64 / wall,
        max_shard_busy_ns: max_busy,
        total_busy_ns: total_busy,
        busy_imbalance,
        p99_fault_ns: snap.histograms["xfm_swap_in_latency_ns"].p99,
        ops,
    }
}

fn render_json(
    wl: Workload,
    host_cores: usize,
    baseline_pps: f64,
    parity_pps: f64,
    results: &[ConfigResult],
) -> String {
    let one_shard_pps = results
        .iter()
        .find(|r| r.shards == 1)
        .map_or(1.0, |r| r.pages_per_sec);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"workers\": {},", wl.workers);
    let _ = writeln!(s, "  \"pages_per_worker\": {},", wl.pages_per_worker);
    let _ = writeln!(s, "  \"ops_per_worker\": {},", wl.ops_per_worker);
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    s.push_str(
        "  \"methodology\": \"pages_per_sec is a critical-path model from per-shard busy-ns \
         counters of a single-threaded pass: ops / max(max_shard_busy, total_busy/threads). \
         wall_pages_per_sec is what this host's cores sustained; on a 1-core host the wall \
         numbers cannot scale regardless of sharding.\",\n",
    );
    let _ = writeln!(
        s,
        "  \"baseline_cpu_backend_pages_per_sec\": {baseline_pps:.0},"
    );
    let _ = writeln!(
        s,
        "  \"parity_1shard_1thread\": {{\"wall_pages_per_sec\": {parity_pps:.0}, \
         \"ratio_vs_baseline\": {:.3}}},",
        parity_pps / baseline_pps
    );
    s.push_str("  \"scaling\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"shards\": {}, \"threads\": {}, \"ops\": {}, \
             \"pages_per_sec\": {:.0}, \"wall_pages_per_sec\": {:.0}, \
             \"speedup_vs_1_shard\": {:.2}, \"max_shard_busy_ns\": {}, \
             \"total_busy_ns\": {}, \"busy_imbalance\": {:.3}, \
             \"p99_fault_latency_ns\": {}}}{comma}",
            r.shards,
            r.threads,
            r.ops,
            r.pages_per_sec,
            r.wall_pages_per_sec,
            r.pages_per_sec / one_shard_pps,
            r.max_shard_busy_ns,
            r.total_busy_ns,
            r.busy_imbalance,
            r.p99_fault_ns,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal structural validation of the emitted report (smoke mode):
/// balanced braces/brackets and the keys the acceptance criteria read.
fn validate_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    for c in json.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != 0 {
        return Err("unbalanced braces".into());
    }
    for key in [
        "\"scaling\"",
        "\"pages_per_sec\"",
        "\"wall_pages_per_sec\"",
        "\"p99_fault_latency_ns\"",
        "\"parity_1shard_1thread\"",
        "\"host_cores\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wl = if smoke { SMOKE } else { FULL };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let contents: Vec<Vec<Vec<u8>>> = (0..wl.workers)
        .map(|w| {
            (0..wl.pages_per_worker)
                .map(|i| page_contents((w * wl.pages_per_worker + i) as u64))
                .collect()
        })
        .collect();

    // Pre-PR single-threaded baseline: the unsharded CpuBackend.
    let cpu = CpuBackend::new(SfmConfig {
        region_capacity: ByteSize::from_mib(16),
        ..SfmConfig::default()
    });
    let start = Instant::now();
    let mut baseline_ops = 0u64;
    for (w, c) in contents.iter().enumerate() {
        baseline_ops += drive_cpu(&cpu, w, wl, c);
    }
    let baseline_pps = baseline_ops as f64 / start.elapsed().as_secs_f64();

    // 1-shard parity: same traffic, one thread, through the sharded front.
    let parity_sfm = plane(1, &Registry::new());
    let start = Instant::now();
    let mut parity_ops = 0u64;
    for (w, c) in contents.iter().enumerate() {
        parity_ops += drive_sharded(&parity_sfm, w, wl, c);
    }
    let parity_pps = parity_ops as f64 / start.elapsed().as_secs_f64();

    println!(
        "{:<7} {:>8} {:>16} {:>16} {:>10} {:>14}",
        "shards", "threads", "model pg/s", "wall pg/s", "imbalance", "p99 fault ns"
    );
    let results: Vec<ConfigResult> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let r = run_config(shards, wl, &contents);
            println!(
                "{:<7} {:>8} {:>16.0} {:>16.0} {:>10.3} {:>14}",
                r.shards,
                r.threads,
                r.pages_per_sec,
                r.wall_pages_per_sec,
                r.busy_imbalance,
                r.p99_fault_ns
            );
            r
        })
        .collect();
    println!(
        "baseline (CpuBackend, 1 thread): {baseline_pps:.0} pg/s; \
         1-shard parity: {parity_pps:.0} pg/s ({:.1}%)",
        100.0 * parity_pps / baseline_pps
    );

    let json = render_json(wl, host_cores, baseline_pps, parity_pps, &results);
    if smoke {
        let path = std::env::temp_dir().join("BENCH_swap.smoke.json");
        std::fs::write(&path, &json).expect("write smoke report");
        let read_back = std::fs::read_to_string(&path).expect("read smoke report");
        if let Err(e) = validate_json(&read_back) {
            eprintln!("smoke validation failed: {e}");
            std::process::exit(1);
        }
        println!("smoke OK: {}", path.display());
    } else {
        validate_json(&json).expect("report must be structurally valid");
        std::fs::write("BENCH_swap.json", &json).expect("write BENCH_swap.json");
        println!("wrote BENCH_swap.json");
    }
}
