//! `xfm-sentinel`: the bench-regression gate.
//!
//! Subcommands:
//!
//! - `check --baseline-dir <dir> --current-dir <dir> [--throughput-drop F]
//!   [--ratio-drop F]` — diff every `BENCH_*.json` present in the
//!   baseline dir against the same file in the current dir using the
//!   tolerance bands from [`xfm_bench::sentinel`]; exit 1 on any
//!   failure. `BENCH_faults.json`, `BENCH_prefetch.json`, and
//!   `BENCH_tier.json` are optional in the baseline (older checkouts);
//!   the other three are required.
//! - `validate-trace <file.json>` — structurally validate a Chrome
//!   `trace_event` export produced by `xfm-repro --trace-out`.
//! - `validate-dump <file.json>` — structurally validate a flight
//!   recorder post-mortem dump.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xfm_bench::sentinel::{self, SentinelReport, Tolerance};
use xfm_telemetry::{chrome, flight};

fn usage() -> ExitCode {
    eprintln!(
        "usage: xfm-sentinel check --baseline-dir <dir> --current-dir <dir> \
         [--throughput-drop F] [--ratio-drop F]\n       \
         xfm-sentinel validate-trace <file.json>\n       \
         xfm-sentinel validate-dump <file.json>"
    );
    ExitCode::from(2)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

fn check(mut args: Vec<String>) -> ExitCode {
    let Some(baseline_dir) = take_flag(&mut args, "--baseline-dir").map(PathBuf::from) else {
        return usage();
    };
    let Some(current_dir) = take_flag(&mut args, "--current-dir").map(PathBuf::from) else {
        return usage();
    };
    let mut tol = Tolerance::default();
    if let Some(v) = take_flag(&mut args, "--throughput-drop") {
        match v.parse() {
            Ok(f) => tol.throughput_drop = f,
            Err(_) => return usage(),
        }
    }
    if let Some(v) = take_flag(&mut args, "--ratio-drop") {
        match v.parse() {
            Ok(f) => tol.ratio_drop = f,
            Err(_) => return usage(),
        }
    }
    if !args.is_empty() {
        return usage();
    }

    type CheckFn = fn(&str, &str, Tolerance) -> SentinelReport;
    let suites: [(&str, CheckFn, bool); 7] = [
        ("BENCH_codec.json", sentinel::check_codec, true),
        ("BENCH_swap.json", sentinel::check_swap, true),
        ("BENCH_event.json", sentinel::check_event, true),
        ("BENCH_faults.json", sentinel::check_faults, false),
        ("BENCH_prefetch.json", sentinel::check_prefetch, false),
        ("BENCH_tier.json", sentinel::check_tier, false),
        ("BENCH_serve.json", sentinel::check_serve, false),
    ];

    let mut reports = Vec::new();
    for (name, run, required) in suites {
        let base_path = baseline_dir.join(name);
        if !base_path.exists() {
            if required {
                let mut r = SentinelReport::default();
                r.errors
                    .push(format!("baseline {} missing", base_path.display()));
                reports.push(r);
            } else {
                println!("sentinel: {name}: no baseline, skipped");
            }
            continue;
        }
        let cur_path = current_dir.join(name);
        let pair = read(&base_path).and_then(|b| read(&cur_path).map(|c| (b, c)));
        match pair {
            Ok((base, cur)) => {
                let r = run(&base, &cur, tol);
                println!(
                    "sentinel: {name}: {} checks, {} failures, {} errors",
                    r.checks.len(),
                    r.failures().len(),
                    r.errors.len()
                );
                reports.push(r);
            }
            Err(e) => {
                let mut r = SentinelReport::default();
                r.errors.push(e);
                reports.push(r);
            }
        }
    }

    let all = sentinel::merge(reports);
    print!("{}", all.render());
    if all.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn validate_trace(path: &Path) -> ExitCode {
    match read(path).and_then(|text| chrome::validate_chrome_trace(&text)) {
        Ok(events) => {
            println!("trace OK: {} events ({})", events, path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

fn validate_dump(path: &Path) -> ExitCode {
    match read(path).and_then(|text| flight::validate_dump(&text)) {
        Ok(summary) => {
            println!(
                "dump OK: reason={} events={} ({})",
                summary.reason,
                summary.events,
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dump INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "check" => check(args),
        "validate-trace" if args.len() == 1 => validate_trace(Path::new(&args[0])),
        "validate-dump" if args.len() == 1 => validate_dump(Path::new(&args[0])),
        _ => usage(),
    }
}
