//! Discrete-event core benchmark and deterministic replay harness.
//!
//! Two modes:
//!
//! - **Throughput** (default, `--smoke` for the CI-sized run): measures
//!   raw events/sec through the shared [`xfm_event::EventQueue`] under a
//!   self-rescheduling periodic workload, and pins the wall-clock of a
//!   full-stack simulated run so event-core regressions show up as a
//!   hard failure rather than a silently slower CI. Emits
//!   machine-readable `BENCH_event.json` (the smoke run writes to a
//!   temporary file) and self-validates.
//!
//! - **Replay** (`--replay --seed N --out PATH`): runs the deterministic
//!   full stack (see [`xfm_bench::replay`]) and writes the sim-time-only
//!   telemetry export to `PATH`. The `ci.sh` determinism gate runs this
//!   twice with the same seed and byte-diffs the two files.

use std::fmt::Write as _;
use std::time::Instant;

use xfm_bench::replay::replay;
use xfm_event::EventQueue;
use xfm_types::Nanos;

/// Generous wall-clock ceiling for the pinned full-stack run. The run
/// takes well under a second on any host this repo targets; the pin only
/// exists to catch catastrophic event-core regressions (e.g. the queue
/// going quadratic).
const SIM_WALL_CEILING_MS: u128 = 30_000;

/// A self-rescheduling periodic stream, mimicking how the refresh
/// calendar, burst arrivals and engine completions ride the queue.
struct Stream {
    period: Nanos,
    next: Nanos,
}

/// Pushes `total` events through the queue across `streams` interleaved
/// periodic streams and returns the events/sec rate.
fn queue_throughput(streams: usize, total: u64) -> f64 {
    let mut queue: EventQueue<usize> = EventQueue::with_capacity(streams);
    let mut procs: Vec<Stream> = (0..streams)
        .map(|i| Stream {
            // Coprime-ish periods so streams genuinely interleave, with
            // frequent exact collisions exercising the FIFO tie-break.
            period: Nanos::from_ns(100 + (i as u64 % 7) * 50),
            next: Nanos::ZERO,
        })
        .collect();
    for (i, p) in procs.iter().enumerate() {
        queue.push(p.next, i);
    }
    let start = Instant::now();
    let mut popped = 0u64;
    while popped < total {
        let ev = queue.pop().expect("streams never drain");
        popped += 1;
        let p = &mut procs[ev.payload];
        p.next = ev.at + p.period;
        queue.push(p.next, ev.payload);
    }
    popped as f64 / start.elapsed().as_secs_f64()
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::args().any(|a| a == "--replay") {
        let seed = arg_value("--seed")
            .map(|s| s.parse().expect("--seed takes a u64"))
            .unwrap_or(0x0f0f_1234);
        let out = arg_value("--out").expect("--replay requires --out PATH");
        let json = replay(seed, smoke);
        std::fs::write(&out, &json).expect("write replay export");
        println!("replay seed={seed} -> {out} ({} bytes)", json.len());
        return;
    }

    let (streams, total) = if smoke {
        (16, 200_000)
    } else {
        (64, 5_000_000)
    };
    let events_per_sec = queue_throughput(streams, total);

    // Pin the wall-clock of a full-stack simulated run: the Fig. 12
    // simulation, the event-front DRAM trace, and the NMA pipeline all
    // ride the shared event core.
    let start = Instant::now();
    let export = replay(0x0f0f_1234, smoke);
    let sim_wall_ms = start.elapsed().as_millis();
    assert!(
        sim_wall_ms < SIM_WALL_CEILING_MS,
        "full-stack sim took {sim_wall_ms} ms (ceiling {SIM_WALL_CEILING_MS} ms)"
    );
    assert!(export.contains("\"fallback\""), "replay export malformed");

    let mut json = String::with_capacity(512);
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"streams\": {streams},");
    let _ = writeln!(json, "  \"events\": {total},");
    let _ = writeln!(json, "  \"events_per_sec\": {events_per_sec:.0},");
    let _ = writeln!(json, "  \"sim_wall_ms\": {sim_wall_ms},");
    let _ = writeln!(json, "  \"sim_wall_ceiling_ms\": {SIM_WALL_CEILING_MS}");
    json.push('}');

    // Self-validate: the throughput must be positive and sane.
    assert!(
        events_per_sec > 10_000.0,
        "event core absurdly slow: {events_per_sec:.0} ev/s"
    );

    let path = if smoke {
        std::env::temp_dir().join("BENCH_event.json")
    } else {
        std::path::PathBuf::from("BENCH_event.json")
    };
    std::fs::write(&path, &json).expect("write bench output");
    println!("{json}");
    println!(
        "event core: {events_per_sec:.0} events/sec across {streams} streams; \
         full-stack sim {sim_wall_ms} ms -> {}",
        path.display()
    );
}
