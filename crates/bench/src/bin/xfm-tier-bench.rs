//! Tiered-swap-plane benchmark, emitting machine-readable
//! `BENCH_tier.json`: per-tier fault-latency distributions,
//! demotion/promotion rates, and degraded-replica throughput.
//!
//! The harness composes the three-tier hierarchy the tier plane was
//! built for — compressed local zpool → modeled SSD → replicated
//! remote pair, all on one shared virtual clock — then:
//!
//! 1. **fill**: demotes `pages` cold pages through the budgeted
//!    hierarchy, cascading the coldest down to SSD and remote;
//! 2. **fault**: faults every page back in, timing the wall-clock
//!    fault path per originating tier and collecting the *virtual*
//!    (modeled, machine-independent) media latencies per device;
//! 3. **degraded**: writes a replicated working set, scrubs, kills one
//!    replica, and measures read-back throughput plus the zero-loss
//!    invariant on the survivor.
//!
//! Wall-clock rows are machine-dependent and band-checked by the
//! sentinel; virtual latencies and all demotion/promotion/replica
//! counters are deterministic for a fixed seed and exact-checked.
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-tier-bench`;
//! pass `--smoke` for the seconds-long self-validating variant
//! (`ci.sh --tier`), `--replica-kill` for the chaos scenario alone
//! under an injected replica-drop storm (`ci.sh --chaos`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use xfm_compress::Corpus;
use xfm_event::ClockMirror;
use xfm_faults::{FaultInjector, FaultPlan, FaultSite, SiteSpec};
use xfm_sfm::{
    MediaModel, ModeledPlane, ReplicatedPlane, SfmConfig, ShardedSfm, ShardedSfmConfig, SwapPlane,
    TierSpec, TierStats, TieredPlane,
};
use xfm_types::{ByteSize, PageNumber, PlacementClass, PlaneId, PAGE_SIZE};

const SEED: u64 = 0x7137_D00D;

/// Workload shape; `smoke` shrinks it to a CI-friendly size.
#[derive(Clone, Copy)]
struct Workload {
    /// Pages demoted through the hierarchy.
    pages: u64,
    /// Tier-0 (compressed local) resident budget.
    local_budget: u64,
    /// Tier-1 (modeled SSD) resident budget.
    ssd_budget: u64,
    /// Pages in the degraded-replica working set.
    replica_pages: u64,
}

const FULL: Workload = Workload {
    pages: 768,
    local_budget: 128,
    ssd_budget: 256,
    replica_pages: 384,
};
const SMOKE: Workload = Workload {
    pages: 96,
    local_budget: 16,
    ssd_budget: 32,
    replica_pages: 48,
};

/// Compressible page contents (heap-page shapes) so the local tier
/// stores real compressed objects.
fn page_contents(page: u64) -> Vec<u8> {
    match page % 3 {
        0 => Corpus::Json.generate(page ^ SEED, PAGE_SIZE),
        1 => Corpus::KeyValue.generate(page ^ SEED, PAGE_SIZE),
        _ => Corpus::LogLines.generate(page ^ SEED, PAGE_SIZE),
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The composed hierarchy plus handles to the modeled devices.
struct Hierarchy {
    tiered: TieredPlane,
    ssd: Arc<ModeledPlane>,
    remote: Arc<ReplicatedPlane>,
}

fn build_hierarchy(wl: Workload) -> Hierarchy {
    let clock = ClockMirror::new();
    let local = Arc::new(ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(16),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    }));
    let ssd = Arc::new(ModeledPlane::new(
        "ssd",
        MediaModel::ssd(),
        0,
        clock.clone(),
    ));
    let remote = Arc::new(ReplicatedPlane::new(
        "remote",
        MediaModel::remote(),
        0,
        clock.clone(),
    ));
    let tiered = TieredPlane::new(vec![
        TierSpec::new(local, PlaneId::new(0), PlacementClass::CompressedLocal)
            .with_capacity_pages(wl.local_budget),
        TierSpec::new(ssd.clone(), PlaneId::new(1), PlacementClass::Ssd)
            .with_capacity_pages(wl.ssd_budget),
        TierSpec::new(remote.clone(), PlaneId::new(2), PlacementClass::Remote),
    ])
    .expect("valid hierarchy");
    Hierarchy {
        tiered,
        ssd,
        remote,
    }
}

/// Per-tier fault measurements: wall-clock latencies grouped by the
/// tier the page resided on when the fault hit.
struct TierRow {
    stats: TierStats,
    faults: u64,
    fault_p50_ns: u64,
    fault_p99_ns: u64,
}

struct TierRun {
    rows: Vec<TierRow>,
    swap_outs: u64,
    demotions: u64,
    faults: u64,
    promotions: u64,
    /// Virtual (modeled) media latencies, exact-checkable.
    ssd_read_p50_ns: u64,
    ssd_read_p99_ns: u64,
    ssd_write_p50_ns: u64,
    ssd_write_p99_ns: u64,
    remote_read_p50_ns: u64,
    remote_write_p50_ns: u64,
}

fn run_tiers(wl: Workload) -> TierRun {
    let h = build_hierarchy(wl);

    // Phase 1: fill. Budget pressure cascades cold pages down.
    for p in 0..wl.pages {
        h.tiered
            .swap_out(PageNumber::new(p), &page_contents(p))
            .expect("demote");
    }
    let fill_stats = h.tiered.tier_stats();

    // Phase 2: fault every page back, attributing the wall latency to
    // the tier that held the page.
    let mut per_tier: Vec<Vec<u64>> = vec![Vec::new(); fill_stats.len()];
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    for p in 0..wl.pages {
        let pn = PageNumber::new(p);
        let tier = h
            .tiered
            .placement_of(pn)
            .map_or(0, |pl| pl.plane.as_u32() as usize);
        let start = Instant::now();
        h.tiered.swap_in_into(pn, true, &mut buf).expect("fault");
        let ns = start.elapsed().as_nanos() as u64;
        assert_eq!(buf, page_contents(p), "page {p} corrupted in the hierarchy");
        per_tier[tier].push(ns);
    }
    let final_stats = h.tiered.tier_stats();

    let rows: Vec<TierRow> = final_stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut lat = per_tier[i].clone();
            lat.sort_unstable();
            TierRow {
                stats: TierStats {
                    // Resident counts are meaningful after the fill,
                    // before the consuming faults drained the tiers.
                    resident_pages: fill_stats[i].resident_pages,
                    ..s.clone()
                },
                faults: lat.len() as u64,
                fault_p50_ns: quantile(&lat, 0.50),
                fault_p99_ns: quantile(&lat, 0.99),
            }
        })
        .collect();

    let demotions: u64 = rows.iter().map(|r| r.stats.demoted_in).sum();
    let promotions: u64 = rows.iter().map(|r| r.stats.promoted).sum();
    TierRun {
        rows,
        swap_outs: wl.pages,
        demotions,
        faults: wl.pages,
        promotions,
        ssd_read_p50_ns: h.ssd.read_latency().quantile(0.50),
        ssd_read_p99_ns: h.ssd.read_latency().quantile(0.99),
        ssd_write_p50_ns: h.ssd.write_latency().quantile(0.50),
        ssd_write_p99_ns: h.ssd.write_latency().quantile(0.99),
        remote_read_p50_ns: h.remote.replica(0).read_latency().quantile(0.50),
        remote_write_p50_ns: h.remote.replica(0).write_latency().quantile(0.50),
    }
}

struct ReplicaRun {
    pages: u64,
    degraded_reads: u64,
    repairs: u64,
    dropped_writes: u64,
    lost_pages: u64,
    degraded_pages_per_sec: f64,
}

/// Phase 3: write a replicated working set, scrub, kill one replica,
/// read everything back off the survivor under the clock.
fn run_degraded(wl: Workload, storm: bool) -> ReplicaRun {
    let mut plane = ReplicatedPlane::new("remote", MediaModel::remote(), 0, ClockMirror::new());
    if storm {
        let plan = FaultPlan::new(SEED).with_site(
            FaultSite::ReplicaLoss,
            SiteSpec::with_probability(0.3).max_fires(wl.replica_pages / 4),
        );
        plane.attach_faults(Arc::new(FaultInjector::new(&plan)));
    }
    for p in 0..wl.replica_pages {
        plane
            .swap_out(PageNumber::new(p), &page_contents(p))
            .expect("replicated write");
    }
    // Anti-entropy restores two-copy redundancy before the kill.
    plane.scrub();
    plane.kill(0);

    let mut lost = 0u64;
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let start = Instant::now();
    for p in 0..wl.replica_pages {
        match plane.swap_in_into(PageNumber::new(p), true, &mut buf) {
            Ok(_) if buf == page_contents(p) => {}
            _ => lost += 1,
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(lost, 0, "replica kill lost {lost} pages");
    ReplicaRun {
        pages: wl.replica_pages,
        degraded_reads: plane.degraded_reads(),
        repairs: plane.repairs(),
        dropped_writes: plane.dropped_writes(),
        lost_pages: lost,
        degraded_pages_per_sec: wl.replica_pages as f64 / secs.max(1e-9),
    }
}

fn render_json(wl: Workload, run: &TierRun, rep: &ReplicaRun) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"pages\": {},", wl.pages);
    let _ = writeln!(s, "  \"seed\": {SEED},");
    s.push_str(
        "  \"methodology\": \"Pages demote through compressed-local -> modeled-SSD -> \
         replicated-remote under per-tier budgets, then fault back in. fault_p50/p99_ns are \
         wall-clock per originating tier (band-checked; the modeled media charge virtual time, \
         so wall rows mostly show the decompress/memcpy cost). The 'virtual' section carries \
         the deterministic modeled media latencies (exact-checked). The 'replica' section \
         writes a replicated set, scrubs, kills replica 0, and reads everything off the \
         survivor; lost_pages must be 0.\",\n",
    );
    s.push_str("  \"tiers\": [\n");
    for (i, r) in run.rows.iter().enumerate() {
        let comma = if i + 1 < run.rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"id\": {}, \"class\": \"{}\", \"resident_after_fill\": {}, \
             \"budget_pages\": {}, \"demoted_in\": {}, \"demoted_out\": {}, \"promoted\": {}, \
             \"faults\": {}, \"fault_p50_ns\": {}, \"fault_p99_ns\": {}}}{comma}",
            r.stats.id.as_u32(),
            r.stats.class.name(),
            r.stats.resident_pages,
            r.stats.capacity_pages,
            r.stats.demoted_in,
            r.stats.demoted_out,
            r.stats.promoted,
            r.faults,
            r.fault_p50_ns,
            r.fault_p99_ns,
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"virtual\": {{\"ssd_read_p50_ns\": {}, \"ssd_read_p99_ns\": {}, \
         \"ssd_write_p50_ns\": {}, \"ssd_write_p99_ns\": {}, \"remote_read_p50_ns\": {}, \
         \"remote_write_p50_ns\": {}}},",
        run.ssd_read_p50_ns,
        run.ssd_read_p99_ns,
        run.ssd_write_p50_ns,
        run.ssd_write_p99_ns,
        run.remote_read_p50_ns,
        run.remote_write_p50_ns,
    );
    let _ = writeln!(
        s,
        "  \"rates\": {{\"swap_outs\": {}, \"demotions\": {}, \"demotion_rate\": {:.4}, \
         \"faults\": {}, \"promotions\": {}, \"promotion_rate\": {:.4}}},",
        run.swap_outs,
        run.demotions,
        run.demotions as f64 / run.swap_outs.max(1) as f64,
        run.faults,
        run.promotions,
        run.promotions as f64 / run.faults.max(1) as f64,
    );
    let _ = writeln!(
        s,
        "  \"replica\": {{\"pages\": {}, \"degraded_reads\": {}, \"repairs\": {}, \
         \"dropped_writes\": {}, \"lost_pages\": {}, \"degraded_pages_per_sec\": {:.0}}}",
        rep.pages,
        rep.degraded_reads,
        rep.repairs,
        rep.dropped_writes,
        rep.lost_pages,
        rep.degraded_pages_per_sec,
    );
    s.push_str("}\n");
    s
}

/// Minimal structural validation of the emitted report (smoke mode).
fn validate_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    for c in json.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != 0 {
        return Err("unbalanced braces".into());
    }
    for key in [
        "\"tiers\"",
        "\"compressed_local\"",
        "\"ssd\"",
        "\"remote\"",
        "\"virtual\"",
        "\"rates\"",
        "\"replica\"",
        "\"lost_pages\": 0",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let replica_kill = args.iter().any(|a| a == "--replica-kill");
    let wl = if smoke { SMOKE } else { FULL };

    if replica_kill {
        // Chaos scenario alone: an injected replica-drop storm, then a
        // replica kill — zero loss or the process exits nonzero.
        let rep = run_degraded(wl, true);
        println!(
            "replica-kill OK: {} pages survived replica loss ({} degraded reads, \
             {} dropped writes repaired by scrub, 0 lost)",
            rep.pages, rep.degraded_reads, rep.dropped_writes,
        );
        return;
    }

    let run = run_tiers(wl);
    println!(
        "{:<18} {:>9} {:>8} {:>8} {:>8} {:>9} {:>12} {:>12}",
        "tier", "resident", "budget", "dem.in", "dem.out", "faults", "p50 ns", "p99 ns",
    );
    for r in &run.rows {
        println!(
            "{:<18} {:>9} {:>8} {:>8} {:>8} {:>9} {:>12} {:>12}",
            format!("{} [{}]", r.stats.id, r.stats.class.name()),
            r.stats.resident_pages,
            r.stats.capacity_pages,
            r.stats.demoted_in,
            r.stats.demoted_out,
            r.faults,
            r.fault_p50_ns,
            r.fault_p99_ns,
        );
    }
    println!(
        "demotions: {} ({:.2}/swap-out), promotions: {} ({:.2}/fault)",
        run.demotions,
        run.demotions as f64 / run.swap_outs.max(1) as f64,
        run.promotions,
        run.promotions as f64 / run.faults.max(1) as f64,
    );
    println!(
        "virtual media: ssd read p50 {} ns / p99 {} ns, write p50 {} ns; \
         remote read p50 {} ns, write p50 {} ns",
        run.ssd_read_p50_ns,
        run.ssd_read_p99_ns,
        run.ssd_write_p50_ns,
        run.remote_read_p50_ns,
        run.remote_write_p50_ns,
    );

    let rep = run_degraded(wl, false);
    println!(
        "degraded replica: {} pages off one survivor at {:.0} pages/s \
         ({} degraded reads, 0 lost)",
        rep.pages, rep.degraded_pages_per_sec, rep.degraded_reads,
    );

    let json = render_json(wl, &run, &rep);
    if smoke {
        let path = std::env::temp_dir().join("BENCH_tier.smoke.json");
        std::fs::write(&path, &json).expect("write smoke report");
        let read_back = std::fs::read_to_string(&path).expect("read smoke report");
        if let Err(e) = validate_json(&read_back) {
            eprintln!("smoke validation failed: {e}");
            std::process::exit(1);
        }
        println!("smoke OK: {}", path.display());
    } else {
        validate_json(&json).expect("report must be structurally valid");
        std::fs::write("BENCH_tier.json", &json).expect("write BENCH_tier.json");
        println!("wrote BENCH_tier.json");
    }
}
