//! Demand-fault latency benchmark for the learned prefetch pipeline,
//! emitting machine-readable `BENCH_prefetch.json`.
//!
//! Four fault traces are replayed twice each — prefetching **on**
//! (hybrid predictor, pump after every fault, exactly what a
//! background prefetcher thread interleaves) and **off** (the engine
//! disabled, every fault pays the decompress) — and only the
//! `swap_in_into` call is timed. The pump, the re-swap-out that keeps
//! the working set cold, and all verification run off the clock, so
//! the numbers isolate what the fault path itself sees:
//!
//! - `scan` — a sequential sweep (stride 1);
//! - `stride` — a strided matrix walk (stride 3);
//! - `zipf-objects` — Zipfian popularity over large objects whose
//!   pages are touched sequentially (the AIFM-style far-memory shape);
//! - `pointer-chase` — a seeded random walk with no exploitable
//!   structure, included to show the precision gate refusing to
//!   speculate rather than thrashing the staging cache.
//!
//! A final section drives the UCB autotuner over the zipf trace in
//! epochs — applying each chosen arm's depth/threshold to the live
//! engine — and compares the latency it converges to against an
//! exhaustive sweep of every fixed arm. The comparison uses p50 over
//! each epoch (the median of a hit-dominated window is stable on a
//! noisy shared host where means are not; both sides use the same
//! estimator).
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-prefetch-bench`;
//! pass `--smoke` for the seconds-long self-validating variant
//! (`ci.sh --prefetch`) that writes to a temporary file instead of the
//! repo root.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use xfm_compress::Corpus;
use xfm_sfm::{
    AutoTuneConfig, AutoTuner, PrefetchConfig, PrefetchEngine, SfmConfig, ShardedSfm,
    ShardedSfmConfig,
};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, PageNumber, PAGE_SIZE};

/// Workload shape; `smoke` shrinks it to a CI-friendly size.
#[derive(Clone, Copy)]
struct Workload {
    /// Pages per trace universe.
    pages: u64,
    /// Pages per Zipfian object (sequentially accessed).
    object_pages: u64,
    /// Timed faults per trace.
    faults: usize,
    /// Untimed warm-up faults before measurement starts.
    warmup: usize,
    /// Faults per autotuner epoch.
    epoch_faults: usize,
    /// Autotuner epochs (on top of one pull per arm).
    tune_epochs: usize,
}

const FULL: Workload = Workload {
    pages: 4096,
    object_pages: 384,
    faults: 8192,
    warmup: 1024,
    epoch_faults: 768,
    tune_epochs: 28,
};
const SMOKE: Workload = Workload {
    pages: 256,
    object_pages: 64,
    faults: 384,
    warmup: 128,
    epoch_faults: 96,
    tune_epochs: 3,
};

/// Compressible page contents only: the off arm must pay a real
/// decompress per fault, exactly as a production fault stream of heap
/// pages would (same-filled and raw-stored pages are near-free either
/// way and would only flatter the comparison).
fn page_contents(page: u64) -> Vec<u8> {
    match page % 3 {
        0 => Corpus::Json.generate(page, PAGE_SIZE),
        1 => Corpus::KeyValue.generate(page, PAGE_SIZE),
        _ => Corpus::LogLines.generate(page, PAGE_SIZE),
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Zipfian(s≈1) object index in `[0, objects)` via inverse-CDF over
/// precomputed cumulative weights.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(objects: usize) -> Self {
        let mut cdf = Vec::with_capacity(objects);
        let mut acc = 0.0;
        for i in 0..objects {
            acc += 1.0 / (i as f64 + 1.0);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut u64) -> usize {
        let u = (xorshift(rng) >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The four fault traces, as explicit page sequences.
fn build_trace(name: &str, wl: Workload) -> Vec<u64> {
    let total = wl.warmup + wl.faults;
    let mut trace = Vec::with_capacity(total);
    match name {
        "scan" => {
            for i in 0..total as u64 {
                trace.push(i % wl.pages);
            }
        }
        "stride" => {
            for i in 0..total as u64 {
                trace.push((i * 3) % wl.pages);
            }
        }
        "zipf-objects" => {
            let objects = (wl.pages / wl.object_pages).max(1) as usize;
            let zipf = Zipf::new(objects);
            let mut rng = 0x00D1_5EA5_EDB0_0B5Eu64;
            while trace.len() < total {
                let o = zipf.sample(&mut rng) as u64;
                for p in 0..wl.object_pages {
                    trace.push(o * wl.object_pages + p);
                    if trace.len() == total {
                        break;
                    }
                }
            }
        }
        "pointer-chase" => {
            let mut rng = 0xDEAD_BEEF_CAFE_F00Du64;
            for _ in 0..total {
                trace.push(xorshift(&mut rng) % wl.pages);
            }
        }
        _ => unreachable!("unknown trace {name}"),
    }
    trace
}

fn engine(registry: &Registry, prefetch_on: bool) -> PrefetchEngine {
    let mut inner = ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(64),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    });
    inner.attach_telemetry(registry);
    let mut e = PrefetchEngine::new(
        Arc::new(inner),
        PrefetchConfig {
            staging_capacity: 512,
            auto_pump: false,
            ..PrefetchConfig::default()
        },
    );
    e.attach_telemetry(registry);
    e.set_enabled(prefetch_on);
    e
}

/// Replays `trace` against a fresh engine. Timed section is the
/// `swap_in_into` alone; the pump (background prefetcher stand-in) and
/// the re-swap-out that keeps pages cold for their next visit run off
/// the clock. Returns per-fault latencies (ns) for the measured window.
struct TraceRun {
    latencies_ns: Vec<u64>,
    precision: f64,
    hit_rate: f64,
    gated: bool,
    issued: u64,
    throttled: u64,
    writebacks: u64,
}

fn run_trace(trace: &[u64], wl: Workload, prefetch_on: bool) -> TraceRun {
    let registry = Registry::new();
    let e = engine(&registry, prefetch_on);
    let contents: Vec<Vec<u8>> = (0..wl.pages).map(page_contents).collect();
    for p in 0..wl.pages {
        e.swap_out(PageNumber::new(p), &contents[p as usize])
            .expect("populate");
    }

    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let mut latencies_ns = Vec::with_capacity(wl.faults);
    let hits = registry.counter("xfm_prefetch_hits_total");
    let mut hits_at_window = 0u64;
    for (i, &p) in trace.iter().enumerate() {
        if i == wl.warmup {
            hits_at_window = hits.get();
        }
        let pn = PageNumber::new(p);
        let start = Instant::now();
        e.swap_in_into(pn, false, &mut buf).expect("fault");
        let ns = start.elapsed().as_nanos() as u64;
        if i >= wl.warmup {
            latencies_ns.push(ns);
        }
        assert_eq!(buf.len(), PAGE_SIZE, "page {p} truncated");
        assert_eq!(buf[..16], contents[p as usize][..16], "page {p} corrupted");
        // Off the clock: make the page cold again and let the
        // "background" prefetcher catch up with the stream.
        e.swap_out(pn, &contents[p as usize]).expect("re-swap-out");
        if prefetch_on {
            e.pump();
        }
    }

    let window_hits = hits.get() - hits_at_window;
    TraceRun {
        hit_rate: window_hits as f64 / latencies_ns.len() as f64,
        latencies_ns,
        precision: e.precision(),
        gated: e.is_gated(),
        issued: registry.counter("xfm_prefetch_issued_total").get(),
        throttled: registry.counter("xfm_prefetch_throttled_total").get(),
        writebacks: registry.counter("xfm_prefetch_writebacks_total").get(),
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct TraceResult {
    name: &'static str,
    faults: usize,
    p50_off_ns: u64,
    p99_off_ns: u64,
    p50_on_ns: u64,
    p99_on_ns: u64,
    p99_reduction: f64,
    precision: f64,
    hit_rate: f64,
    gated: bool,
    issued: u64,
    throttled: u64,
    writebacks: u64,
}

fn run_pair(name: &'static str, wl: Workload) -> TraceResult {
    let trace = build_trace(name, wl);
    let off = run_trace(&trace, wl, false);
    let on = run_trace(&trace, wl, true);
    let mut off_sorted = off.latencies_ns;
    let mut on_sorted = on.latencies_ns;
    off_sorted.sort_unstable();
    on_sorted.sort_unstable();
    let p99_off = quantile(&off_sorted, 0.99);
    let p99_on = quantile(&on_sorted, 0.99);
    TraceResult {
        name,
        faults: on_sorted.len(),
        p50_off_ns: quantile(&off_sorted, 0.50),
        p99_off_ns: p99_off,
        p50_on_ns: quantile(&on_sorted, 0.50),
        p99_on_ns: p99_on,
        p99_reduction: 1.0 - p99_on as f64 / p99_off.max(1) as f64,
        precision: on.precision,
        hit_rate: on.hit_rate,
        gated: on.gated,
        issued: on.issued,
        throttled: on.throttled,
        writebacks: on.writebacks,
    }
}

/// Runs `faults` faults of the (cyclic) trace starting at `*cursor`,
/// returning the p50 fault latency of the window.
fn run_epoch(
    e: &PrefetchEngine,
    trace: &[u64],
    contents: &[Vec<u8>],
    cursor: &mut usize,
    faults: usize,
) -> u64 {
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let mut lat = Vec::with_capacity(faults);
    for _ in 0..faults {
        let p = trace[*cursor % trace.len()];
        *cursor += 1;
        let pn = PageNumber::new(p);
        let start = Instant::now();
        e.swap_in_into(pn, false, &mut buf).expect("fault");
        lat.push(start.elapsed().as_nanos() as u64);
        e.swap_out(pn, &contents[p as usize]).expect("re-swap-out");
        e.pump();
    }
    lat.sort_unstable();
    quantile(&lat, 0.50)
}

struct TuneResult {
    arms: usize,
    epochs: usize,
    best_fixed_p50_ns: u64,
    best_fixed_arm: usize,
    autotune_p50_ns: u64,
    ratio: f64,
    chosen_arm: usize,
    chosen_pulls: u64,
}

/// Fixed-arm sweep vs. live UCB autotuning on the zipf trace. Every
/// fixed arm gets a fresh warmed engine and one measured epoch; the
/// tuner drives one engine across `arms + tune_epochs` epochs and is
/// scored on the median of its last quarter.
fn run_autotune(wl: Workload) -> TuneResult {
    let trace = build_trace("zipf-objects", wl);
    let contents: Vec<Vec<u8>> = (0..wl.pages).map(page_contents).collect();
    let arms = AutoTuner::grid_default();

    let mut best_fixed_p50 = u64::MAX;
    let mut best_fixed_arm = 0usize;
    for (i, knobs) in arms.iter().enumerate() {
        let registry = Registry::new();
        let e = engine(&registry, true);
        for p in 0..wl.pages {
            e.swap_out(PageNumber::new(p), &contents[p as usize])
                .expect("populate");
        }
        e.set_knobs(knobs.prefetch_depth, knobs.confidence_threshold);
        let mut cursor = 0usize;
        run_epoch(&e, &trace, &contents, &mut cursor, wl.warmup);
        let p50 = run_epoch(&e, &trace, &contents, &mut cursor, wl.epoch_faults);
        if p50 < best_fixed_p50 {
            best_fixed_p50 = p50;
            best_fixed_arm = i;
        }
    }

    let mut tuner = AutoTuner::new(arms.clone(), AutoTuneConfig::default());
    let registry = Registry::new();
    let e = engine(&registry, true);
    for p in 0..wl.pages {
        e.swap_out(PageNumber::new(p), &contents[p as usize])
            .expect("populate");
    }
    let mut cursor = 0usize;
    run_epoch(&e, &trace, &contents, &mut cursor, wl.warmup);
    let epochs = arms.len() + wl.tune_epochs;
    let mut epoch_p50s = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let k = *tuner.current();
        e.set_knobs(k.prefetch_depth, k.confidence_threshold);
        let p50 = run_epoch(&e, &trace, &contents, &mut cursor, wl.epoch_faults);
        epoch_p50s.push(p50);
        tuner.record_reward(-(p50 as f64));
    }
    let tail = epochs.div_ceil(4);
    let mut last: Vec<u64> = epoch_p50s[epochs - tail..].to_vec();
    last.sort_unstable();
    let autotune_p50 = quantile(&last, 0.50);
    let (chosen_arm, _) = tuner.best();

    TuneResult {
        arms: arms.len(),
        epochs,
        best_fixed_p50_ns: best_fixed_p50,
        best_fixed_arm,
        autotune_p50_ns: autotune_p50,
        ratio: autotune_p50 as f64 / best_fixed_p50.max(1) as f64,
        chosen_arm,
        chosen_pulls: tuner.arm_pulls(chosen_arm),
    }
}

fn render_json(wl: Workload, results: &[TraceResult], tune: &TuneResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"pages\": {},", wl.pages);
    let _ = writeln!(s, "  \"object_pages\": {},", wl.object_pages);
    let _ = writeln!(s, "  \"warmup_faults\": {},", wl.warmup);
    s.push_str(
        "  \"methodology\": \"Each trace replays twice (prefetch on/off); only swap_in_into is \
         timed. The pump and re-swap-out model a background prefetcher thread and run off the \
         clock. p99_reduction = 1 - p99_on/p99_off over the post-warmup window. The autotune \
         section scores each epoch by p50 fault latency (median of a hit-dominated window; \
         stable on shared hosts) and compares the tuner's last-quarter median against an \
         exhaustive fixed-arm sweep using the same estimator.\",\n",
    );
    s.push_str("  \"traces\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"faults\": {}, \"p50_off_ns\": {}, \"p99_off_ns\": {}, \
             \"p50_on_ns\": {}, \"p99_on_ns\": {}, \"p99_reduction\": {:.3}, \
             \"precision\": {:.3}, \"hit_rate\": {:.3}, \"gated\": {}, \"issued\": {}, \
             \"throttled\": {}, \"writebacks\": {}}}{comma}",
            r.name,
            r.faults,
            r.p50_off_ns,
            r.p99_off_ns,
            r.p50_on_ns,
            r.p99_on_ns,
            r.p99_reduction,
            r.precision,
            r.hit_rate,
            r.gated,
            r.issued,
            r.throttled,
            r.writebacks,
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"autotune\": {{\"trace\": \"zipf-objects\", \"arms\": {}, \"epochs\": {}, \
         \"best_fixed_arm\": {}, \"best_fixed_p50_ns\": {}, \"autotune_p50_ns\": {}, \
         \"ratio_vs_best_fixed\": {:.3}, \"chosen_arm\": {}, \"chosen_arm_pulls\": {}}}",
        tune.arms,
        tune.epochs,
        tune.best_fixed_arm,
        tune.best_fixed_p50_ns,
        tune.autotune_p50_ns,
        tune.ratio,
        tune.chosen_arm,
        tune.chosen_pulls,
    );
    s.push_str("}\n");
    s
}

/// Minimal structural validation of the emitted report (smoke mode):
/// balanced braces/brackets and the keys the acceptance criteria read.
fn validate_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    for c in json.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != 0 {
        return Err("unbalanced braces".into());
    }
    for key in [
        "\"traces\"",
        "\"p99_reduction\"",
        "\"precision\"",
        "\"autotune\"",
        "\"ratio_vs_best_fixed\"",
        "\"zipf-objects\"",
        "\"pointer-chase\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wl = if smoke { SMOKE } else { FULL };

    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>10} {:>10} {:>9} {:>6} {:>7} {:>9} {:>6}",
        "trace",
        "faults",
        "p99 off ns",
        "p99 on ns",
        "reduction",
        "precision",
        "hit rate",
        "gated",
        "issued",
        "throttled",
        "wbacks",
    );
    let results: Vec<TraceResult> = ["scan", "stride", "zipf-objects", "pointer-chase"]
        .into_iter()
        .map(|name| {
            let r = run_pair(name, wl);
            println!(
                "{:<14} {:>8} {:>12} {:>12} {:>9.1}% {:>10.3} {:>9.3} {:>6} {:>7} {:>9} {:>6}",
                r.name,
                r.faults,
                r.p99_off_ns,
                r.p99_on_ns,
                r.p99_reduction * 100.0,
                r.precision,
                r.hit_rate,
                r.gated,
                r.issued,
                r.throttled,
                r.writebacks,
            );
            r
        })
        .collect();

    let tune = run_autotune(wl);
    println!(
        "autotune (zipf-objects): {} arms x {} epochs, best fixed p50 {} ns (arm {}), \
         tuner p50 {} ns, ratio {:.3}, chosen arm {} ({} pulls)",
        tune.arms,
        tune.epochs,
        tune.best_fixed_p50_ns,
        tune.best_fixed_arm,
        tune.autotune_p50_ns,
        tune.ratio,
        tune.chosen_arm,
        tune.chosen_pulls,
    );

    let json = render_json(wl, &results, &tune);
    if smoke {
        let path = std::env::temp_dir().join("BENCH_prefetch.smoke.json");
        std::fs::write(&path, &json).expect("write smoke report");
        let read_back = std::fs::read_to_string(&path).expect("read smoke report");
        if let Err(e) = validate_json(&read_back) {
            eprintln!("smoke validation failed: {e}");
            std::process::exit(1);
        }
        println!("smoke OK: {}", path.display());
    } else {
        validate_json(&json).expect("report must be structurally valid");
        std::fs::write("BENCH_prefetch.json", &json).expect("write BENCH_prefetch.json");
        println!("wrote BENCH_prefetch.json");
    }
}
