//! Multi-tenant serving benchmark, emitting machine-readable
//! `BENCH_serve.json`: per-tenant fault-latency percentiles, admission
//! sheds, and the cross-layer accounting balance.
//!
//! The harness provisions three tenants over one sharded compressed
//! plane — two guaranteed, one best-effort noisy neighbor — and drives
//! them with the [`xfm_serve::loadgen`] mixed workload: Zipfian point
//! ops, periodic sequential scans, and hot-set bursts from the
//! best-effort tenant, across worker threads sharing a global op
//! ticket counter.
//!
//! Three invariants gate the run (nonzero exit on violation):
//!
//! 1. **zero lost pages** — the final sweep re-reads every key the
//!    service claims to hold, byte-comparing against the deterministic
//!    value pattern;
//! 2. **zero worker errors** — no plane or service call may fail;
//! 3. **accounting balance** — every tenant's service ledger must equal
//!    the plane's own per-tenant usage, and the sum must equal the
//!    pool's stored bytes.
//!
//! Wall-clock latency rows are machine-dependent and band-checked by
//! the sentinel; op counts, sheds, and the balance flags are exact.
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-serve-bench`;
//! pass `--smoke` for the seconds-long self-validating variant
//! (`ci.sh --serve`).

use std::fmt::Write as _;
use std::sync::Arc;

use xfm_serve::{
    run_load, BurstSpec, FarKvService, LoadConfig, LoadReport, ServiceClass, TenantSpec,
    WorkloadMix,
};
use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig};
use xfm_types::{ByteSize, TenantId, PAGE_SIZE};

const SEED: u64 = 0x5E1C_E5E5;

/// Workload shape; `smoke` shrinks it to a CI-friendly size.
#[derive(Clone, Copy)]
struct Workload {
    /// Op tickets issued across all workers.
    total_ops: u64,
    /// Worker threads.
    workers: usize,
    /// Keyspace per tenant.
    keys_per_tenant: u64,
    /// Hot-cache quota per tenant, pages.
    resident_pages: u64,
    /// Compressed far-memory quota per guaranteed tenant.
    compressed_quota: ByteSize,
    /// Compressed quota for the best-effort tenant, sized below its
    /// working set so admission sheds show up in the report.
    be_compressed_quota: ByteSize,
    /// Shared compressed region capacity.
    region: ByteSize,
    /// Plane shards.
    shards: usize,
}

const FULL: Workload = Workload {
    total_ops: 1_000_000,
    workers: 4,
    keys_per_tenant: 8_192,
    resident_pages: 2_048,
    compressed_quota: ByteSize::from_mib(24),
    be_compressed_quota: ByteSize::from_mib(4),
    region: ByteSize::from_mib(128),
    shards: 8,
};
const SMOKE: Workload = Workload {
    total_ops: 20_000,
    workers: 4,
    keys_per_tenant: 512,
    resident_pages: 64,
    compressed_quota: ByteSize::from_mib(4),
    be_compressed_quota: ByteSize::from_kib(256),
    region: ByteSize::from_mib(32),
    shards: 4,
};

fn specs(wl: Workload) -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(
            TenantId::new(1),
            ByteSize::from_pages(wl.resident_pages),
            wl.compressed_quota,
        ),
        TenantSpec::new(
            TenantId::new(2),
            ByteSize::from_pages(wl.resident_pages),
            wl.compressed_quota,
        ),
        // The noisy neighbor: best-effort class, half the hot cache, a
        // compressed quota below its working set, and (in the workload)
        // a burst phase hammering a tiny hot set.
        TenantSpec::new(
            TenantId::new(3),
            ByteSize::from_pages(wl.resident_pages / 2),
            wl.be_compressed_quota,
        )
        .with_class(ServiceClass::BestEffort),
    ]
}

fn run(wl: Workload) -> (FarKvService, Vec<TenantSpec>, LoadReport) {
    let plane = Arc::new(ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: wl.region,
            ..SfmConfig::default()
        },
        shards: wl.shards,
        ..ShardedSfmConfig::default()
    }));
    let specs = specs(wl);
    let service = FarKvService::new(plane, specs.clone());
    let report = run_load(
        &service,
        &specs,
        &LoadConfig {
            workers: wl.workers,
            total_ops: wl.total_ops,
            keys_per_tenant: wl.keys_per_tenant,
            seed: SEED,
            mix: WorkloadMix {
                write_fraction: 0.3,
                zipf_s: 0.99,
                scan_every: 512,
                scan_len: 64,
                burst: Some(BurstSpec {
                    tenant: TenantId::new(3),
                    period: 1_024,
                    len: 128,
                    hot_keys: 64,
                }),
            },
        },
    );
    (service, specs, report)
}

fn render_json(wl: Workload, mode: &str, service: &FarKvService, report: &LoadReport) -> String {
    let acct = service.accounting();
    let pool = report
        .per_tenant
        .iter()
        .map(|t| t.compressed_bytes)
        .sum::<u64>();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"xfm-serve-bench-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"page_size\": {PAGE_SIZE},");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"workers\": {},", wl.workers);
    let _ = writeln!(s, "  \"zipf_s\": 0.99,");
    let _ = writeln!(s, "  \"keys_per_tenant\": {},", wl.keys_per_tenant);
    let _ = writeln!(s, "  \"total_ops\": {},", report.total_ops);
    let _ = writeln!(s, "  \"elapsed_ms\": {},", report.elapsed_ns / 1_000_000);
    let _ = writeln!(s, "  \"ops_per_sec\": {:.0},", report.ops_per_sec);
    s.push_str(
        "  \"methodology\": \"Three tenants (two guaranteed, one best-effort noisy neighbor) \
         share one sharded compressed plane through the FarKvService front-end: Zipfian point \
         ops + periodic scans + hot-set bursts across worker threads. fault_p50/p99_ns are \
         exact wall-clock demand-fault percentiles per tenant (band-checked); op counts, \
         sheds, lost_pages, and the accounting balance are exact. balance requires every \
         tenant's service ledger to equal the plane's per-tenant usage and the sum to equal \
         the pool's stored bytes.\",\n",
    );
    s.push_str("  \"tenants\": [\n");
    for (i, t) in report.per_tenant.iter().enumerate() {
        let comma = if i + 1 < report.per_tenant.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "    {{\"tenant\": {}, \"class\": \"{}\", \"puts\": {}, \"gets\": {}, \
             \"hits\": {}, \"faults\": {}, \"sheds\": {}, \"demotions\": {}, \
             \"fault_p50_ns\": {}, \"fault_p99_ns\": {}, \"fault_mean_ns\": {}, \
             \"compressed_bytes\": {}}}{comma}",
            t.tenant.as_u16(),
            t.class.name(),
            t.puts,
            t.gets,
            t.hits,
            t.faults,
            t.sheds,
            t.demotions,
            t.fault_p50_ns,
            t.fault_p99_ns,
            t.fault_mean_ns,
            t.compressed_bytes,
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"accounting\": {{\"ledger_total_bytes\": {}, \"plane_total_bytes\": {}, \
         \"tenant_ledger_sum_bytes\": {pool}, \"balanced\": {}}},",
        acct.ledger_total, acct.plane_total, acct.balanced,
    );
    let _ = writeln!(
        s,
        "  \"integrity\": {{\"checked\": {}, \"lost_pages\": {}, \"errors\": {}}},",
        report.integrity_checked, report.lost_pages, report.errors,
    );
    let _ = writeln!(
        s,
        "  \"degraded_mode\": \"{}\"",
        service.degraded_mode().name()
    );
    s.push_str("}\n");
    s
}

fn validate_json(json: &str) -> Result<(), String> {
    let mut depth = 0i64;
    for c in json.chars() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != 0 {
        return Err("unbalanced braces".into());
    }
    for key in [
        "\"tenants\"",
        "\"guaranteed\"",
        "\"best_effort\"",
        "\"accounting\"",
        "\"balanced\": true",
        "\"lost_pages\": 0",
        "\"errors\": 0",
    ] {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let wl = if smoke { SMOKE } else { FULL };
    let mode = if smoke { "smoke" } else { "full" };

    let (service, _specs, report) = run(wl);

    println!(
        "{:<8} {:<12} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12} {:>12}",
        "tenant", "class", "puts", "gets", "hits", "faults", "sheds", "p50 ns", "p99 ns",
    );
    for t in &report.per_tenant {
        println!(
            "{:<8} {:<12} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12} {:>12}",
            t.tenant.to_string(),
            t.class.name(),
            t.puts,
            t.gets,
            t.hits,
            t.faults,
            t.sheds,
            t.fault_p50_ns,
            t.fault_p99_ns,
        );
    }
    let acct = service.accounting();
    println!(
        "{} service ops in {} ms ({:.0} ops/s); integrity: {} checked, {} lost, {} errors",
        report.total_ops,
        report.elapsed_ns / 1_000_000,
        report.ops_per_sec,
        report.integrity_checked,
        report.lost_pages,
        report.errors,
    );
    println!(
        "accounting: ledger {} B == plane {} B, balanced: {}; pool stored {} B",
        acct.ledger_total,
        acct.plane_total,
        acct.balanced,
        service
            .plane()
            .tenant_usage()
            .iter()
            .map(|(_, b)| b)
            .sum::<u64>(),
    );

    if report.lost_pages != 0 || report.errors != 0 {
        eprintln!(
            "serve bench FAILED: {} lost pages, {} errors",
            report.lost_pages, report.errors
        );
        std::process::exit(1);
    }
    if !acct.balanced {
        eprintln!("serve bench FAILED: accounting imbalance {acct:?}");
        std::process::exit(1);
    }

    let json = render_json(wl, mode, &service, &report);
    if let Err(e) = validate_json(&json) {
        eprintln!("serve bench FAILED: invalid JSON: {e}");
        std::process::exit(1);
    }
    if smoke {
        let path = std::env::temp_dir().join("BENCH_serve_smoke.json");
        std::fs::write(&path, &json).expect("write smoke JSON");
        println!("smoke OK: self-validated JSON at {}", path.display());
    } else {
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }
}
