//! Measures codec throughput in pages/sec on 4 KiB corpus pages and
//! emits machine-readable `BENCH_codec.json`.
//!
//! Two paths are timed per codec/corpus: the fresh-state `compress`/
//! `decompress` API (a new internal state per page) and the scratch-
//! reusing `compress_into`/`decompress_into` hot path with a
//! pre-reserved output buffer (the zero-allocation swap path). The JSON
//! report also embeds the seed implementation's numbers for the same
//! workload on the same machine, so the speedup is tracked in-tree.
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-codec-bench`.

use std::fmt::Write as _;
use std::time::Instant;
use xfm_compress::{Codec, Corpus, Scratch, XDeflate, Xlz};

const PAGE: usize = 4096;
const PAGES_PER_CORPUS: usize = 256;
const ROUNDS: usize = 5;

/// Seed-implementation throughput (pre scratch reuse, byte-loop match
/// extension, per-call allocations), measured with this same harness
/// (256 x 4 KiB pages, best-of-5, release) on the machine that produced
/// the `current` section. Regenerate both sections together when
/// re-benchmarking on different hardware.
const BASELINE: &[(&str, &str, f64, f64)] = &[
    ("xdeflate", "json", 5234.0, 34401.0),
    ("xdeflate", "english-text", 5714.0, 24628.0),
    ("xlz", "json", 27377.0, 155758.0),
    ("xlz", "english-text", 19501.0, 90599.0),
];

fn corpus_pages(corpus: Corpus) -> Vec<Vec<u8>> {
    (0..PAGES_PER_CORPUS)
        .map(|i| corpus.generate(0x5EED_0000 + i as u64, PAGE))
        .collect()
}

/// Best-of-`ROUNDS` pages/sec for `f` applied to every page.
fn pages_per_sec(pages: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up pass.
    f();
    let mut best = f64::MAX;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    pages as f64 / best
}

struct Row {
    codec: &'static str,
    corpus: &'static str,
    compress_fresh: f64,
    compress_scratch: f64,
    decompress_fresh: f64,
    decompress_scratch: f64,
}

fn measure(codec: &dyn Codec, corpus: Corpus) -> Row {
    let pages = corpus_pages(corpus);
    let compressed: Vec<Vec<u8>> = pages
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            codec.compress(p, &mut out).unwrap();
            out
        })
        .collect();

    let compress_fresh = pages_per_sec(pages.len(), || {
        for p in &pages {
            let mut out = Vec::new();
            codec.compress(std::hint::black_box(p), &mut out).unwrap();
            std::hint::black_box(&out);
        }
    });
    let decompress_fresh = pages_per_sec(pages.len(), || {
        for c in &compressed {
            let mut out = Vec::new();
            codec.decompress(std::hint::black_box(c), &mut out).unwrap();
            std::hint::black_box(&out);
        }
    });

    let mut scratch = Scratch::new();
    let mut out = Vec::with_capacity(2 * PAGE);
    let compress_scratch = pages_per_sec(pages.len(), || {
        for p in &pages {
            out.clear();
            codec
                .compress_into(std::hint::black_box(p), &mut out, &mut scratch)
                .unwrap();
            std::hint::black_box(&out);
        }
    });
    let decompress_scratch = pages_per_sec(pages.len(), || {
        for c in &compressed {
            out.clear();
            codec
                .decompress_into(std::hint::black_box(c), &mut out, &mut scratch)
                .unwrap();
            std::hint::black_box(&out);
        }
    });

    Row {
        codec: codec.name(),
        corpus: corpus.name(),
        compress_fresh,
        compress_scratch,
        decompress_fresh,
        decompress_scratch,
    }
}

fn baseline_for(codec: &str, corpus: &str) -> Option<(f64, f64)> {
    BASELINE
        .iter()
        .find(|(c, k, _, _)| *c == codec && *k == corpus)
        .map(|&(_, _, c, d)| (c, d))
}

fn render_json(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE},");
    let _ = writeln!(s, "  \"pages_per_corpus\": {PAGES_PER_CORPUS},");
    let _ = writeln!(s, "  \"rounds\": {ROUNDS},");
    s.push_str(
        "  \"baseline_note\": \"seed implementation (per-call state, byte-loop match \
         extension), same harness and machine as 'current'\",\n",
    );
    s.push_str("  \"baseline\": [\n");
    for (i, &(codec, corpus, c, d)) in BASELINE.iter().enumerate() {
        let comma = if i + 1 < BASELINE.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"codec\": \"{codec}\", \"corpus\": \"{corpus}\", \
             \"compress_pages_per_sec\": {c:.0}, \"decompress_pages_per_sec\": {d:.0}}}{comma}"
        );
    }
    s.push_str("  ],\n  \"current\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let speedup = baseline_for(r.codec, r.corpus).map_or(String::from("null"), |(c, _)| {
            format!("{:.2}", r.compress_scratch / c)
        });
        let _ = writeln!(
            s,
            "    {{\"codec\": \"{}\", \"corpus\": \"{}\", \
             \"compress_pages_per_sec\": {:.0}, \"decompress_pages_per_sec\": {:.0}, \
             \"compress_fresh_pages_per_sec\": {:.0}, \"decompress_fresh_pages_per_sec\": {:.0}, \
             \"compress_speedup_vs_baseline\": {}}}{comma}",
            r.codec,
            r.corpus,
            r.compress_scratch,
            r.decompress_scratch,
            r.compress_fresh,
            r.decompress_fresh,
            speedup
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let corpora = [Corpus::Json, Corpus::EnglishText];
    let codecs: Vec<Box<dyn Codec>> = vec![Box::<XDeflate>::default(), Box::<Xlz>::default()];

    println!(
        "{:<12} {:<14} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "codec", "corpus", "c fresh pg/s", "c scratch", "d fresh pg/s", "d scratch", "speedup"
    );
    let mut rows = Vec::new();
    for codec in &codecs {
        for &corpus in &corpora {
            let row = measure(codec.as_ref(), corpus);
            let speedup = baseline_for(row.codec, row.corpus)
                .map_or(String::from("-"), |(c, _)| {
                    format!("{:.2}x", row.compress_scratch / c)
                });
            println!(
                "{:<12} {:<14} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>9}",
                row.codec,
                row.corpus,
                row.compress_fresh,
                row.compress_scratch,
                row.decompress_fresh,
                row.decompress_scratch,
                speedup
            );
            rows.push(row);
        }
    }

    let json = render_json(&rows);
    std::fs::write("BENCH_codec.json", &json).expect("write BENCH_codec.json");
    println!("\nwrote BENCH_codec.json");
}
