//! Measures codec throughput in pages/sec on 4 KiB corpus pages and
//! emits machine-readable `BENCH_codec.json`.
//!
//! Two paths are timed per codec/corpus: the fresh-state `compress`/
//! `decompress` API (a new internal state per page) and the scratch-
//! reusing `compress_into`/`decompress_into` hot path with a
//! pre-reserved output buffer (the zero-allocation swap path). Every
//! measured block is also round-tripped and checked byte-exact before
//! timing starts, so a silently corrupting codec fails the bench
//! instead of posting a number.
//!
//! Per codec/corpus the report also records the compression ratio, and
//! for the `auto` codec the probe's route distribution (raw/xlz/fse
//! counts read back from the self-describing tag bytes).
//!
//! The JSON report embeds the seed implementation's numbers for the
//! same workload, so the speedup is tracked in-tree; because absolute
//! pages/sec shifts with hardware, each row also carries its speedup
//! over the *same-run* xdeflate row, which is machine-independent.
//!
//! Run with `cargo run --release -p xfm-bench --bin xfm-codec-bench`.
//! Pass `--smoke` for the CI gate: reduced pages/rounds, correctness
//! checks still on, and no `BENCH_codec.json` rewrite.

use std::fmt::Write as _;
use std::time::Instant;
use xfm_compress::auto::block_route;
use xfm_compress::{AutoCodec, Codec, CodecKind, Corpus, Scratch, XDeflate, XDeflateFse, Xlz};

const PAGE: usize = 4096;

/// Seed-implementation throughput (pre scratch reuse, byte-loop match
/// extension, per-call allocations), measured with this same harness
/// (256 x 4 KiB pages, best-of-5, release) on the machine that produced
/// the `current` section. Regenerate both sections together when
/// re-benchmarking on different hardware.
const BASELINE: &[(&str, &str, f64, f64)] = &[
    ("xdeflate", "json", 5234.0, 34401.0),
    ("xdeflate", "english-text", 5714.0, 24628.0),
    ("xlz", "json", 27377.0, 155758.0),
    ("xlz", "english-text", 19501.0, 90599.0),
];

/// Benchmark dimensions; `--smoke` shrinks them for the CI gate.
#[derive(Clone, Copy)]
struct Dims {
    pages_per_corpus: usize,
    rounds: usize,
}

const FULL: Dims = Dims {
    pages_per_corpus: 256,
    rounds: 15,
};
const SMOKE: Dims = Dims {
    pages_per_corpus: 32,
    rounds: 2,
};

fn corpus_pages(corpus: Corpus, dims: Dims) -> Vec<Vec<u8>> {
    (0..dims.pages_per_corpus)
        .map(|i| corpus.generate(0x5EED_0000 + i as u64, PAGE))
        .collect()
}

/// Best-of-`rounds` pages/sec for `f` applied to every page.
fn pages_per_sec(pages: usize, rounds: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up pass.
    f();
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    pages as f64 / best
}

struct Row {
    codec: &'static str,
    corpus: &'static str,
    compress_fresh: f64,
    compress_scratch: f64,
    decompress_fresh: f64,
    decompress_scratch: f64,
    ratio: f64,
    /// `(raw, xlz, fse)` route counts for the auto codec, `None` for
    /// single-route codecs.
    routes: Option<(usize, usize, usize)>,
}

fn measure(codec: &dyn Codec, corpus: Corpus, dims: Dims) -> Row {
    let pages = corpus_pages(corpus, dims);
    let compressed: Vec<Vec<u8>> = pages
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            codec.compress(p, &mut out).unwrap();
            out
        })
        .collect();

    // Correctness gate before any timing: every block must restore its
    // page byte-exactly.
    for (p, c) in pages.iter().zip(&compressed) {
        let mut restored = Vec::new();
        codec.decompress(c, &mut restored).unwrap();
        assert_eq!(
            &restored,
            p,
            "{} corrupted a {} page",
            codec.name(),
            corpus.name()
        );
    }

    let routes = (codec.kind() == CodecKind::Auto).then(|| {
        let mut raw = 0;
        let mut xlz = 0;
        let mut fse = 0;
        for c in &compressed {
            match block_route(c) {
                Some(CodecKind::Raw) => raw += 1,
                Some(CodecKind::Xlz) => xlz += 1,
                Some(CodecKind::XDeflateFse) => fse += 1,
                other => panic!("auto block with unroutable tag: {other:?}"),
            }
        }
        (raw, xlz, fse)
    });
    let in_bytes: usize = pages.iter().map(Vec::len).sum();
    let out_bytes: usize = compressed.iter().map(Vec::len).sum();
    let ratio = in_bytes as f64 / out_bytes as f64;

    let compress_fresh = pages_per_sec(pages.len(), dims.rounds, || {
        for p in &pages {
            let mut out = Vec::new();
            codec.compress(std::hint::black_box(p), &mut out).unwrap();
            std::hint::black_box(&out);
        }
    });
    let decompress_fresh = pages_per_sec(pages.len(), dims.rounds, || {
        for c in &compressed {
            let mut out = Vec::new();
            codec.decompress(std::hint::black_box(c), &mut out).unwrap();
            std::hint::black_box(&out);
        }
    });

    let mut scratch = Scratch::new();
    let mut out = Vec::with_capacity(2 * PAGE);
    let compress_scratch = pages_per_sec(pages.len(), dims.rounds, || {
        for p in &pages {
            out.clear();
            codec
                .compress_into(std::hint::black_box(p), &mut out, &mut scratch)
                .unwrap();
            std::hint::black_box(&out);
        }
    });
    let decompress_scratch = pages_per_sec(pages.len(), dims.rounds, || {
        for c in &compressed {
            out.clear();
            codec
                .decompress_into(std::hint::black_box(c), &mut out, &mut scratch)
                .unwrap();
            std::hint::black_box(&out);
        }
    });

    Row {
        codec: codec.name(),
        corpus: corpus.name(),
        compress_fresh,
        compress_scratch,
        decompress_fresh,
        decompress_scratch,
        ratio,
        routes,
    }
}

fn baseline_for(codec: &str, corpus: &str) -> Option<(f64, f64)> {
    BASELINE
        .iter()
        .find(|(c, k, _, _)| *c == codec && *k == corpus)
        .map(|&(_, _, c, d)| (c, d))
}

/// Same-run xdeflate compress pages/sec for `corpus` (machine-neutral
/// speedup denominator).
fn xdeflate_for<'a>(rows: &'a [Row], corpus: &str) -> Option<&'a Row> {
    rows.iter()
        .find(|r| r.codec == "xdeflate" && r.corpus == corpus)
}

fn render_json(rows: &[Row], dims: Dims) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE},");
    let _ = writeln!(s, "  \"pages_per_corpus\": {},", dims.pages_per_corpus);
    let _ = writeln!(s, "  \"rounds\": {},", dims.rounds);
    s.push_str(
        "  \"baseline_note\": \"seed implementation (per-call state, byte-loop match \
         extension), same harness as 'current' but measured on the seed-era machine; \
         'compress_speedup_vs_xdeflate' compares within this run and is \
         machine-independent\",\n",
    );
    s.push_str("  \"baseline\": [\n");
    for (i, &(codec, corpus, c, d)) in BASELINE.iter().enumerate() {
        let comma = if i + 1 < BASELINE.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"codec\": \"{codec}\", \"corpus\": \"{corpus}\", \
             \"compress_pages_per_sec\": {c:.0}, \"decompress_pages_per_sec\": {d:.0}}}{comma}"
        );
    }
    s.push_str("  ],\n  \"current\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let speedup = baseline_for(r.codec, r.corpus).map_or(String::from("null"), |(c, _)| {
            format!("{:.2}", r.compress_scratch / c)
        });
        let vs_xdef = xdeflate_for(rows, r.corpus).map_or(String::from("null"), |x| {
            format!("{:.2}", r.compress_scratch / x.compress_scratch)
        });
        let routes = r.routes.map_or(String::from("null"), |(raw, xlz, fse)| {
            format!("{{\"raw\": {raw}, \"xlz\": {xlz}, \"fse\": {fse}}}")
        });
        let _ = writeln!(
            s,
            "    {{\"codec\": \"{}\", \"corpus\": \"{}\", \
             \"compress_pages_per_sec\": {:.0}, \"decompress_pages_per_sec\": {:.0}, \
             \"compress_fresh_pages_per_sec\": {:.0}, \"decompress_fresh_pages_per_sec\": {:.0}, \
             \"ratio\": {:.3}, \"codec_routes\": {}, \
             \"compress_speedup_vs_baseline\": {}, \"compress_speedup_vs_xdeflate\": {}}}{comma}",
            r.codec,
            r.corpus,
            r.compress_scratch,
            r.decompress_scratch,
            r.compress_fresh,
            r.decompress_fresh,
            r.ratio,
            routes,
            speedup,
            vs_xdef
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dims = if smoke { SMOKE } else { FULL };
    let corpora = [
        Corpus::Json,
        Corpus::EnglishText,
        Corpus::RandomBytes,
        Corpus::ZeroPage,
        Corpus::StructDump,
    ];
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::<XDeflate>::default(),
        Box::<XDeflateFse>::default(),
        Box::<Xlz>::default(),
        Box::<AutoCodec>::default(),
    ];

    println!(
        "{:<10} {:<13} {:>12} {:>12} {:>12} {:>12} {:>7} {:>8} {:>16}",
        "codec",
        "corpus",
        "c fresh",
        "c scratch",
        "d fresh",
        "d scratch",
        "ratio",
        "vs xdef",
        "routes r/x/f"
    );
    let mut rows = Vec::new();
    for codec in &codecs {
        for &corpus in &corpora {
            rows.push(measure(codec.as_ref(), corpus, dims));
        }
    }
    for row in &rows {
        let vs_xdef = xdeflate_for(&rows, row.corpus).map_or(String::from("-"), |x| {
            format!("{:.2}x", row.compress_scratch / x.compress_scratch)
        });
        let routes = row.routes.map_or(String::from("-"), |(raw, xlz, fse)| {
            format!("{raw}/{xlz}/{fse}")
        });
        println!(
            "{:<10} {:<13} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>7.3} {:>8} {:>16}",
            row.codec,
            row.corpus,
            row.compress_fresh,
            row.compress_scratch,
            row.decompress_fresh,
            row.decompress_scratch,
            row.ratio,
            vs_xdef,
            routes
        );
    }

    if smoke {
        println!("\nsmoke mode: round-trips verified on every corpus, BENCH_codec.json untouched");
    } else {
        let json = render_json(&rows, dims);
        std::fs::write("BENCH_codec.json", &json).expect("write BENCH_codec.json");
        println!("\nwrote BENCH_codec.json");
    }
}
