//! The `--metrics-out` collection pass: drives every instrumented layer
//! of the stack against one shared [`Registry`] and snapshots it.
//!
//! One run produces, on a single registry:
//!
//! - swap-path counters, latency histograms, and cause-tagged spans from
//!   an [`XfmSystem`] cold-scan → demote → fault → restore loop;
//! - per-rank refresh-window utilization gauges published by the
//!   backend's drivers;
//! - modeled DRAM access latencies from a [`MemSystem`] page drive;
//! - per-cause structural-hazard counters from the Fig. 12 fallback
//!   simulator;
//! - per-mode co-run interference gauges from the Fig. 11 engine.

use xfm_compress::Corpus;
use xfm_core::backend::XfmBackendConfig;
use xfm_core::{XfmConfig, XfmSystem};
use xfm_dram::controller::MemSystem;
use xfm_dram::{DramTimings, SystemGeometry};
use xfm_sfm::controller::ColdScanConfig;
use xfm_sim::corun::{evaluate_traced, CorunConfig, SfmMode};
use xfm_sim::fallback::{simulate_traced, FallbackConfig};
use xfm_sim::workload::JobMix;
use xfm_telemetry::{Registry, Snapshot};
use xfm_types::{Nanos, PhysAddr, Result, PAGE_SIZE};

/// Pages demoted (and re-faulted) by the swap-path exercise.
const EXERCISE_PAGES: u64 = 96;

/// Cachelines' worth of pages driven through the DRAM model.
const DRAM_PAGES: u64 = 24;

/// Exercises the full stack with telemetry attached and returns the
/// resulting snapshot. Deterministic except for wall-clock latencies.
///
/// # Errors
///
/// Propagates backend and DRAM-model errors (none occur for the built-in
/// exercise parameters).
pub fn collect(registry: &Registry) -> Result<Snapshot> {
    swap_path_exercise(registry)?;
    dram_drive(registry)?;

    // Structural-hazard telemetry from the Fig. 12 fallback simulator:
    // an overloaded point (1 access/tRFC) guarantees cause-tagged spans.
    let _ = simulate_traced(
        &FallbackConfig {
            accesses_per_trfc: 1,
            duration: Nanos::from_ms(20),
            ..FallbackConfig::default()
        },
        registry,
    );
    let _ = simulate_traced(
        &FallbackConfig {
            duration: Nanos::from_ms(20),
            ..FallbackConfig::default()
        },
        registry,
    );

    // Co-run interference gauges for every compared mode.
    let mix = JobMix::memory_sensitive_eight();
    let cfg = CorunConfig::default();
    for mode in [
        SfmMode::None,
        SfmMode::BaselineCpu,
        SfmMode::HostLockoutNma,
        SfmMode::Xfm,
    ] {
        let _ = evaluate_traced(&mix, mode, &cfg, registry);
    }

    Ok(registry.snapshot())
}

/// Cold-scan, demote, and restore a working set through an attached
/// [`XfmSystem`]: fills the swap in/out histograms, executes real NMA
/// offloads (publishing the rank-utilization gauges), and leaves
/// cold-scan plus per-page spans on the trace ring.
fn swap_path_exercise(registry: &Registry) -> Result<()> {
    let mut sys = XfmSystem::new(XfmConfig {
        scan: ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 0,
        },
        backend: XfmBackendConfig {
            // Stripe over two DIMMs so the exported snapshot carries
            // genuinely per-rank utilization gauges.
            n_dimms: 2,
            ..XfmBackendConfig::default()
        },
    });
    sys.attach_telemetry(registry);

    for p in 0..EXERCISE_PAGES {
        sys.controller_mut()
            .touch(xfm_types::PageNumber::new(p), Nanos::ZERO);
    }
    let scan_at = Nanos::from_secs(2);
    sys.advance_to(scan_at);
    let cold = sys.scan_cold(scan_at);
    for page in &cold {
        let data = Corpus::Json.generate(page.index(), PAGE_SIZE);
        sys.backend().swap_out(*page, &data)?;
    }
    // Let the refresh calendar run so offloads complete and the drivers
    // publish per-rank window-utilization gauges.
    sys.advance_to(Nanos::from_secs(3));
    for page in &cold {
        let (restored, _) = sys.backend().swap_in(*page, false)?;
        debug_assert_eq!(restored.len(), PAGE_SIZE);
    }
    sys.advance_to(Nanos::from_secs(4));
    Ok(())
}

/// Drives page-sized transfers through the cycle-accurate DRAM model and
/// records each completion's modeled latency into
/// `xfm_dram_access_latency_ns`.
fn dram_drive(registry: &Registry) -> Result<()> {
    let hist = registry.histogram("xfm_dram_access_latency_ns");
    let mut mem = MemSystem::new(
        DramTimings::paper_emulator(),
        SystemGeometry::paper_testbed(),
    );
    let mut at = Nanos::ZERO;
    for i in 0..DRAM_PAGES {
        // Stride across the address space so the drive touches several
        // banks and both row hits and misses appear in the histogram.
        let base = PhysAddr::new(i * 7 * PAGE_SIZE as u64);
        let mut last = at;
        for c in mem.access_page(base, i % 2 == 1, at)? {
            hist.record(c.latency.as_ns());
            last = last.max(c.finish);
        }
        at = last;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_meets_the_acceptance_bar() {
        let registry = Registry::new();
        let s = collect(&registry).unwrap();
        // Nonzero swap-out/swap-in latency histograms with quantiles.
        for name in ["xfm_swap_out_latency_ns", "xfm_swap_in_latency_ns"] {
            let h = &s.histograms[name];
            assert!(h.count > 0, "{name} empty");
            assert!(h.p50 > 0, "{name} p50");
            assert!(h.p99 >= h.p50, "{name} p99 < p50");
        }
        // Per-rank refresh-window utilization gauges in [0, 1].
        let utils: Vec<f64> = s
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with("xfm_refresh_window_utilization{rank="))
            .map(|(_, &v)| v)
            .collect();
        assert!(utils.len() >= 2, "expected per-rank utilization gauges");
        assert!(utils.iter().all(|u| (0.0..=1.0).contains(u)));
        // At least one traced swap span, and the DRAM model histogram.
        assert!(!s.spans.is_empty());
        assert!(s.histograms["xfm_dram_access_latency_ns"].count > 0);
        // The sim layers contributed their series too.
        assert!(s.counters["xfm_sim_nma_completed_total"] > 0);
        assert!(s
            .gauges
            .contains_key(r#"xfm_corun_mean_slowdown{mode="XFM"}"#));
    }

    #[test]
    fn snapshot_renders_to_both_formats() {
        let registry = Registry::new();
        let s = collect(&registry).unwrap();
        let json = s.to_json();
        assert!(json.contains("\"xfm_swap_outs_total\""));
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE xfm_swap_outs_total counter"));
    }
}
