//! The bench-regression sentinel: diffs freshly generated
//! `BENCH_codec.json` / `BENCH_swap.json` / `BENCH_event.json` /
//! `BENCH_faults.json` / `BENCH_prefetch.json` / `BENCH_tier.json`
//! exports against their
//! committed baselines with tolerance bands, so a perf regression fails
//! CI with a named metric instead of rotting silently in a JSON nobody
//! re-reads.
//!
//! Throughput metrics (`*_pages_per_sec`, `events_per_sec`) may drop by
//! at most [`Tolerance::throughput_drop`] relative to the baseline
//! (machines differ; the band absorbs noise while still catching
//! order-of-magnitude cliffs). Compression ratios may drop by at most
//! [`Tolerance::ratio_drop`] — ratio is machine-independent, so the band
//! is tight. Chaos-harness survival fields (`lost_pages`, fired faults)
//! are structural: no band, they are simply required.
//!
//! The comparison is row-keyed, not index-keyed: a baseline row missing
//! from the current export is itself a failure (coverage must not
//! silently shrink), while extra current rows are fine (new codecs or
//! shard counts extend the matrix).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use xfm_telemetry::json::{parse, JsonValue};

/// Allowed relative drops before a metric fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Max relative drop for throughput metrics (0.5 = may halve).
    pub throughput_drop: f64,
    /// Max relative drop for compression ratios.
    pub ratio_drop: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            throughput_drop: 0.5,
            ratio_drop: 0.10,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Which metric, e.g. `codec[auto/json].compress_pages_per_sec`.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// The floor `current` had to clear.
    pub floor: f64,
    /// Whether the metric cleared its floor.
    pub pass: bool,
}

/// The outcome of one sentinel run.
#[derive(Debug, Clone, Default)]
pub struct SentinelReport {
    /// Every compared metric, in comparison order.
    pub checks: Vec<Check>,
    /// Structural problems (missing rows, malformed values); any entry
    /// fails the report.
    pub errors: Vec<String>,
}

impl SentinelReport {
    /// Whether every check passed and no structural error occurred.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.checks.iter().all(|c| c.pass)
    }

    /// Failed checks only.
    #[must_use]
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Human-readable summary (one line per failure, plus a tally).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            let _ = writeln!(out, "ERROR: {e}");
        }
        for c in self.checks.iter().filter(|c| !c.pass) {
            let _ = writeln!(
                out,
                "FAIL: {} = {:.3} (baseline {:.3}, floor {:.3})",
                c.metric, c.current, c.baseline, c.floor
            );
        }
        let _ = writeln!(
            out,
            "{}: {} checks, {} failures, {} errors",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.len(),
            self.failures().len(),
            self.errors.len()
        );
        out
    }

    /// Records a floor check: `current >= baseline * (1 - max_drop)`.
    fn floor_check(&mut self, metric: String, baseline: f64, current: f64, max_drop: f64) {
        let floor = baseline * (1.0 - max_drop);
        self.checks.push(Check {
            metric,
            baseline,
            current,
            floor,
            pass: current >= floor,
        });
    }

    /// Records an exact-equality check (deterministic seeded fields).
    fn exact_check(&mut self, metric: String, baseline: f64, current: f64) {
        self.checks.push(Check {
            metric,
            baseline,
            current,
            floor: baseline,
            pass: (current - baseline).abs() < f64::EPSILON.max(baseline.abs() * 1e-12),
        });
    }
}

/// Parses a JSON document, mapping parse failures into a one-error
/// report message.
fn parse_doc(label: &str, text: &str, report: &mut SentinelReport) -> Option<JsonValue> {
    match parse(text) {
        Ok(v) => Some(v),
        Err(e) => {
            report.errors.push(format!("{label}: {e}"));
            None
        }
    }
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// Compares a `BENCH_codec.json` export against its baseline.
///
/// Every (codec, corpus) row of the baseline's `current` array must
/// reappear in the fresh export with `compress_pages_per_sec` /
/// `decompress_pages_per_sec` above the throughput floor and `ratio`
/// above the ratio floor.
#[must_use]
pub fn check_codec(baseline: &str, current: &str, tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_codec.json", baseline, &mut report),
        parse_doc("current BENCH_codec.json", current, &mut report),
    ) else {
        return report;
    };
    let rows = |doc: &JsonValue| -> BTreeMap<(String, String), BTreeMap<String, f64>> {
        let mut m = BTreeMap::new();
        for row in doc
            .get("current")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let (Some(codec), Some(corpus)) = (
                row.get("codec").and_then(JsonValue::as_str),
                row.get("corpus").and_then(JsonValue::as_str),
            ) else {
                continue;
            };
            let mut vals = BTreeMap::new();
            for k in [
                "compress_pages_per_sec",
                "decompress_pages_per_sec",
                "ratio",
            ] {
                if let Some(v) = num(row, k) {
                    vals.insert(k.to_string(), v);
                }
            }
            m.insert((codec.to_string(), corpus.to_string()), vals);
        }
        m
    };
    let base_rows = rows(&base);
    if base_rows.is_empty() {
        report
            .errors
            .push("baseline BENCH_codec.json has no 'current' rows".into());
        return report;
    }
    let cur_rows = rows(&cur);
    for ((codec, corpus), bvals) in &base_rows {
        let Some(cvals) = cur_rows.get(&(codec.clone(), corpus.clone())) else {
            report.errors.push(format!(
                "codec row ({codec}, {corpus}) missing from current export"
            ));
            continue;
        };
        for (k, &bv) in bvals {
            let Some(&cv) = cvals.get(k) else {
                report.errors.push(format!(
                    "codec[{codec}/{corpus}].{k} missing from current export"
                ));
                continue;
            };
            let drop = if k == "ratio" {
                tol.ratio_drop
            } else {
                tol.throughput_drop
            };
            report.floor_check(format!("codec[{codec}/{corpus}].{k}"), bv, cv, drop);
        }
    }
    report
}

/// Compares a `BENCH_swap.json` export against its baseline: the CPU
/// baseline throughput, and per-shard-count critical-path throughput
/// and scaling speedups.
#[must_use]
pub fn check_swap(baseline: &str, current: &str, tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_swap.json", baseline, &mut report),
        parse_doc("current BENCH_swap.json", current, &mut report),
    ) else {
        return report;
    };
    match (
        num(&base, "baseline_cpu_backend_pages_per_sec"),
        num(&cur, "baseline_cpu_backend_pages_per_sec"),
    ) {
        (Some(b), Some(c)) => report.floor_check(
            "swap.baseline_cpu_backend_pages_per_sec".into(),
            b,
            c,
            tol.throughput_drop,
        ),
        _ => report
            .errors
            .push("swap.baseline_cpu_backend_pages_per_sec missing".into()),
    }
    let rows = |doc: &JsonValue| -> BTreeMap<u64, (f64, f64)> {
        let mut m = BTreeMap::new();
        for row in doc
            .get("scaling")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            if let (Some(shards), Some(pps), Some(speedup)) = (
                num(row, "shards"),
                num(row, "pages_per_sec"),
                num(row, "speedup_vs_1_shard"),
            ) {
                m.insert(shards as u64, (pps, speedup));
            }
        }
        m
    };
    let base_rows = rows(&base);
    if base_rows.is_empty() {
        report
            .errors
            .push("baseline BENCH_swap.json has no 'scaling' rows".into());
        return report;
    }
    let cur_rows = rows(&cur);
    for (shards, (bpps, bspeed)) in &base_rows {
        let Some((cpps, cspeed)) = cur_rows.get(shards) else {
            report
                .errors
                .push(format!("swap scaling row for {shards} shards missing"));
            continue;
        };
        report.floor_check(
            format!("swap.scaling[{shards}].pages_per_sec"),
            *bpps,
            *cpps,
            tol.throughput_drop,
        );
        report.floor_check(
            format!("swap.scaling[{shards}].speedup_vs_1_shard"),
            *bspeed,
            *cspeed,
            tol.throughput_drop,
        );
    }
    report
}

/// Compares a `BENCH_event.json` export against its baseline: the event
/// throughput floor and the wall-time ceiling the export itself carries.
#[must_use]
pub fn check_event(baseline: &str, current: &str, tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_event.json", baseline, &mut report),
        parse_doc("current BENCH_event.json", current, &mut report),
    ) else {
        return report;
    };
    match (num(&base, "events_per_sec"), num(&cur, "events_per_sec")) {
        (Some(b), Some(c)) => {
            report.floor_check("event.events_per_sec".into(), b, c, tol.throughput_drop);
        }
        _ => report.errors.push("event.events_per_sec missing".into()),
    }
    if let (Some(wall), Some(ceiling)) =
        (num(&cur, "sim_wall_ms"), num(&cur, "sim_wall_ceiling_ms"))
    {
        report.checks.push(Check {
            metric: "event.sim_wall_ms (ceiling)".into(),
            baseline: ceiling,
            current: wall,
            floor: ceiling,
            pass: wall <= ceiling,
        });
    }
    report
}

/// Compares a `BENCH_faults.json` export against its baseline.
///
/// The chaos harness is seeded and clocked virtually, so with the same
/// plan its injection counts are deterministic: configuration and
/// survival fields must match exactly, and `lost_pages` must be zero in
/// both (the harness's own invariant, re-checked here so a tampered
/// export cannot pass).
#[must_use]
pub fn check_faults(baseline: &str, current: &str, _tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_faults.json", baseline, &mut report),
        parse_doc("current BENCH_faults.json", current, &mut report),
    ) else {
        return report;
    };
    for k in [
        "pages",
        "rounds",
        "seed",
        "total_injected",
        "store_retries",
        "corrupt_retries",
        "degrade_transitions",
        "lost_pages",
    ] {
        match (num(&base, k), num(&cur, k)) {
            (Some(b), Some(c)) => report.exact_check(format!("faults.{k}"), b, c),
            _ => report.errors.push(format!("faults.{k} missing")),
        }
    }
    for (label, doc) in [("baseline", &base), ("current", &cur)] {
        if let Some(l) = num(doc, "lost_pages") {
            if l != 0.0 {
                report
                    .errors
                    .push(format!("{label} BENCH_faults.json reports {l} lost pages"));
            }
        }
        if num(doc, "total_injected") == Some(0.0) {
            report
                .errors
                .push(format!("{label} BENCH_faults.json injected no faults"));
        }
    }
    report
}

/// Acceptance floors for the prefetch pipeline: p99 demand-fault
/// latency must drop by at least this fraction on the predictable
/// traces…
const PREFETCH_MIN_P99_REDUCTION: f64 = 0.30;
/// …at at least this speculation precision…
const PREFETCH_MIN_PRECISION: f64 = 0.60;
/// …and the autotuner must land within this factor of the best fixed
/// knob setting.
const PREFETCH_MAX_TUNE_RATIO: f64 = 1.10;

/// Compares a `BENCH_prefetch.json` export against its baseline.
///
/// The predictable traces (`scan`, `stride`, `zipf-objects`) carry
/// *absolute* acceptance floors — ≥30% p99 reduction at ≥60% precision
/// — rather than baseline-relative bands, because the claim the file
/// exists to defend is absolute. The adversarial `pointer-chase` row
/// must be present (coverage must not shrink) but has no latency floor:
/// its job is to show the engine declining to speculate. The autotuner
/// ratio is a ceiling: within 10% of the best fixed arm.
#[must_use]
pub fn check_prefetch(baseline: &str, current: &str, _tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_prefetch.json", baseline, &mut report),
        parse_doc("current BENCH_prefetch.json", current, &mut report),
    ) else {
        return report;
    };
    let rows = |doc: &JsonValue| -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut m = BTreeMap::new();
        for row in doc
            .get("traces")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let Some(name) = row.get("name").and_then(JsonValue::as_str) else {
                continue;
            };
            let mut vals = BTreeMap::new();
            for k in ["p99_reduction", "precision", "hit_rate"] {
                if let Some(v) = num(row, k) {
                    vals.insert(k.to_string(), v);
                }
            }
            m.insert(name.to_string(), vals);
        }
        m
    };
    let base_rows = rows(&base);
    if base_rows.is_empty() {
        report
            .errors
            .push("baseline BENCH_prefetch.json has no 'traces' rows".into());
        return report;
    }
    let cur_rows = rows(&cur);
    for name in base_rows.keys() {
        let Some(cvals) = cur_rows.get(name) else {
            report.errors.push(format!(
                "prefetch trace row '{name}' missing from current export"
            ));
            continue;
        };
        if !["scan", "stride", "zipf-objects"].contains(&name.as_str()) {
            continue;
        }
        for (k, floor) in [
            ("p99_reduction", PREFETCH_MIN_P99_REDUCTION),
            ("precision", PREFETCH_MIN_PRECISION),
        ] {
            let Some(&cv) = cvals.get(k) else {
                report
                    .errors
                    .push(format!("prefetch[{name}].{k} missing from current export"));
                continue;
            };
            report.checks.push(Check {
                metric: format!("prefetch[{name}].{k}"),
                baseline: base_rows[name].get(k).copied().unwrap_or(floor),
                current: cv,
                floor,
                pass: cv >= floor,
            });
        }
    }
    match cur
        .get("autotune")
        .map(|t| num(t, "ratio_vs_best_fixed"))
        .unwrap_or(None)
    {
        Some(ratio) => report.checks.push(Check {
            metric: "prefetch.autotune.ratio_vs_best_fixed (ceiling)".into(),
            baseline: PREFETCH_MAX_TUNE_RATIO,
            current: ratio,
            floor: PREFETCH_MAX_TUNE_RATIO,
            pass: ratio <= PREFETCH_MAX_TUNE_RATIO,
        }),
        None => report
            .errors
            .push("prefetch.autotune.ratio_vs_best_fixed missing".into()),
    }
    report
}

/// Wall-clock fault latencies may rise by at most this factor before
/// the tier gate fails: the modeled media charge *virtual* time, so the
/// wall rows measure decompress/memcpy cost, which is machine-dependent
/// and noisy at the nanosecond scale — the band only catches
/// order-of-magnitude cliffs (an accidental sleep or sync in the fault
/// path).
const TIER_MAX_LATENCY_RISE: f64 = 4.0;

/// Compares a `BENCH_tier.json` export against its baseline.
///
/// The tier harness is seeded and virtually clocked, so demotion and
/// promotion counts, per-tier residency after the fill, and the modeled
/// (`virtual.*`) media latencies are deterministic: they must match
/// exactly. Wall-clock per-tier fault latencies carry a generous
/// ceiling ([`TIER_MAX_LATENCY_RISE`]); degraded-replica read-back
/// throughput is floor-banded like any other throughput metric. The
/// replica section's `lost_pages` must be zero in both documents, and a
/// degraded read count of zero means the fail-over path was never
/// exercised — both are structural errors, not banded checks.
#[must_use]
pub fn check_tier(baseline: &str, current: &str, tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_tier.json", baseline, &mut report),
        parse_doc("current BENCH_tier.json", current, &mut report),
    ) else {
        return report;
    };
    for k in ["pages", "seed"] {
        match (num(&base, k), num(&cur, k)) {
            (Some(b), Some(c)) => report.exact_check(format!("tier.{k}"), b, c),
            _ => report.errors.push(format!("tier.{k} missing")),
        }
    }
    let rows = |doc: &JsonValue| -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut m = BTreeMap::new();
        for row in doc
            .get("tiers")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let Some(class) = row.get("class").and_then(JsonValue::as_str) else {
                continue;
            };
            let mut vals = BTreeMap::new();
            for k in [
                "resident_after_fill",
                "budget_pages",
                "demoted_in",
                "demoted_out",
                "promoted",
                "faults",
                "fault_p50_ns",
                "fault_p99_ns",
            ] {
                if let Some(v) = num(row, k) {
                    vals.insert(k.to_string(), v);
                }
            }
            m.insert(class.to_string(), vals);
        }
        m
    };
    let base_rows = rows(&base);
    if base_rows.is_empty() {
        report
            .errors
            .push("baseline BENCH_tier.json has no 'tiers' rows".into());
        return report;
    }
    let cur_rows = rows(&cur);
    for (class, bvals) in &base_rows {
        let Some(cvals) = cur_rows.get(class) else {
            report
                .errors
                .push(format!("tier row '{class}' missing from current export"));
            continue;
        };
        for (k, &bv) in bvals {
            let Some(&cv) = cvals.get(k) else {
                report
                    .errors
                    .push(format!("tier[{class}].{k} missing from current export"));
                continue;
            };
            if k.starts_with("fault_p") {
                // Wall-clock: ceiling only.
                let ceiling = bv * TIER_MAX_LATENCY_RISE;
                report.checks.push(Check {
                    metric: format!("tier[{class}].{k} (ceiling)"),
                    baseline: bv,
                    current: cv,
                    floor: ceiling,
                    pass: cv <= ceiling,
                });
            } else {
                report.exact_check(format!("tier[{class}].{k}"), bv, cv);
            }
        }
    }
    for (section, keys) in [
        (
            "rates",
            &["swap_outs", "demotions", "faults", "promotions"][..],
        ),
        (
            "virtual",
            &[
                "ssd_read_p50_ns",
                "ssd_read_p99_ns",
                "ssd_write_p50_ns",
                "ssd_write_p99_ns",
                "remote_read_p50_ns",
                "remote_write_p50_ns",
            ][..],
        ),
    ] {
        for k in keys {
            match (
                base.get(section).and_then(|s| num(s, k)),
                cur.get(section).and_then(|s| num(s, k)),
            ) {
                (Some(b), Some(c)) => report.exact_check(format!("tier.{section}.{k}"), b, c),
                _ => report.errors.push(format!("tier.{section}.{k} missing")),
            }
        }
    }
    match (
        base.get("replica")
            .and_then(|r| num(r, "degraded_pages_per_sec")),
        cur.get("replica")
            .and_then(|r| num(r, "degraded_pages_per_sec")),
    ) {
        (Some(b), Some(c)) => report.floor_check(
            "tier.replica.degraded_pages_per_sec".into(),
            b,
            c,
            tol.throughput_drop,
        ),
        _ => report
            .errors
            .push("tier.replica.degraded_pages_per_sec missing".into()),
    }
    for (label, doc) in [("baseline", &base), ("current", &cur)] {
        let Some(rep) = doc.get("replica") else {
            report
                .errors
                .push(format!("{label} BENCH_tier.json has no 'replica' section"));
            continue;
        };
        if let Some(l) = num(rep, "lost_pages") {
            if l != 0.0 {
                report
                    .errors
                    .push(format!("{label} BENCH_tier.json reports {l} lost pages"));
            }
        } else {
            report
                .errors
                .push(format!("{label} tier.replica.lost_pages missing"));
        }
        if num(rep, "degraded_reads") == Some(0.0) {
            report.errors.push(format!(
                "{label} BENCH_tier.json never exercised the degraded read path"
            ));
        }
    }
    report
}

/// Wall-clock per-tenant fault latencies in the serve gate may rise by
/// at most this factor: the serving path is dominated by decompression
/// plus cache bookkeeping under thread contention, which is noisy, so
/// like the tier band it only catches order-of-magnitude cliffs.
const SERVE_MAX_LATENCY_RISE: f64 = 4.0;

/// Compares a `BENCH_serve.json` export against its baseline.
///
/// The serve harness is wall-clock driven and multi-threaded, so
/// per-tenant op counts are not deterministic; the gate therefore
/// checks *invariants* and *bands* rather than exact replay:
///
/// - structural, on both documents: `lost_pages == 0`, `errors == 0`,
///   `accounting.balanced == true` — a lost page or a ledger/plane
///   disagreement fails regardless of tolerance;
/// - structural, on the current document: every baseline tenant row is
///   present with the same class, `guaranteed` tenants shed nothing,
///   and at least one `best_effort` row reports admission sheds (the
///   quota machinery must be demonstrably exercised);
/// - banded: per-tenant `fault_p50_ns`/`fault_p99_ns` carry the
///   [`SERVE_MAX_LATENCY_RISE`] ceiling, and `total_ops` is
///   floor-banded by the shared throughput tolerance.
#[must_use]
pub fn check_serve(baseline: &str, current: &str, tol: Tolerance) -> SentinelReport {
    let mut report = SentinelReport::default();
    let (Some(base), Some(cur)) = (
        parse_doc("baseline BENCH_serve.json", baseline, &mut report),
        parse_doc("current BENCH_serve.json", current, &mut report),
    ) else {
        return report;
    };
    for k in ["workers", "keys_per_tenant", "seed", "page_size"] {
        match (num(&base, k), num(&cur, k)) {
            (Some(b), Some(c)) => report.exact_check(format!("serve.{k}"), b, c),
            _ => report.errors.push(format!("serve.{k} missing")),
        }
    }
    match (num(&base, "total_ops"), num(&cur, "total_ops")) {
        (Some(b), Some(c)) => {
            report.floor_check("serve.total_ops".into(), b, c, tol.throughput_drop);
        }
        _ => report.errors.push("serve.total_ops missing".into()),
    }
    let rows = |doc: &JsonValue| -> BTreeMap<String, (String, BTreeMap<String, f64>)> {
        let mut m = BTreeMap::new();
        for row in doc
            .get("tenants")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let (Some(id), Some(class)) = (
                num(row, "tenant"),
                row.get("class").and_then(JsonValue::as_str),
            ) else {
                continue;
            };
            let mut vals = BTreeMap::new();
            for k in [
                "puts",
                "gets",
                "faults",
                "sheds",
                "fault_p50_ns",
                "fault_p99_ns",
            ] {
                if let Some(v) = num(row, k) {
                    vals.insert(k.to_string(), v);
                }
            }
            m.insert(format!("{id}"), (class.to_string(), vals));
        }
        m
    };
    let base_rows = rows(&base);
    if base_rows.is_empty() {
        report
            .errors
            .push("baseline BENCH_serve.json has no 'tenants' rows".into());
        return report;
    }
    let cur_rows = rows(&cur);
    let mut best_effort_sheds = 0.0f64;
    for (id, (bclass, bvals)) in &base_rows {
        let Some((cclass, cvals)) = cur_rows.get(id) else {
            report
                .errors
                .push(format!("serve tenant {id} missing from current export"));
            continue;
        };
        if bclass != cclass {
            report.errors.push(format!(
                "serve tenant {id} changed class: {bclass} -> {cclass}"
            ));
        }
        for k in ["fault_p50_ns", "fault_p99_ns"] {
            match (bvals.get(k), cvals.get(k)) {
                (Some(&bv), Some(&cv)) => {
                    let ceiling = bv * SERVE_MAX_LATENCY_RISE;
                    report.checks.push(Check {
                        metric: format!("serve[tenant{id}/{cclass}].{k} (ceiling)"),
                        baseline: bv,
                        current: cv,
                        floor: ceiling,
                        pass: cv <= ceiling,
                    });
                }
                _ => report.errors.push(format!("serve[tenant{id}].{k} missing")),
            }
        }
        let sheds = cvals.get("sheds").copied();
        match (cclass.as_str(), sheds) {
            ("guaranteed", Some(s)) if s != 0.0 => report.errors.push(format!(
                "serve tenant {id} is guaranteed but shed {s} writes"
            )),
            ("best_effort", Some(s)) => best_effort_sheds += s,
            (_, None) => report
                .errors
                .push(format!("serve[tenant{id}].sheds missing")),
            _ => {}
        }
        if cvals.get("faults").copied() == Some(0.0) {
            report.errors.push(format!(
                "serve tenant {id} never exercised the demand-fault path"
            ));
        }
    }
    if base_rows.values().any(|(c, _)| c == "best_effort") && best_effort_sheds == 0.0 {
        report
            .errors
            .push("serve: no best-effort admission sheds; quota machinery not exercised".into());
    }
    for (label, doc) in [("baseline", &base), ("current", &cur)] {
        match doc.get("accounting").and_then(|a| a.get("balanced")) {
            Some(JsonValue::Bool(true)) => {}
            Some(_) => report.errors.push(format!(
                "{label} BENCH_serve.json reports an accounting imbalance"
            )),
            None => report
                .errors
                .push(format!("{label} serve.accounting.balanced missing")),
        }
        let Some(integ) = doc.get("integrity") else {
            report.errors.push(format!(
                "{label} BENCH_serve.json has no 'integrity' section"
            ));
            continue;
        };
        for k in ["lost_pages", "errors"] {
            match num(integ, k) {
                Some(0.0) => {}
                Some(v) => report
                    .errors
                    .push(format!("{label} BENCH_serve.json reports {v} {k}")),
                None => report
                    .errors
                    .push(format!("{label} serve.integrity.{k} missing")),
            }
        }
        if num(integ, "checked") == Some(0.0) {
            report.errors.push(format!(
                "{label} BENCH_serve.json verified zero keys in the integrity sweep"
            ));
        }
    }
    report
}

/// Merges reports (used by the binary to fold per-file results).
#[must_use]
pub fn merge(reports: Vec<SentinelReport>) -> SentinelReport {
    let mut all = SentinelReport::default();
    for r in reports {
        all.checks.extend(r.checks);
        all.errors.extend(r.errors);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_file(name: &str) -> String {
        let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    }

    #[test]
    fn committed_codec_baseline_passes_against_itself() {
        let text = repo_file("BENCH_codec.json");
        let r = check_codec(&text, &text, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        assert!(r.checks.len() >= 20, "expected a full codec matrix");
    }

    #[test]
    fn committed_swap_and_event_baselines_pass_against_themselves() {
        let swap = repo_file("BENCH_swap.json");
        let r = check_swap(&swap, &swap, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        let event = repo_file("BENCH_event.json");
        let r = check_event(&event, &event, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn synthetic_throughput_regression_fails() {
        let base = r#"{"current": [
            {"codec": "xlz", "corpus": "json", "compress_pages_per_sec": 40000,
             "decompress_pages_per_sec": 280000, "ratio": 2.8}
        ]}"#;
        let regressed = r#"{"current": [
            {"codec": "xlz", "corpus": "json", "compress_pages_per_sec": 4000,
             "decompress_pages_per_sec": 280000, "ratio": 2.8}
        ]}"#;
        let r = check_codec(base, regressed, Tolerance::default());
        assert!(!r.passed());
        let fails = r.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].metric, "codec[xlz/json].compress_pages_per_sec");
        // A 10x drop lands far under the 50% floor.
        assert!(fails[0].current < fails[0].floor);
    }

    #[test]
    fn synthetic_ratio_regression_fails_inside_throughput_band() {
        // 20% ratio drop: within the 50% throughput band but outside
        // the 10% ratio band.
        let base = r#"{"current": [
            {"codec": "auto", "corpus": "json", "compress_pages_per_sec": 36000,
             "decompress_pages_per_sec": 56000, "ratio": 3.77}
        ]}"#;
        let regressed = r#"{"current": [
            {"codec": "auto", "corpus": "json", "compress_pages_per_sec": 36000,
             "decompress_pages_per_sec": 56000, "ratio": 3.0}
        ]}"#;
        let r = check_codec(base, regressed, Tolerance::default());
        assert!(!r.passed());
        assert_eq!(r.failures()[0].metric, "codec[auto/json].ratio");
    }

    #[test]
    fn missing_row_is_a_structural_error() {
        let base = r#"{"current": [
            {"codec": "xlz", "corpus": "json", "compress_pages_per_sec": 1.0,
             "decompress_pages_per_sec": 1.0, "ratio": 1.0},
            {"codec": "auto", "corpus": "json", "compress_pages_per_sec": 1.0,
             "decompress_pages_per_sec": 1.0, "ratio": 1.0}
        ]}"#;
        let shrunk = r#"{"current": [
            {"codec": "xlz", "corpus": "json", "compress_pages_per_sec": 1.0,
             "decompress_pages_per_sec": 1.0, "ratio": 1.0}
        ]}"#;
        let r = check_codec(base, shrunk, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors[0].contains("(auto, json)"));
        // Extra current rows are NOT an error (matrix may grow).
        let r = check_codec(shrunk, base, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn malformed_json_is_reported_not_panicked() {
        let r = check_swap("{not json", "{}", Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors[0].contains("baseline BENCH_swap.json"));
    }

    #[test]
    fn event_wall_ceiling_is_enforced() {
        let base =
            r#"{"events_per_sec": 1000000, "sim_wall_ms": 50, "sim_wall_ceiling_ms": 30000}"#;
        let slow =
            r#"{"events_per_sec": 900000, "sim_wall_ms": 60000, "sim_wall_ceiling_ms": 30000}"#;
        let r = check_event(base, slow, Tolerance::default());
        assert!(!r.passed());
        assert!(r
            .failures()
            .iter()
            .any(|c| c.metric.contains("sim_wall_ms")));
    }

    #[test]
    fn faults_fields_must_match_exactly_and_survive() {
        let base = r#"{"pages": 512, "rounds": 4, "seed": 12648430, "total_injected": 900,
            "store_retries": 10, "corrupt_retries": 12, "degrade_transitions": 3,
            "lost_pages": 0}"#;
        let r = check_faults(base, base, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        let drifted = base.replace("\"corrupt_retries\": 12", "\"corrupt_retries\": 13");
        let r = check_faults(base, &drifted, Tolerance::default());
        assert!(!r.passed());
        let lossy = base.replace("\"lost_pages\": 0", "\"lost_pages\": 2");
        let r = check_faults(&lossy, &lossy, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("lost pages")));
    }

    #[test]
    fn committed_prefetch_baseline_passes_against_itself() {
        let text = repo_file("BENCH_prefetch.json");
        let r = check_prefetch(&text, &text, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        // Three gated traces x two floors, plus the autotune ceiling.
        assert_eq!(r.checks.len(), 7);
    }

    #[test]
    fn prefetch_acceptance_floors_are_absolute() {
        let good = r#"{"traces": [
            {"name": "scan", "p99_reduction": 0.95, "precision": 0.99, "hit_rate": 0.99},
            {"name": "stride", "p99_reduction": 0.90, "precision": 0.98, "hit_rate": 0.99},
            {"name": "zipf-objects", "p99_reduction": 0.80, "precision": 0.97, "hit_rate": 0.99},
            {"name": "pointer-chase", "p99_reduction": 0.01, "precision": 0.1, "hit_rate": 0.0}
        ], "autotune": {"ratio_vs_best_fixed": 1.02}}"#;
        let r = check_prefetch(good, good, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        // The adversarial trace has no floor — its terrible numbers
        // must not fail the gate…
        assert!(!r.checks.iter().any(|c| c.metric.contains("pointer-chase")));
        // …but dropping the row entirely is a coverage error.
        let shrunk = good.replace(
            r#"{"name": "pointer-chase", "p99_reduction": 0.01, "precision": 0.1, "hit_rate": 0.0}"#,
            r#"{"name": "pointer-chase2", "p99_reduction": 0.01, "precision": 0.1, "hit_rate": 0.0}"#,
        );
        let r = check_prefetch(good, &shrunk, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("pointer-chase")));
        // A p99 reduction under 30% fails even if it matches baseline.
        let weak = good.replace(
            r#""name": "stride", "p99_reduction": 0.90"#,
            r#""name": "stride", "p99_reduction": 0.20"#,
        );
        let r = check_prefetch(&weak, &weak, Tolerance::default());
        assert!(!r.passed());
        assert_eq!(r.failures()[0].metric, "prefetch[stride].p99_reduction");
        // A diverged autotuner fails the ceiling.
        let wandering = good.replace("1.02", "1.35");
        let r = check_prefetch(good, &wandering, Tolerance::default());
        assert!(!r.passed());
        assert!(r.failures()[0].metric.contains("autotune"));
    }

    #[test]
    fn committed_tier_baseline_passes_against_itself() {
        let text = repo_file("BENCH_tier.json");
        let r = check_tier(&text, &text, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        // Three tier rows x eight fields, pages + seed, four rates, six
        // virtual latencies, one replica throughput floor.
        assert_eq!(r.checks.len(), 3 * 8 + 2 + 4 + 6 + 1);
    }

    #[test]
    fn committed_serve_baseline_passes_against_itself() {
        let text = repo_file("BENCH_serve.json");
        let r = check_serve(&text, &text, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        // Four config fields, the total_ops floor, and three tenant
        // rows x two latency ceilings.
        assert_eq!(r.checks.len(), 4 + 1 + 3 * 2);
    }

    #[test]
    fn serve_invariants_are_structural() {
        let good = repo_file("BENCH_serve.json");
        // A lost page must fail regardless of tolerance bands.
        let lost = good.replace("\"lost_pages\": 0", "\"lost_pages\": 3");
        let r = check_serve(&good, &lost, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("lost_pages")), "{r:?}");
        // So must an accounting imbalance...
        let imbalanced = good.replace("\"balanced\": true", "\"balanced\": false");
        let r = check_serve(&good, &imbalanced, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("imbalance")), "{r:?}");
        // ...and a guaranteed tenant shedding writes.
        let shed = good.replace(
            "\"class\": \"guaranteed\", \"puts\": 87012, \"gets\": 255646, \
             \"hits\": 170988, \"faults\": 52367, \"sheds\": 0",
            "\"class\": \"guaranteed\", \"puts\": 87012, \"gets\": 255646, \
             \"hits\": 170988, \"faults\": 52367, \"sheds\": 9",
        );
        assert_ne!(shed, good, "replacement must hit the tenant 1 row");
        let r = check_serve(&good, &shed, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("guaranteed")), "{r:?}");
    }

    #[test]
    fn tier_deterministic_fields_must_match_exactly() {
        let base = repo_file("BENCH_tier.json");
        let drifted = base.replace("\"demoted_in\": 640", "\"demoted_in\": 639");
        let r = check_tier(&base, &drifted, Tolerance::default());
        assert!(!r.passed());
        assert!(r.failures().iter().any(|c| c.metric.contains("demoted_in")));
        // Virtual media latencies are deterministic too: any drift fails.
        let drifted = base.replace("\"ssd_read_p50_ns\": 20480", "\"ssd_read_p50_ns\": 20481");
        let r = check_tier(&base, &drifted, Tolerance::default());
        assert!(!r.passed());
        assert!(r.failures()[0].metric.contains("ssd_read_p50_ns"));
    }

    #[test]
    fn tier_wall_latency_band_absorbs_noise_but_not_cliffs() {
        let base = repo_file("BENCH_tier.json");
        // Doubling a wall latency stays inside the 4x ceiling…
        let parsed = parse(&base).unwrap();
        let tiers = parsed.get("tiers").and_then(JsonValue::as_array).unwrap();
        let p50 = num(&tiers[0], "fault_p50_ns").unwrap();
        let noisy = base.replace(
            &format!("\"fault_p50_ns\": {p50}"),
            &format!("\"fault_p50_ns\": {}", p50 * 2.0),
        );
        let r = check_tier(&base, &noisy, Tolerance::default());
        assert!(r.passed(), "{}", r.render());
        // …but a 10x cliff fails the gate.
        let cliff = base.replace(
            &format!("\"fault_p50_ns\": {p50}"),
            &format!("\"fault_p50_ns\": {}", p50 * 10.0),
        );
        let r = check_tier(&base, &cliff, Tolerance::default());
        assert!(!r.passed());
        assert!(r.failures()[0].metric.contains("fault_p50_ns"));
    }

    #[test]
    fn tier_replica_invariants_are_structural() {
        let base = repo_file("BENCH_tier.json");
        let lossy = base.replace("\"lost_pages\": 0", "\"lost_pages\": 3");
        let r = check_tier(&lossy, &lossy, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("lost pages")));
        // A missing tier row shrinks coverage: structural error.
        let shrunk = base.replace("\"class\": \"ssd\"", "\"class\": \"tape\"");
        let r = check_tier(&base, &shrunk, Tolerance::default());
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("'ssd'")));
    }

    #[test]
    fn merge_folds_checks_and_errors() {
        let a = check_swap("{not json", "{}", Tolerance::default());
        let text = repo_file("BENCH_event.json");
        let b = check_event(&text, &text, Tolerance::default());
        let m = merge(vec![a, b.clone()]);
        assert!(!m.passed());
        assert_eq!(m.checks.len(), b.checks.len());
        assert!(!m.errors.is_empty());
    }
}
