//! Rendering helpers shared by the criterion benches and the
//! `xfm-repro` binary.
//!
//! Every function takes the typed rows from [`xfm_sim::figures`] and
//! renders the same series the paper's corresponding figure or table
//! reports, as plain text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod replay;
pub mod sentinel;

use xfm_sim::ablation::{
    GranularityRow, PredictorRow, PrefetchSweepRow, RandomBudgetRow, RefreshModeRow,
};
use xfm_sim::figures::{
    energy_summary, fig8_mean_savings_loss, Fig11Row, Fig12Row, Fig1Row, Fig3Row, Fig8Row,
    Table1Row, TimingSummary,
};
use xfm_sim::report::{f, pct, Table};

/// Renders Fig. 1 (bandwidth vs ranks).
#[must_use]
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    let mut t = Table::new(vec![
        "ranks",
        "CPU-SFM DDR GB/s",
        "XFM DDR GB/s",
        "XFM side-channel GB/s",
    ]);
    t.title(format!(
        "Figure 1: SFM memory bandwidth vs ranks (promotion rate {})",
        rows.first().map_or(0.0, |r| r.promotion_rate)
    ));
    for r in rows {
        t.row(vec![
            r.ranks.to_string(),
            f(r.cpu_sfm_gbps, 2),
            f(r.xfm_gbps, 2),
            f(r.xfm_side_channel_gbps, 2),
        ]);
    }
    t.render()
}

/// Renders Fig. 3 (cost and emissions over years).
#[must_use]
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    for &pr in &[0.2, 1.0] {
        let mut t = Table::new(vec![
            "years",
            "DFM-DRAM $",
            "DFM-PMem $",
            "SFM $",
            "DFM-DRAM kg",
            "DFM-PMem kg",
            "SFM kg",
        ]);
        t.title(format!(
            "Figure 3: cumulative cost/emissions @ {}% promotion",
            pr * 100.0
        ));
        for year in 0..=10 {
            let years = f64::from(year);
            let get = |kind: xfm_cost::FarMemoryKind| {
                rows.iter()
                    .find(|r| {
                        r.kind == kind
                            && (r.promotion_rate - pr).abs() < 1e-9
                            && (r.years - years).abs() < 1e-9
                    })
                    .expect("grid point")
            };
            let dram = get(xfm_cost::FarMemoryKind::DfmDram);
            let pmem = get(xfm_cost::FarMemoryKind::DfmPmem);
            let sfm = get(xfm_cost::FarMemoryKind::Sfm);
            t.row(vec![
                year.to_string(),
                f(dram.cost_usd, 0),
                f(pmem.cost_usd, 0),
                f(sfm.cost_usd, 0),
                f(dram.emissions_kg, 0),
                f(pmem.emissions_kg, 0),
                f(sfm.emissions_kg, 0),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Renders Fig. 8 (compression ratios by DIMM count).
#[must_use]
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut t = Table::new(vec![
        "corpus",
        "1-DIMM",
        "2-DIMM",
        "4-DIMM",
        "4-DIMM retention",
    ]);
    t.title("Figure 8: aligned compression ratio by channel interleave");
    for r in rows {
        t.row(vec![
            r.corpus.name().to_string(),
            f(r.ratio_1dimm, 2),
            f(r.ratio_2dimm, 2),
            f(r.ratio_4dimm, 2),
            pct(r.retention_4dimm()),
        ]);
    }
    let (loss2, loss4) = fig8_mean_savings_loss(rows);
    let mut out = t.render();
    out.push_str(&format!(
        "mean savings loss: 2-DIMM {} (paper ~5%), 4-DIMM {} (paper ~14%)\n",
        pct(loss2),
        pct(loss4)
    ));
    out
}

/// Renders Fig. 11 (co-run interference).
#[must_use]
pub fn render_fig11(rows: &[Fig11Row]) -> String {
    let mut t = Table::new(vec![
        "mix",
        "mode",
        "app slowdown (mean)",
        "app slowdown (max)",
        "SFM degradation",
        "combined score",
    ]);
    t.title("Figure 11: interference between applications and SFM operations");
    for r in rows {
        t.row(vec![
            r.mix.clone(),
            r.mode.label().to_string(),
            f(r.mean_slowdown, 3),
            f(r.max_slowdown, 3),
            pct(r.sfm_degradation),
            f(r.combined, 3),
        ]);
    }
    let mut out = t.render();
    // Combined improvement of XFM over Baseline-CPU per mix.
    let mixes: Vec<&str> = {
        let mut v: Vec<&str> = rows.iter().map(|r| r.mix.as_str()).collect();
        v.dedup();
        v
    };
    for mix in mixes {
        let get = |mode: xfm_sim::SfmMode| {
            rows.iter()
                .find(|r| r.mix == mix && r.mode == mode)
                .unwrap()
        };
        let base = get(xfm_sim::SfmMode::BaselineCpu);
        let xfm = get(xfm_sim::SfmMode::Xfm);
        out.push_str(&format!(
            "{mix}: XFM combined improvement over Baseline-CPU = {} (paper band: 5~27%)\n",
            pct(xfm.combined / base.combined - 1.0)
        ));
    }
    out
}

/// Renders Fig. 12 (CPU fallbacks vs SPM size).
#[must_use]
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let mut out = String::new();
    for acc in [1u32, 2, 3] {
        let mut t = Table::new(vec![
            "SPM MiB",
            "PR 50%: fallback",
            "PR 50%: cond/random",
            "PR 100%: fallback",
            "PR 100%: cond/random",
        ]);
        t.title(format!(
            "Figure 12: CPU fallbacks, {acc} access(es) per tRFC"
        ));
        for mib in [1u64, 2, 4, 8, 16] {
            let get = |pr: f64| {
                rows.iter()
                    .find(|r| {
                        r.accesses_per_trfc == acc
                            && (r.promotion_rate - pr).abs() < 1e-9
                            && r.spm_mib == mib
                    })
                    .expect("sweep point")
            };
            let lo = get(0.5);
            let hi = get(1.0);
            t.row(vec![
                mib.to_string(),
                pct(lo.fallback_fraction),
                format!(
                    "{}/{}",
                    pct(lo.conditional_fraction),
                    pct(lo.random_fraction)
                ),
                pct(hi.fallback_fraction),
                format!(
                    "{}/{}",
                    pct(hi.conditional_fraction),
                    pct(hi.random_fraction)
                ),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Renders Table 1.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = Table::new(vec![
        "Device",
        "#Rows/bank",
        "#Banks",
        "tRFC (ns)",
        "#Rows ref'd/tRFC",
        "#Subarrays/bank",
        "max cond. accesses",
    ]);
    t.title("Table 1: DDR5 device configuration");
    for r in rows {
        t.row(vec![
            r.device.to_string(),
            r.rows_per_bank.to_string(),
            r.banks_per_chip.to_string(),
            r.trfc_ns.to_string(),
            r.rows_per_ref.to_string(),
            r.subarrays_per_bank.to_string(),
            r.max_conditional.to_string(),
        ]);
    }
    t.render()
}

/// Renders Tables 2 and 3 plus the DRAM-mod overhead.
#[must_use]
pub fn render_tables23() -> String {
    let model = xfm_sim::figures::table2_resources();
    let totals = model.totals();
    let (lut_pct, ff_pct, bram_pct) = model.utilization_pct();
    let mut t = Table::new(vec!["Resource", "Used", "Total", "Percent"]);
    t.title("Table 2: FPGA resource utilization of XFM");
    t.row(vec![
        "LUTs".into(),
        totals.luts.to_string(),
        model.device_luts.to_string(),
        format!("{lut_pct:.2}%"),
    ]);
    t.row(vec![
        "FFs".into(),
        totals.ffs.to_string(),
        model.device_ffs.to_string(),
        format!("{ff_pct:.2}%"),
    ]);
    t.row(vec![
        "BRAM".into(),
        totals.brams.to_string(),
        model.device_brams.to_string(),
        format!("{bram_pct:.2}%"),
    ]);
    let mut out = t.render();

    let (power, dram_mod) = xfm_sim::figures::table3_power();
    let mut t3 = Table::new(vec!["Power", "Watts", "%"]);
    t3.title("Table 3: power consumption breakdown of XFM");
    t3.row(vec![
        "Dynamic".into(),
        f(power.dynamic_w, 3),
        f(power.dynamic_pct(), 0),
    ]);
    t3.row(vec![
        "Static".into(),
        f(power.static_w, 3),
        f(power.static_pct(), 0),
    ]);
    t3.row(vec!["Total".into(), f(power.total_w(), 3), "100".into()]);
    out.push('\n');
    out.push_str(&t3.render());
    out.push_str(&format!(
        "DRAM bank modifications (CACTI-style): {:.2}% area, {:.4}% power (paper: ~0.15%, ~0.002%)\n",
        dram_mod.area_pct, dram_mod.power_pct
    ));
    out
}

/// Renders the §5 timing summary.
#[must_use]
pub fn render_timing(t: &TimingSummary) -> String {
    format!(
        "Section 5 timing (DDR5-3200, 32Gb):\n\
         - first conditional 4 KiB read:   {} ns (paper: 110 ns)\n\
         - each overlapped read:           {} ns (paper: 80 ns)\n\
         - minimum offload latency:        {} ns = 2 x tREFI ({} ns)\n\
         - refresh duty cycle:             {:.2}% of all cycles\n",
        t.conditional_first_ns,
        t.conditional_next_ns,
        t.min_offload_latency_ns,
        t.trefi_ns,
        t.refresh_duty * 100.0
    )
}

/// Renders the §8 energy summary from a Fig. 12 sweep.
#[must_use]
pub fn render_energy(fig12: &[Fig12Row]) -> String {
    let e = energy_summary(fig12);
    format!(
        "Section 8 energy:\n\
         - on-DIMM path interface-energy saving: {} (paper: 69%)\n\
         - conditional-access energy saving:     {} (paper: 10.1% average)\n",
        pct(e.interface_saving),
        pct(e.conditional_saving)
    )
}

/// Renders the ablation studies.
#[must_use]
pub fn render_ablations(
    prefetch: &[PrefetchSweepRow],
    random_budget: &[RandomBudgetRow],
    granularity: &[GranularityRow],
    refresh_modes: &[RefreshModeRow],
    predictor: &[PredictorRow],
) -> String {
    let mut out = String::new();

    let mut t = Table::new(vec!["prediction accuracy", "fallbacks", "random share"]);
    t.title("Ablation A: prefetch accuracy (8 MiB SPM, 3 acc/tRFC, 100% PR)");
    for r in prefetch {
        t.row(vec![
            pct(r.accuracy),
            pct(r.fallback_fraction),
            pct(r.random_fraction),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(vec![
        "random slots/window",
        "fallbacks",
        "conditional share",
    ]);
    t.title("Ablation B: random-access budget (TRR-slot scavenging, 40% accuracy)");
    for r in random_budget {
        t.row(vec![
            r.max_random.to_string(),
            pct(r.fallback_fraction),
            pct(r.conditional_fraction),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(vec!["offload unit", "4-DIMM ratio", "savings retention"]);
    t.title("Ablation C: offload granularity (paper future work)");
    for r in granularity {
        t.row(vec![
            format!("{} KiB", r.offload_kib),
            f(r.ratio_4dimm, 2),
            pct(r.retention_4dimm),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(vec![
        "refresh mode",
        "NMA side channel GB/s",
        "host rank locked",
    ]);
    t.title("Ablation D: refresh mode as an XFM substrate");
    for r in refresh_modes {
        t.row(vec![
            r.mode.to_string(),
            f(r.side_channel_gbps, 2),
            format!("{:.2}%", r.host_rank_locked_pct),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(vec!["fault pattern", "accuracy", "precision"]);
    t.title("Ablation E: achievable stride-predictor accuracy");
    for r in predictor {
        t.row(vec![r.pattern.clone(), pct(r.accuracy), pct(r.precision)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfm_sim::figures;
    use xfm_types::Nanos;

    #[test]
    fn all_renderers_produce_output() {
        assert!(render_fig1(&figures::fig1_bandwidth(1.0)).contains("Figure 1"));
        assert!(render_fig3(&figures::fig3_cost()).contains("Figure 3"));
        let fig8 = figures::fig8_ratios(16 * 1024).unwrap();
        assert!(render_fig8(&fig8).contains("Figure 8"));
        assert!(render_fig11(&figures::fig11_interference()).contains("Figure 11"));
        let fig12 = figures::fig12_fallbacks(Nanos::from_ms(5));
        assert!(render_fig12(&fig12).contains("Figure 12"));
        assert!(render_table1(&figures::table1_devices()).contains("Table 1"));
        assert!(render_tables23().contains("Table 2"));
        assert!(render_timing(&figures::timing_summary()).contains("110 ns"));
        assert!(render_energy(&fig12).contains("69%"));
        let ab = render_ablations(
            &xfm_sim::ablation::prefetch_accuracy_sweep(Nanos::from_ms(5)),
            &xfm_sim::ablation::random_budget_sweep(Nanos::from_ms(5)),
            &xfm_sim::ablation::offload_granularity_sweep(16 * 1024).unwrap(),
            &xfm_sim::ablation::refresh_mode_compare(),
            &xfm_sim::ablation::predictor_study(500, 1),
        );
        assert!(ab.contains("Ablation A") && ab.contains("Ablation E"));
    }
}
