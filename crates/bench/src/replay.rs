//! Deterministic full-stack replay for the determinism gate.
//!
//! [`replay`] runs the Fig. 12 fallback simulation (telemetry attached),
//! a seeded out-of-order cross-channel trace through the event-front
//! [`MemSystem`], and an NMA offload pipeline, then renders the results
//! as JSON. Every exported value is **simulated time or a deterministic
//! counter** — there are no wall-clock readings — so two runs with the
//! same seed must produce byte-identical output. `ci.sh` enforces
//! exactly that, and `xfm-event-bench --replay` exposes it on the
//! command line.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xfm_compress::Corpus;
use xfm_core::nma::{NearMemoryAccelerator, NmaConfig, NmaStats};
use xfm_dram::{
    AccessSource, ChannelStats, DramTimings, MemRequest, MemSystem, RequestKind, SystemGeometry,
};
use xfm_sim::fallback::{simulate_traced, FallbackConfig, FallbackReport};
use xfm_telemetry::Registry;
use xfm_types::{Nanos, PageNumber, PhysAddr, RowId, PAGE_SIZE};

/// Seeded out-of-order cross-channel trace through the event-front
/// [`MemSystem`]: requests are generated with jittered arrival times and
/// enqueued in generation order (which is *not* arrival order), then
/// drained. Returns the merged channel statistics.
///
/// # Panics
///
/// Panics if the event front fails to deliver every request.
#[must_use]
pub fn mem_trace(seed: u64, requests: usize) -> ChannelStats {
    let geometry = SystemGeometry::skylake_4ch();
    let mut sys = MemSystem::new(DramTimings::paper_emulator(), geometry);
    let capacity = geometry.total_capacity().as_bytes();
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Nanos::from_us(1);
    for _ in 0..requests {
        // Jitter makes later-generated requests arrive earlier than
        // earlier-generated ones: the front must reorder them.
        let at = base + Nanos::from_ns(rng.gen_range(0..50_000));
        sys.enqueue(MemRequest {
            addr: PhysAddr::new((rng.gen_range(0..capacity / 64)) * 64),
            kind: if rng.gen_bool(0.5) {
                RequestKind::Write
            } else {
                RequestKind::Read
            },
            bytes: 64,
            source: if rng.gen_bool(0.25) {
                AccessSource::Nma
            } else {
                AccessSource::Cpu
            },
            at,
        });
    }
    let done = sys.drain_to(Nanos::from_ms(1)).expect("trace must drain");
    assert_eq!(done.len(), requests, "event front lost requests");
    sys.total_stats()
}

/// A seeded NMA offload scenario: compress offloads for rows aligned to
/// upcoming refresh slots, driven to completion through the overlapped
/// read → compute → write-back pipeline.
///
/// # Panics
///
/// Panics if the NMA queue rejects a submission (it is sized for the
/// workload).
#[must_use]
pub fn nma_run(seed: u64, offloads: u64) -> NmaStats {
    let mut nma = NearMemoryAccelerator::new(NmaConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let t_refi = NmaConfig::default().timings.t_refi;
    for i in 0..offloads {
        let data = Corpus::Json.generate(seed.wrapping_add(i), PAGE_SIZE);
        nma.submit_compress(
            PageNumber::new(i),
            data,
            RowId::new(rng.gen_range(1..4096)),
            Nanos::ZERO,
            true,
        )
        .expect("queue has room");
    }
    nma.advance_to(t_refi * 16_384);
    nma.stats()
}

fn json_report(r: &FallbackReport) -> String {
    format!(
        "{{\"completed\": {}, \"fallbacks\": {}, \"conditional\": {}, \"random\": {}, \
         \"spm_high_water_bytes\": {}, \"subarray_conflicts\": {}}}",
        r.completed,
        r.fallbacks,
        r.conditional_accesses,
        r.random_accesses,
        r.spm_high_water.as_bytes(),
        r.subarray_conflicts,
    )
}

fn json_mem(s: &ChannelStats) -> String {
    format!(
        "{{\"accesses\": {}, \"cpu_read\": {}, \"cpu_written\": {}, \"nma_read\": {}, \
         \"nma_written\": {}, \"mean_latency_ns\": {}, \"max_latency_ns\": {}}}",
        s.accesses(),
        s.bytes_read(AccessSource::Cpu).as_bytes(),
        s.bytes_written(AccessSource::Cpu).as_bytes(),
        s.bytes_read(AccessSource::Nma).as_bytes(),
        s.bytes_written(AccessSource::Nma).as_bytes(),
        s.mean_latency().as_ns(),
        s.max_latency().as_ns(),
    )
}

fn json_nma(s: &NmaStats) -> String {
    format!(
        "{{\"submitted\": {}, \"completed\": {}, \"fallbacks\": {}, \"rejected\": {}, \
         \"conditional\": {}, \"random\": {}, \"spilled\": {}, \"windows\": {}, \
         \"spm_high_water_bytes\": {}, \"total_latency_ns\": {}, \"ecc_parity_bytes\": {}}}",
        s.submitted,
        s.completed,
        s.fallbacks,
        s.rejected,
        s.sched.conditional,
        s.sched.random,
        s.sched.spilled,
        s.sched.windows,
        s.spm_high_water.as_bytes(),
        s.total_latency.as_ns(),
        s.ecc_parity_bytes,
    )
}

/// The deterministic full-stack replay: every exported value is a pure
/// function of `seed`. `smoke` shrinks the workload to a CI-friendly
/// size.
#[must_use]
pub fn replay(seed: u64, smoke: bool) -> String {
    let registry = Registry::new();
    let cfg = FallbackConfig {
        duration: if smoke {
            Nanos::from_ms(5)
        } else {
            Nanos::from_ms(50)
        },
        seed,
        ..FallbackConfig::default()
    };
    let report = simulate_traced(&cfg, &registry);
    let mem = mem_trace(seed, if smoke { 128 } else { 1024 });
    let nma = nma_run(seed, if smoke { 16 } else { 64 });
    let mut out = String::with_capacity(16 * 1024);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"fallback\": {},", json_report(&report));
    let _ = writeln!(out, "  \"mem\": {},", json_mem(&mem));
    let _ = writeln!(out, "  \"nma\": {},", json_nma(&nma));
    let _ = writeln!(out, "  \"telemetry\": {}", registry.snapshot().to_json());
    out.push('}');
    out
}
