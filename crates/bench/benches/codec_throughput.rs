//! Micro-benchmarks for the from-scratch codecs on 4 KiB pages (the SFM
//! datapath unit) across representative corpora.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xfm_compress::{Codec, Corpus, Scratch, XDeflate, Xlz};

fn bench(c: &mut Criterion) {
    let corpora = [
        Corpus::EnglishText,
        Corpus::Json,
        Corpus::ZeroPage,
        Corpus::RandomBytes,
    ];
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(4096));
    group.sample_size(20);
    for corpus in corpora {
        let page = corpus.generate(11, 4096);
        for (name, codec) in [
            ("xdeflate", &XDeflate::default() as &dyn Codec),
            ("xlz", &Xlz::default() as &dyn Codec),
        ] {
            group.bench_function(format!("{name}/compress/{}", corpus.name()), |b| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(4096);
                    codec.compress(black_box(&page), &mut out).unwrap();
                    out
                })
            });
            // The zero-allocation hot path: scratch state and output
            // buffer live across iterations, as in the swap daemon.
            group.bench_function(format!("{name}/compress-scratch/{}", corpus.name()), |b| {
                let mut scratch = Scratch::new();
                let mut out = Vec::with_capacity(2 * 4096);
                b.iter(|| {
                    out.clear();
                    codec
                        .compress_into(black_box(&page), &mut out, &mut scratch)
                        .unwrap();
                    black_box(out.len())
                })
            });
            let mut compressed = Vec::new();
            codec.compress(&page, &mut compressed).unwrap();
            group.bench_function(format!("{name}/decompress/{}", corpus.name()), |b| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(4096);
                    codec.decompress(black_box(&compressed), &mut out).unwrap();
                    out
                })
            });
            group.bench_function(
                format!("{name}/decompress-scratch/{}", corpus.name()),
                |b| {
                    let mut scratch = Scratch::new();
                    let mut out = Vec::with_capacity(4096);
                    b.iter(|| {
                        out.clear();
                        codec
                            .decompress_into(black_box(&compressed), &mut out, &mut scratch)
                            .unwrap();
                        black_box(out.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
