//! Regenerates Figure 12 (CPU fallbacks vs SPM size) and benchmarks the
//! window-service simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_sim::fallback::{simulate, FallbackConfig};
use xfm_types::{ByteSize, Nanos};

fn bench(c: &mut Criterion) {
    let rows = xfm_sim::figures::fig12_fallbacks(Nanos::from_ms(100));
    println!("{}", xfm_bench::render_fig12(&rows));
    println!("{}", xfm_bench::render_energy(&rows));

    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("simulate_50ms_point", |b| {
        b.iter(|| {
            simulate(black_box(&FallbackConfig {
                spm_capacity: ByteSize::from_mib(8),
                duration: Nanos::from_ms(50),
                ..FallbackConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
