//! Regenerates Tables 2-3 (FPGA resources, power) and the CACTI-style
//! DRAM-modification overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_sim::resource::{DramModOverhead, FpgaResourceModel};

fn bench(c: &mut Criterion) {
    println!("{}", xfm_bench::render_tables23());
    c.bench_function("tab02/resource_totals", |b| {
        let m = FpgaResourceModel::xfm_prototype();
        b.iter(|| black_box(&m).totals())
    });
    c.bench_function("tab02/dram_mod_overhead", |b| {
        b.iter(|| DramModOverhead::from_geometry(black_box(128), 16, 512))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
