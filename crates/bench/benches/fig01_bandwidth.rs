//! Regenerates Figure 1 (SFM bandwidth vs ranks) and benchmarks the
//! bandwidth-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        xfm_bench::render_fig1(&xfm_sim::figures::fig1_bandwidth(1.0))
    );
    c.bench_function("fig01/bandwidth_model", |b| {
        b.iter(|| xfm_sim::figures::fig1_bandwidth(black_box(1.0)))
    });
    c.bench_function("fig01/max_capacity_solver", |b| {
        b.iter(|| xfm_sim::figures::xfm_max_sfm_capacity(black_box(0.5), 8, 3, 2.5))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
