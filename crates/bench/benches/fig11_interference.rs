//! Regenerates Figure 11 (co-run interference) and benchmarks the
//! fixed-point co-run solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_sim::corun::{evaluate, CorunConfig, SfmMode};
use xfm_sim::workload::JobMix;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        xfm_bench::render_fig11(&xfm_sim::figures::fig11_interference())
    );
    let cfg = CorunConfig::default();
    let mix = JobMix::memory_sensitive_eight();
    for mode in SfmMode::compared() {
        c.bench_function(format!("fig11/evaluate_{}", mode.label()), |b| {
            b.iter(|| evaluate(black_box(&mix), mode, &cfg))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
