//! Regenerates Figure 8 (multi-channel compression ratios) and
//! benchmarks the interleaved-compression path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_compress::{interleaved_ratio, Corpus, XDeflate};

fn bench(c: &mut Criterion) {
    let rows = xfm_sim::figures::fig8_ratios(128 * 1024).expect("fig8");
    println!("{}", xfm_bench::render_fig8(&rows));

    let codec = XDeflate::default();
    let data = Corpus::EnglishText.generate(7, 64 * 1024);
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        group.bench_function(format!("interleaved_ratio_{n}dimm"), |b| {
            b.iter(|| interleaved_ratio(&codec, black_box(&data), 4096, n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
