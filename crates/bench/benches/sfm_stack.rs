//! Benchmarks the SFM software stack: zpool allocation/compaction, the
//! entry table, swap round-trips through both backends, and the trace
//! generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xfm_compress::Corpus;
use xfm_core::backend::{XfmBackend, XfmBackendConfig};
use xfm_sfm::{CpuBackend, SfmConfig, TraceConfig, TraceGenerator, Zpool};
use xfm_types::{ByteSize, Nanos, PageNumber, PAGE_SIZE};

fn bench(c: &mut Criterion) {
    // zpool: allocate/free 1000 mixed-size objects.
    c.bench_function("zpool/alloc_free_1000", |b| {
        b.iter(|| {
            let mut pool = Zpool::new(ByteSize::from_mib(4));
            let handles: Vec<_> = (0..1000usize)
                .map(|i| pool.alloc(&vec![i as u8; 64 + (i * 37) % 2048]).unwrap())
                .collect();
            for h in handles {
                pool.free(h).unwrap();
            }
        })
    });

    // zpool: steady-state store/load/free — with the arena-backed host
    // pages this is offset arithmetic plus one memcpy each way.
    c.bench_function("zpool/store_load_free", |b| {
        let mut pool = Zpool::new(ByteSize::from_mib(4));
        let obj = vec![0xa5u8; 1000];
        b.iter(|| {
            let h = pool.alloc(black_box(&obj)).unwrap();
            let len = pool.get(h).unwrap().len();
            pool.free(h).unwrap();
            len
        })
    });

    // zpool: compaction of a half-empty pool.
    c.bench_function("zpool/compact_fragmented", |b| {
        b.iter_batched(
            || {
                let mut pool = Zpool::new(ByteSize::from_mib(4));
                let handles: Vec<_> = (0..1000usize)
                    .map(|i| pool.alloc(&[i as u8; 100]).unwrap())
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    if i % 2 == 0 {
                        pool.free(h).unwrap();
                    }
                }
                pool
            },
            |mut pool| pool.compact().moved_objects,
            criterion::BatchSize::SmallInput,
        )
    });

    // Full swap round-trip through each backend.
    let mut group = c.benchmark_group("swap_round_trip");
    group.throughput(Throughput::Bytes(PAGE_SIZE as u64));
    group.sample_size(20);
    group.bench_function("cpu_backend", |b| {
        let backend = CpuBackend::new(SfmConfig::default());
        let page = Corpus::Json.generate(1, PAGE_SIZE);
        let mut i = 0u64;
        b.iter(|| {
            let pn = PageNumber::new(i);
            i += 1;
            backend.swap_out(pn, black_box(&page)).unwrap();
            backend.swap_in(pn, false).unwrap().0.len()
        })
    });
    group.bench_function("xfm_backend", |b| {
        let backend = XfmBackend::new(XfmBackendConfig::default());
        backend.advance_to(Nanos::from_ms(1));
        let page = Corpus::Json.generate(1, PAGE_SIZE);
        let mut i = 0u64;
        b.iter(|| {
            let pn = PageNumber::new(i);
            i += 1;
            backend.swap_out(pn, black_box(&page)).unwrap();
            backend.swap_in(pn, true).unwrap().0.len()
        })
    });
    group.finish();

    // Trace generation throughput.
    c.bench_function("trace/generate_1s", |b| {
        b.iter(|| {
            TraceGenerator::new(TraceConfig {
                working_set_pages: 4096,
                local_pages: 2048,
                duration: Nanos::from_secs(1),
                ..TraceConfig::default()
            })
            .generate()
            .len()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
