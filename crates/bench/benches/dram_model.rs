//! Benchmarks the DRAM substrate: address mapping, controller service
//! rate, and the NMA offload pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_core::nma::{NearMemoryAccelerator, NmaConfig};
use xfm_dram::{AddressMapping, DramTimings, MemController, MemRequest, SystemGeometry};
use xfm_types::{Nanos, PageNumber, PhysAddr, RowId};

fn bench(c: &mut Criterion) {
    let map = AddressMapping::skylake(SystemGeometry::skylake_4ch());
    c.bench_function("dram/decompose", |b| {
        b.iter(|| {
            map.decompose(black_box(PhysAddr::new(0x1234_5680)))
                .unwrap()
        })
    });
    c.bench_function("dram/page_rows", |b| {
        b.iter(|| map.page_rows(black_box(PageNumber::new(777))).unwrap())
    });
    c.bench_function("dram/controller_1k_reads", |b| {
        b.iter(|| {
            let mut ctrl =
                MemController::new(DramTimings::paper_emulator(), SystemGeometry::skylake_4ch());
            let mut at = Nanos::from_us(1);
            for i in 0..1000u64 {
                let done = ctrl
                    .submit(MemRequest::cacheline_read(PhysAddr::new(i * 64), at))
                    .unwrap();
                at = done.finish;
            }
            ctrl.stats().accesses()
        })
    });
    let mut group = c.benchmark_group("nma");
    group.sample_size(10);
    group.bench_function("offload_pipeline_8_pages", |b| {
        b.iter(|| {
            let mut nma = NearMemoryAccelerator::new(NmaConfig::default());
            let page = vec![0x42u8; 4096];
            for p in 0..8u64 {
                nma.submit_compress(
                    PageNumber::new(p),
                    page.clone(),
                    RowId::new(p as u32 * 7),
                    Nanos::ZERO,
                    true,
                )
                .unwrap();
            }
            nma.advance_to(Nanos::from_ms(64)).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
