//! Regenerates the ablation studies (prefetch accuracy, TRR random
//! budget, offload granularity, refresh mode, predictor accuracy) and
//! benchmarks their engines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_sim::ablation;
use xfm_types::Nanos;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        xfm_bench::render_ablations(
            &ablation::prefetch_accuracy_sweep(Nanos::from_ms(60)),
            &ablation::random_budget_sweep(Nanos::from_ms(60)),
            &ablation::offload_granularity_sweep(128 * 1024).expect("granularity"),
            &ablation::refresh_mode_compare(),
            &ablation::predictor_study(5000, 17),
        )
    );
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("prefetch_sweep_10ms", |b| {
        b.iter(|| ablation::prefetch_accuracy_sweep(black_box(Nanos::from_ms(10))))
    });
    group.bench_function("predictor_study", |b| {
        b.iter(|| ablation::predictor_study(black_box(2000), 17))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
