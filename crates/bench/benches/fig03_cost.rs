//! Regenerates Figure 3 (cost/emission trajectories) and benchmarks the
//! Section 3 model and its break-even solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_cost::{CostParams, FarMemoryKind, FarMemoryModel};

fn bench(c: &mut Criterion) {
    println!("{}", xfm_bench::render_fig3(&xfm_sim::figures::fig3_cost()));
    let model = FarMemoryModel::new(CostParams::paper());
    c.bench_function("fig03/cost_grid", |b| b.iter(xfm_sim::figures::fig3_cost));
    c.bench_function("fig03/breakeven_solver", |b| {
        b.iter(|| model.cost_breakeven_years(black_box(FarMemoryKind::DfmDram), 1.0))
    });
    c.bench_function("fig03/accelerator_threshold", |b| {
        b.iter(|| model.accelerator_breakeven_promotion_rate())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
