//! Regenerates Table 1 and the Section 5 timing summary; benchmarks the
//! refresh-calendar queries the scheduler leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xfm_dram::{DeviceGeometry, DramTimings, RefreshScheduler};
use xfm_types::{Nanos, RowId};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        xfm_bench::render_table1(&xfm_sim::figures::table1_devices())
    );
    println!(
        "{}",
        xfm_bench::render_timing(&xfm_sim::figures::timing_summary())
    );

    let sched = RefreshScheduler::new(DramTimings::paper_emulator(), DeviceGeometry::ddr4_8gb());
    c.bench_function("tab01/window_at", |b| {
        b.iter(|| sched.window_at(black_box(Nanos::from_ms(7))))
    });
    c.bench_function("tab01/next_window_refreshing", |b| {
        b.iter(|| sched.next_window_refreshing(black_box(RowId::new(12345)), Nanos::from_ms(3)))
    });
    c.bench_function("tab01/refreshed_rows", |b| {
        let g = DeviceGeometry::ddr5_32gb();
        b.iter(|| g.refreshed_rows(black_box(4321)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
