//! Property-based tests for the SFM stack.

use proptest::prelude::*;
use std::collections::HashMap;
use xfm_sfm::{CpuBackend, SfmConfig, Zpool};
use xfm_types::{ByteSize, PageNumber, PAGE_SIZE};

/// An operation against the zpool.
#[derive(Debug, Clone)]
enum PoolOp {
    Alloc(Vec<u8>),
    FreeNth(usize),
    Compact,
}

fn arb_pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (1usize..4096, any::<u8>())
                .prop_map(|(len, fill)| PoolOp::Alloc(vec![fill; len])),
            2 => any::<prop::sample::Index>().prop_map(|i| PoolOp::FreeNth(i.index(1 << 16))),
            1 => Just(PoolOp::Compact),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The zpool never loses or corrupts an object through any sequence
    /// of allocs, frees, and compactions, and its byte accounting always
    /// matches the live set.
    #[test]
    fn zpool_never_corrupts(ops in arb_pool_ops()) {
        let mut pool = Zpool::new(ByteSize::from_mib(2));
        let mut live: Vec<(xfm_sfm::Handle, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                PoolOp::Alloc(data) => {
                    if let Ok(h) = pool.alloc(&data) {
                        live.push((h, data));
                    }
                }
                PoolOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (h, data) = live.swap_remove(i % live.len());
                        let freed = pool.free(h).unwrap();
                        prop_assert_eq!(freed.as_bytes() as usize, data.len());
                    }
                }
                PoolOp::Compact => {
                    pool.compact();
                }
            }
            // Every live object remains intact.
            for (h, data) in &live {
                prop_assert_eq!(pool.get(*h).unwrap(), &data[..]);
            }
            let stats = pool.stats();
            let expected: u64 = live.iter().map(|(_, d)| d.len() as u64).sum();
            prop_assert_eq!(stats.stored_bytes.as_bytes(), expected);
            prop_assert_eq!(stats.objects as usize, live.len());
        }
    }

    /// Swap-out/in through the CPU backend is the identity on page data,
    /// for arbitrary page contents and orders.
    #[test]
    fn backend_round_trip(pages in prop::collection::vec(
        prop::collection::vec(any::<u8>(), PAGE_SIZE..=PAGE_SIZE), 1..12)) {
        let backend = CpuBackend::new(SfmConfig {
            region_capacity: ByteSize::from_mib(2),
            ..SfmConfig::default()
        });
        let mut expected = HashMap::new();
        for (i, page) in pages.iter().enumerate() {
            let pn = PageNumber::new(i as u64);
            if backend.swap_out(pn, page).is_ok() {
                expected.insert(pn, page.clone());
            }
        }
        for (pn, page) in expected {
            let (restored, _) = backend.swap_in(pn, false).unwrap();
            prop_assert_eq!(restored, page);
        }
    }

    /// Compaction is observation-equivalent: stats may improve but the
    /// stored set is unchanged, and host pages never increase.
    #[test]
    fn compaction_monotone(sizes in prop::collection::vec(1usize..2048, 1..40),
                           keep_mask in any::<u64>()) {
        let mut pool = Zpool::new(ByteSize::from_mib(2));
        let handles: Vec<_> = sizes
            .iter()
            .enumerate()
            .filter_map(|(i, &len)| pool.alloc(&vec![i as u8; len]).ok().map(|h| (h, i, len)))
            .collect();
        let mut kept = Vec::new();
        for (j, (h, i, len)) in handles.into_iter().enumerate() {
            if keep_mask & (1 << (j % 64)) != 0 {
                kept.push((h, i, len));
            } else {
                pool.free(h).unwrap();
            }
        }
        let before = pool.stats();
        pool.compact();
        let after = pool.stats();
        prop_assert!(after.host_pages <= before.host_pages);
        prop_assert_eq!(after.stored_bytes, before.stored_bytes);
        prop_assert_eq!(after.objects, before.objects);
        for (h, i, len) in kept {
            prop_assert_eq!(pool.get(h).unwrap(), &vec![i as u8; len][..]);
        }
    }
}
