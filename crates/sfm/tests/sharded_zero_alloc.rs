//! Zero-allocation proof for the sharded steady-state swap path.
//!
//! Extends the counting-allocator acceptance checks of
//! `crates/compress/tests/zero_alloc.rs` and
//! `crates/core/tests/telemetry_overhead.rs` to [`ShardedSfm`]: each
//! shard owns its own reusable codec scratch, compressed-output buffer,
//! table, and pool arena, so a warmed shard must serve swap traffic
//! with **zero** heap allocations per operation — telemetry attached or
//! not.
//!
//! Two phases, one test function (the allocation counter is global, so
//! this file hosts a single `#[test]`):
//!
//! 1. **Strict**: a same-filled working set (class-0 objects) with one
//!    pinned entry per shard so no shard's table, handle map, or host
//!    page ever empties; after warm-up the measured rounds must perform
//!    exactly zero allocations, with telemetry attached.
//! 2. **Parity**: real codec pages; attaching telemetry must not change
//!    the allocation count of identical rounds (the structural bound on
//!    instrumentation overhead used throughout the repo).
//!
//! The *batched* pipeline (`swap_out_batch`) is intentionally out of
//! scope: it allocates per batch (result slots, worker scratch) by
//! design and amortizes that over the batch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, PageNumber, PAGE_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SHARDS: usize = 4;
const WORKING_SET: u64 = 16;
const WARMUP_ROUNDS: usize = 4;
const MEASURED_ROUNDS: usize = 8;

fn plane() -> ShardedSfm {
    ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(8),
            ..SfmConfig::default()
        },
        scan: xfm_sfm::ColdScanConfig::default(),
        shards: SHARDS,
    })
}

/// Swaps one permanently-out entry into every shard so that no shard's
/// table, handle map, or class-0 host page ever empties during rounds
/// (emptying would free the `BTreeMap` root / host page and the next
/// round would re-allocate it).
fn pin_every_shard(sfm: &ShardedSfm) -> u64 {
    let fill = vec![0x55u8; PAGE_SIZE];
    let mut pinned = [false; SHARDS];
    let mut count = 0u64;
    let mut p = 1_000_000u64;
    while pinned.iter().any(|&done| !done) {
        let pn = PageNumber::new(p);
        let si = sfm.shard_of(pn);
        if !pinned[si] {
            sfm.swap_out(pn, &fill).unwrap();
            pinned[si] = true;
            count += 1;
        }
        p += 1;
    }
    count
}

fn measure(sfm: &ShardedSfm, pages: &[(PageNumber, Vec<u8>)]) -> u64 {
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let mut round = || {
        for (pn, data) in pages {
            sfm.swap_out(*pn, data).unwrap();
        }
        for (pn, data) in pages {
            sfm.swap_in_into(*pn, false, &mut buf).unwrap();
            assert_eq!(buf, *data);
        }
    };
    for _ in 0..WARMUP_ROUNDS {
        round();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_ROUNDS {
        round();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn sharded_steady_state_swap_path_is_allocation_free() {
    // ---- Phase 1: strict zero, telemetry attached ----
    let registry = Registry::new();
    let mut sfm = plane();
    sfm.attach_telemetry(&registry);
    let pinned = pin_every_shard(&sfm);
    // Same-filled pages: the store path exercises the shard lock, the
    // table, and the class-0 arena with no codec variance in object
    // sizes across rounds.
    let pages: Vec<(PageNumber, Vec<u8>)> = (0..WORKING_SET)
        .map(|i| (PageNumber::new(i), vec![(i % 251) as u8; PAGE_SIZE]))
        .collect();
    let strict_allocs = measure(&sfm, &pages);
    assert_eq!(
        strict_allocs, 0,
        "steady-state sharded swap path allocated {strict_allocs} times \
         over {MEASURED_ROUNDS} rounds"
    );
    // The instrumented run really did record.
    let s = registry.snapshot();
    let rounds = (WARMUP_ROUNDS + MEASURED_ROUNDS) as u64;
    assert_eq!(
        s.counters["xfm_swap_outs_total"],
        pinned + WORKING_SET * rounds
    );
    assert_eq!(s.counters["xfm_swap_ins_total"], WORKING_SET * rounds);
    assert!(!s.spans.is_empty());

    // ---- Phase 2: real codec pages, traced == plain ----
    let codec_pages: Vec<(PageNumber, Vec<u8>)> = (0..WORKING_SET)
        .map(|i| {
            (
                PageNumber::new(i),
                xfm_compress::Corpus::Json.generate(i, PAGE_SIZE),
            )
        })
        .collect();
    let plain = plane();
    let plain_allocs = measure(&plain, &codec_pages);
    let mut traced = plane();
    traced.attach_telemetry(&Registry::new());
    let traced_allocs = measure(&traced, &codec_pages);
    assert_eq!(
        traced_allocs, plain_allocs,
        "telemetry changed the sharded steady-state allocation count"
    );
}
