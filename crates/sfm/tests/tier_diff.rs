//! Differential property test: a single-DRAM-tier [`TieredPlane`] is
//! observably identical to the bare plane it wraps.
//!
//! The tier layer earns its keep only when there is somewhere to
//! demote *to*; with one unbounded tier it must be a pure pass-through.
//! For any interleaving of sequential swap-outs, batched swap-outs,
//! swap-ins (sequential and batched), and compactions, the composition
//! must return byte-identical contents, outcome-identical results,
//! error-identical verdicts (modulo the tier annotation carrying the
//! plane id), equal statistics, and — the telemetry half — emit exactly
//! the lifecycle events of the bare plane, no tier-layer chatter.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use xfm_sfm::{
    SfmConfig, ShardedSfm, ShardedSfmConfig, SwapOutcome, SwapPlane, TierSpec, TieredPlane,
};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, PageNumber, PlacementClass, PlaneId, SwapResult, PAGE_SIZE};

/// Distinct pages the ops draw from (small enough to force collisions).
const PAGES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    SwapOut(u64, u8),
    SwapOutBatch(Vec<(u64, u8)>),
    SwapIn(u64),
    SwapInBatch(Vec<u64>),
    Compact,
}

/// Deterministic page contents covering all three store paths:
/// same-filled short-circuit, codec-compressed, and raw-store reject.
fn content(page: u64, kind: u8) -> Vec<u8> {
    match kind % 3 {
        0 => vec![kind; PAGE_SIZE],
        1 => xfm_compress::Corpus::Json.generate(page * 31 + u64::from(kind), PAGE_SIZE),
        _ => xfm_compress::Corpus::RandomBytes.generate(page * 17 + u64::from(kind), PAGE_SIZE),
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..PAGES, any::<u8>()).prop_map(|(p, k)| Op::SwapOut(p, k)),
        2 => prop::collection::vec((0..PAGES, any::<u8>()), 1..8).prop_map(Op::SwapOutBatch),
        4 => (0..PAGES).prop_map(Op::SwapIn),
        2 => prop::collection::vec(0..PAGES, 1..8).prop_map(Op::SwapInBatch),
        1 => Just(Op::Compact),
    ]
}

fn plane() -> ShardedSfm {
    ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(2),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    })
}

/// Errors compare on the (site, cause, retryable) triple: the tiered
/// side legitimately adds the owning plane id, nothing else.
fn fmt_err(e: &xfm_types::SwapError) -> String {
    format!(
        "err:{:?}/{:?}/retryable={}",
        e.site(),
        e.cause(),
        e.is_retryable()
    )
}

fn fmt(r: &SwapResult<SwapOutcome>) -> String {
    match r {
        Ok(o) => format!("{o:?}"),
        Err(e) => fmt_err(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_tier_is_identity(
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        // Tiered side: one registry watching both the inner plane and
        // the tier layer itself.
        let mut inner = plane();
        let tiered_registry = Registry::new();
        inner.attach_telemetry(&tiered_registry);
        let tiered = TieredPlane::new(vec![TierSpec::new(
            Arc::new(inner),
            PlaneId::new(0),
            PlacementClass::CompressedLocal,
        )])
        .unwrap();
        tiered.attach_telemetry(&tiered_registry);

        // Reference side: the same plane, bare.
        let mut reference = plane();
        let reference_registry = Registry::new();
        reference.attach_telemetry(&reference_registry);

        for op in ops {
            match op {
                Op::SwapOut(p, k) => {
                    let data = content(p, k);
                    let a = tiered.swap_out(PageNumber::new(p), &data);
                    let b = reference.swap_out(PageNumber::new(p), &data);
                    prop_assert_eq!(fmt(&a), fmt(&b.map_err(Into::into)), "swap_out page {}", p);
                }
                Op::SwapOutBatch(items) => {
                    let batch: Vec<(PageNumber, Bytes)> = items
                        .iter()
                        .map(|&(p, k)| (PageNumber::new(p), Bytes::from(content(p, k))))
                        .collect();
                    let ar = SwapPlane::swap_out_batch(&tiered, &batch, 3).unwrap();
                    prop_assert_eq!(ar.len(), batch.len());
                    for ((pn, data), a) in batch.iter().zip(&ar) {
                        let b = reference.swap_out(*pn, data);
                        prop_assert_eq!(fmt(a), fmt(&b.map_err(Into::into)), "batch page {}", pn);
                    }
                }
                Op::SwapIn(p) => {
                    let a = tiered.swap_in(PageNumber::new(p), false);
                    let b = reference.swap_in(PageNumber::new(p), false);
                    match (a, b) {
                        (Ok((da, oa)), Ok((db, ob))) => {
                            prop_assert_eq!(da, db, "swap_in data page {}", p);
                            prop_assert_eq!(oa, ob);
                        }
                        (Err(ea), Err(eb)) => {
                            prop_assert_eq!(fmt(&Err(ea)), fmt(&Err(eb.into())));
                        }
                        (a, b) => prop_assert!(
                            false,
                            "swap_in diverged on page {p}: tiered ok={} bare ok={}",
                            a.is_ok(),
                            b.is_ok()
                        ),
                    }
                }
                Op::SwapInBatch(pages) => {
                    let pns: Vec<PageNumber> =
                        pages.iter().map(|&p| PageNumber::new(p)).collect();
                    let mut a_outs = vec![Vec::new(); pns.len()];
                    let mut b_outs = vec![Vec::new(); pns.len()];
                    let ar = tiered.swap_in_batch_into(&pns, &mut a_outs);
                    let br = SwapPlane::swap_in_batch_into(&reference, &pns, &mut b_outs);
                    prop_assert_eq!(&a_outs, &b_outs, "batch swap_in contents");
                    for ((pn, a), b) in pns.iter().zip(&ar).zip(&br) {
                        match (a, b) {
                            (Ok(oa), Ok(ob)) => prop_assert_eq!(oa, ob),
                            (Err(ea), Err(eb)) => {
                                prop_assert_eq!(
                                    fmt_err(ea),
                                    fmt_err(eb),
                                    "batch swap_in error page {}", pn
                                );
                            }
                            (a, b) => prop_assert!(
                                false,
                                "batch swap_in diverged on page {pn}: tiered ok={} bare ok={}",
                                a.is_ok(),
                                b.is_ok()
                            ),
                        }
                    }
                }
                Op::Compact => {
                    let _ = tiered.compact();
                    let _ = reference.compact_all();
                }
            }

            // Invariants after every single op.
            prop_assert_eq!(tiered.stats(), reference.stats());
            let tp = tiered.pool_stats();
            let rp = reference.pool_stats();
            prop_assert_eq!(tp, rp);
            for p in 0..PAGES {
                prop_assert_eq!(
                    tiered.contains(PageNumber::new(p)),
                    reference.contains(PageNumber::new(p)),
                    "contains diverged on page {}", p
                );
            }
        }

        // Telemetry identity: the tier layer emitted nothing of its
        // own, and the inner plane's event stream matches the bare
        // plane's exactly. Timestamps are excluded (wall time differs)
        // and events compare as a multiset — worker-pool batches land
        // their per-shard events in nondeterministic order.
        let key = |e: &xfm_telemetry::lifecycle::LifecycleEvent| {
            (e.stage.code(), e.cause.code(), e.page, e.shard, e.aux)
        };
        let mut ta: Vec<_> = tiered_registry.lifecycle().snapshot().iter().map(key).collect();
        let mut tb: Vec<_> = reference_registry.lifecycle().snapshot().iter().map(key).collect();
        prop_assert_eq!(ta.len(), tb.len(), "tier layer added lifecycle events");
        ta.sort_unstable();
        tb.sort_unstable();
        prop_assert_eq!(ta, tb, "lifecycle streams diverged");
    }
}
