//! Property tests for the learned far-memory access predictor.
//!
//! Three guarantees the prefetch plane relies on:
//!
//! 1. **Determinism** — two predictors built with the same seed and fed
//!    the same fault stream emit identical predictions and converge to
//!    identical weights (replay and the differential gate depend on it).
//! 2. **Numerical safety** — no fault stream, however adversarial, can
//!    drive a weight to NaN/infinity: the SGD step clamps and the
//!    features are bounded.
//! 3. **It earns its keep** — on constant-stride streams (the stride
//!    heuristic's home turf) the learned model's measured accuracy is
//!    at least the stride predictor's, because it needs one observed
//!    delta to lock on where the stride table needs a confidence ramp.

use proptest::prelude::*;
use xfm_sfm::{LearnedPredictor, StridePredictor};
use xfm_types::PageNumber;

/// Keep pages well inside `i64` so delta arithmetic cannot overflow —
/// matches real far-memory page numbers (2^48 pages = 1 EiB of VA).
const PAGE_CAP: u64 = 1 << 40;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn learned_same_seed_same_trajectory(
        seed in any::<u64>(),
        depth in 1u32..8,
        pages in prop::collection::vec(0..PAGE_CAP, 1..200),
    ) {
        let mut a = LearnedPredictor::new(depth, seed);
        let mut b = LearnedPredictor::new(depth, seed);
        for &p in &pages {
            let pa = a.observe(PageNumber::new(p));
            let pb = b.observe(PageNumber::new(p));
            prop_assert_eq!(pa, pb);
            prop_assert_eq!(a.last_confidence(), b.last_confidence());
        }
        prop_assert_eq!(a.weights(), b.weights());
        prop_assert_eq!(a.stats().observed, b.stats().observed);
        prop_assert_eq!(a.stats().hits, b.stats().hits);
        prop_assert_eq!(a.stats().predictions, b.stats().predictions);
    }

    #[test]
    fn learned_weights_never_leave_the_reals(
        seed in any::<u64>(),
        depth in 1u32..8,
        pages in prop::collection::vec(0..PAGE_CAP, 1..300),
    ) {
        let mut p = LearnedPredictor::new(depth, seed);
        for &page in &pages {
            let preds = p.observe(PageNumber::new(page));
            // Every emitted prediction is a real page number; the
            // confidence is a probability.
            prop_assert!(preds.len() <= depth as usize);
            let c = p.last_confidence();
            prop_assert!(c.is_finite() && (0.0..=1.0).contains(&c));
            for w in p.weights() {
                prop_assert!(w.is_finite(), "weight diverged: {:?}", p.weights());
                prop_assert!(w.abs() <= 9.0, "weight escaped clamp: {w}");
            }
        }
    }

    #[test]
    fn learned_matches_or_beats_stride_on_constant_stride(
        seed in any::<u64>(),
        start in 0u64..(1 << 30),
        stride in 1u64..32,
        n in 12usize..200,
    ) {
        let mut learned = LearnedPredictor::new(4, seed);
        let mut stride_p = StridePredictor::new(4);
        for i in 0..n as u64 {
            let page = PageNumber::new(start + i * stride);
            learned.observe(page);
            stride_p.observe(page);
        }
        let la = learned.stats().accuracy();
        let sa = stride_p.stats().accuracy();
        prop_assert!(
            la >= sa,
            "learned {la:.3} < stride {sa:.3} on stride {stride} x {n}"
        );
        // And on a long enough run it is genuinely predictive, not
        // merely tied at zero.
        if n >= 64 && stride <= 8 {
            prop_assert!(la > 0.5, "learned never locked on: {la:.3}");
        }
    }
}
