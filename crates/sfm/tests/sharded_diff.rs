//! Differential property test: the sharded concurrent data plane is
//! observably equivalent to the unsharded single-threaded path.
//!
//! For any shard count (1/2/4/8), any scan batch (0 = unlimited, or
//! rate-limited), and any interleaving of swap-outs (sequential and
//! batched), swap-ins, touches, prefetches, scans, and compactions, a
//! [`ShardedSfm`] must produce exactly the results, statistics, and
//! control-plane state of the reference pair ([`CpuBackend`] +
//! [`SfmController`]). Capacity is ample so region-full behavior (which
//! legitimately depends on per-shard packing) stays out of scope; a
//! dedicated unit test covers the global budget.

use bytes::Bytes;
use proptest::prelude::*;
use xfm_sfm::{
    ColdScanConfig, CpuBackend, SfmConfig, SfmController, ShardedSfm, ShardedSfmConfig, SwapOutcome,
};
use xfm_types::{ByteSize, Nanos, PageNumber, Result as XfmResult, PAGE_SIZE};

/// Distinct pages the ops draw from (small enough to force collisions).
const PAGES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    /// Sequential swap-out of one page with deterministic contents.
    SwapOut(u64, u8),
    /// Batched swap-out through the worker-pool pipeline.
    SwapOutBatch(Vec<(u64, u8)>),
    SwapIn(u64),
    /// Advance the clock by `dt` ms, then touch the page.
    Touch(u64, u64),
    Prefetch(u64, u64),
    Scan(u64),
    Compact,
}

/// Deterministic page contents covering all three store paths:
/// same-filled short-circuit, codec-compressed, and raw-store reject.
fn content(page: u64, kind: u8) -> Vec<u8> {
    match kind % 3 {
        0 => vec![kind; PAGE_SIZE],
        1 => xfm_compress::Corpus::Json.generate(page * 31 + u64::from(kind), PAGE_SIZE),
        _ => xfm_compress::Corpus::RandomBytes.generate(page * 17 + u64::from(kind), PAGE_SIZE),
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..PAGES, any::<u8>()).prop_map(|(p, k)| Op::SwapOut(p, k)),
        2 => prop::collection::vec((0..PAGES, any::<u8>()), 1..8).prop_map(Op::SwapOutBatch),
        4 => (0..PAGES).prop_map(Op::SwapIn),
        4 => (0..PAGES, 0u64..90_000).prop_map(|(p, dt)| Op::Touch(p, dt)),
        1 => (0..PAGES, 0u64..90_000).prop_map(|(p, dt)| Op::Prefetch(p, dt)),
        3 => (0u64..90_000).prop_map(Op::Scan),
        1 => Just(Op::Compact),
    ]
}

/// Result comparison through `Debug`: outcomes compare field-by-field,
/// errors compare by variant and payload.
fn fmt(r: &XfmResult<SwapOutcome>) -> String {
    match r {
        Ok(o) => format!("{o:?}"),
        Err(e) => format!("err:{e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_matches_unsharded(
        shards_idx in 0usize..4,
        batch_idx in 0usize..3,
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let shards = [1usize, 2, 4, 8][shards_idx];
        let scan_cfg = ColdScanConfig {
            cold_threshold: Nanos::from_secs(2),
            scan_batch: [0usize, 1, 3][batch_idx],
        };
        let sfm_cfg = SfmConfig {
            region_capacity: ByteSize::from_mib(2),
            ..SfmConfig::default()
        };
        let sharded = ShardedSfm::new(ShardedSfmConfig {
            sfm: sfm_cfg,
            scan: scan_cfg,
            shards,
        });
        let cpu = CpuBackend::new(sfm_cfg);
        let mut ctl = SfmController::new(scan_cfg);
        let mut now = Nanos::ZERO;

        for op in ops {
            match op {
                Op::SwapOut(p, k) => {
                    let data = content(p, k);
                    let a = sharded.swap_out(PageNumber::new(p), &data);
                    let b = cpu.swap_out(PageNumber::new(p), &data);
                    prop_assert_eq!(fmt(&a), fmt(&b), "swap_out page {}", p);
                }
                Op::SwapOutBatch(items) => {
                    let batch: Vec<(PageNumber, Bytes)> = items
                        .iter()
                        .map(|&(p, k)| (PageNumber::new(p), Bytes::from(content(p, k))))
                        .collect();
                    let results = sharded.swap_out_batch(&batch, 3).unwrap();
                    prop_assert_eq!(results.len(), batch.len());
                    for ((pn, data), ar) in batch.iter().zip(&results) {
                        let br = cpu.swap_out(*pn, data);
                        prop_assert_eq!(fmt(ar), fmt(&br), "batch page {}", pn);
                    }
                }
                Op::SwapIn(p) => {
                    let a = sharded.swap_in(PageNumber::new(p), false);
                    let b = cpu.swap_in(PageNumber::new(p), false);
                    match (a, b) {
                        (Ok((da, oa)), Ok((db, ob))) => {
                            prop_assert_eq!(da, db, "swap_in data page {}", p);
                            prop_assert_eq!(oa, ob);
                        }
                        (Err(ea), Err(eb)) => {
                            prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
                        }
                        (a, b) => prop_assert!(
                            false,
                            "swap_in diverged on page {p}: sharded ok={} cpu ok={}",
                            a.is_ok(),
                            b.is_ok()
                        ),
                    }
                }
                Op::Touch(p, dt) => {
                    now += Nanos::from_ms(dt);
                    prop_assert_eq!(
                        sharded.touch(PageNumber::new(p), now),
                        ctl.touch(PageNumber::new(p), now)
                    );
                }
                Op::Prefetch(p, dt) => {
                    now += Nanos::from_ms(dt);
                    prop_assert_eq!(
                        sharded.prefetch(PageNumber::new(p), now),
                        ctl.prefetch(PageNumber::new(p), now)
                    );
                }
                Op::Scan(dt) => {
                    now += Nanos::from_ms(dt);
                    // Same pages, same (oldest-first) order, same batching.
                    prop_assert_eq!(sharded.scan(now), ctl.scan(now));
                }
                Op::Compact => {
                    // Moved bytes legitimately depend on per-shard packing;
                    // only the observable state below must stay equal.
                    let _ = sharded.compact_all();
                    let _ = cpu.compact();
                }
            }

            // Invariants after every single op.
            prop_assert_eq!(sharded.stats(), cpu.stats());
            prop_assert_eq!(sharded.far_pages(), ctl.far_pages());
            prop_assert_eq!(sharded.resident_pages(), ctl.resident_pages());
            prop_assert_eq!(sharded.promotion_stats(), ctl.promotion_stats());
            let ps = sharded.pool_stats();
            let cs = cpu.pool_stats();
            prop_assert_eq!(ps.stored_bytes, cs.stored_bytes);
            prop_assert_eq!(ps.objects, cs.objects);
            if shards == 1 {
                // A single shard is bit-for-bit the unsharded pool.
                prop_assert_eq!(ps, cs);
            }
        }
    }
}
