//! Zero-allocation proof for the *context-carrying* steady-state swap
//! path.
//!
//! The tenant refactor threads an [`xfm_types::OpContext`] through
//! every swap operation and bills per-tenant counters on each op. The
//! context itself is `Copy` (three words), and the per-tenant telemetry
//! series are registered lazily on a tenant's **first** touch and cached
//! — so after warm-up, `swap_out_ctx`/`swap_in_into_ctx` for a
//! non-system tenant must perform exactly zero heap allocations per
//! operation, telemetry attached: threading identity through the hot
//! path costs registers and one map lookup, never an allocation.
//!
//! Structure mirrors `sharded_zero_alloc.rs` (one `#[test]`, because
//! the allocation counter is process-global): a strict phase with
//! telemetry attached and per-tenant counters verified, then a parity
//! phase proving the ctx surface allocates exactly as much as the
//! context-free surface on real codec pages — i.e. zero overhead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xfm_sfm::{SfmConfig, ShardedSfm, ShardedSfmConfig, SwapPlane};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, OpContext, PageNumber, TenantId, PAGE_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SHARDS: usize = 4;
const WORKING_SET: u64 = 16;
const WARMUP_ROUNDS: usize = 4;
const MEASURED_ROUNDS: usize = 8;
const TENANT: TenantId = TenantId::new(7);

fn plane() -> ShardedSfm {
    ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(8),
            ..SfmConfig::default()
        },
        scan: xfm_sfm::ColdScanConfig::default(),
        shards: SHARDS,
    })
}

/// Swaps one permanently-out entry per shard (billed to the measured
/// tenant, so its telemetry series exists before measurement) so no
/// shard's table, handle map, or class-0 host page empties mid-round.
fn pin_every_shard(sfm: &ShardedSfm) -> u64 {
    let ctx = OpContext::for_tenant(TENANT);
    let fill = vec![0x55u8; PAGE_SIZE];
    let mut pinned = [false; SHARDS];
    let mut count = 0u64;
    let mut p = 1_000_000u64;
    while pinned.iter().any(|&done| !done) {
        let pn = PageNumber::new(p);
        let si = sfm.shard_of(pn);
        if !pinned[si] {
            sfm.swap_out_ctx(&ctx, pn, &fill).unwrap();
            pinned[si] = true;
            count += 1;
        }
        p += 1;
    }
    count
}

/// Rounds of ctx swap-out / ctx swap-in over a fixed working set,
/// returning the allocations of the measured rounds.
fn measure_ctx(sfm: &ShardedSfm, pages: &[(PageNumber, Vec<u8>)]) -> u64 {
    let ctx = OpContext::for_tenant(TENANT);
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let mut round = || {
        for (pn, data) in pages {
            sfm.swap_out_ctx(&ctx, *pn, data).unwrap();
        }
        for (pn, data) in pages {
            sfm.swap_in_into_ctx(&ctx, *pn, false, &mut buf).unwrap();
            assert_eq!(buf, *data);
        }
    };
    for _ in 0..WARMUP_ROUNDS {
        round();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_ROUNDS {
        round();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Same rounds through the context-free surface (system tenant).
fn measure_plain(sfm: &ShardedSfm, pages: &[(PageNumber, Vec<u8>)]) -> u64 {
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    let mut round = || {
        for (pn, data) in pages {
            sfm.swap_out(*pn, data).unwrap();
        }
        for (pn, data) in pages {
            sfm.swap_in_into(*pn, false, &mut buf).unwrap();
            assert_eq!(buf, *data);
        }
    };
    for _ in 0..WARMUP_ROUNDS {
        round();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_ROUNDS {
        round();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn ctx_steady_state_swap_path_is_allocation_free() {
    // ---- Phase 1: strict zero, telemetry + per-tenant series live ----
    let registry = Registry::new();
    let mut sfm = plane();
    sfm.attach_telemetry(&registry);
    let pinned = pin_every_shard(&sfm);
    let pages: Vec<(PageNumber, Vec<u8>)> = (0..WORKING_SET)
        .map(|i| (PageNumber::new(i), vec![(i % 251) as u8; PAGE_SIZE]))
        .collect();
    let strict_allocs = measure_ctx(&sfm, &pages);
    assert_eq!(
        strict_allocs, 0,
        "steady-state ctx swap path allocated {strict_allocs} times \
         over {MEASURED_ROUNDS} rounds"
    );
    // The per-tenant series really recorded every billed operation.
    let s = registry.snapshot();
    let rounds = (WARMUP_ROUNDS + MEASURED_ROUNDS) as u64;
    assert_eq!(
        s.counters[&format!(
            "xfm_tenant_swap_outs_total{{tenant=\"{}\"}}",
            TENANT.as_u16()
        )],
        pinned + WORKING_SET * rounds
    );
    assert_eq!(
        s.counters[&format!(
            "xfm_tenant_swap_ins_total{{tenant=\"{}\"}}",
            TENANT.as_u16()
        )],
        WORKING_SET * rounds
    );

    // ---- Phase 2: ctx surface == context-free surface, real codec ----
    let codec_pages: Vec<(PageNumber, Vec<u8>)> = (0..WORKING_SET)
        .map(|i| {
            (
                PageNumber::new(i),
                xfm_compress::Corpus::Json.generate(i, PAGE_SIZE),
            )
        })
        .collect();
    let mut plain = plane();
    plain.attach_telemetry(&Registry::new());
    let plain_allocs = measure_plain(&plain, &codec_pages);
    let mut ctxed = plane();
    ctxed.attach_telemetry(&Registry::new());
    let ctx_allocs = measure_ctx(&ctxed, &codec_pages);
    assert_eq!(
        ctx_allocs, plain_allocs,
        "carrying an OpContext changed the steady-state allocation count"
    );
}
