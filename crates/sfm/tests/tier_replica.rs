//! Replica-loss property test: a [`ReplicatedPlane`] never loses a
//! page while at least one replica survives.
//!
//! For any write set, any single replica killed at any point (before
//! or after writes), and any bounded storm of injected replica-drop
//! faults, every stored page must read back byte-exact, repairs must
//! restore two-copy redundancy, and a full-tier composition must keep
//! serving faults through the degraded remote tier.

use std::sync::Arc;

use proptest::prelude::*;
use xfm_event::ClockMirror;
use xfm_faults::{FaultInjector, FaultPlan, FaultSite, SiteSpec};
use xfm_sfm::{MediaModel, ReplicatedPlane, SwapPlane};
use xfm_types::{PageNumber, PAGE_SIZE};

/// Deterministic per-page contents.
fn content(page: u64, salt: u64) -> Vec<u8> {
    xfm_compress::Corpus::Json.generate(page.wrapping_mul(2654435761) ^ salt, PAGE_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Write under a bounded replica-drop storm, run anti-entropy,
    /// then kill either replica: every page reads back byte-exact off
    /// the survivor — the "zero lost pages" guarantee.
    #[test]
    fn replica_loss_round_trip(
        raw_pages in prop::collection::vec(0u64..64, 1..32),
        kill_idx in 0usize..2,
        drop_raw in 0u8..154,
        seed in any::<u64>(),
    ) {
        let drop_prob = f64::from(drop_raw) / 255.0;
        let plan = FaultPlan::new(seed).with_site(
            FaultSite::ReplicaLoss,
            SiteSpec::with_probability(drop_prob).max_fires(8),
        );
        let mut plane = ReplicatedPlane::new(
            "remote",
            MediaModel::remote(),
            0,
            ClockMirror::new(),
        );
        plane.attach_faults(Arc::new(FaultInjector::new(&plan)));

        let pages: Vec<u64> = {
            let mut v = raw_pages;
            v.sort_unstable();
            v.dedup();
            v
        };
        for &p in &pages {
            // Dropped secondary writes are tolerated: at least one
            // replica always has the page.
            plane.swap_out(PageNumber::new(p), &content(p, seed)).unwrap();
        }
        // Anti-entropy restores two-copy redundancy...
        plane.scrub();
        // ...so losing either replica afterwards loses nothing.
        plane.kill(kill_idx);

        let mut out = Vec::new();
        for &p in &pages {
            plane
                .swap_in_into(PageNumber::new(p), true, &mut out)
                .unwrap_or_else(|e| panic!("page {p} lost with one replica down: {e}"));
            prop_assert_eq!(&out, &content(p, seed), "page {} corrupted", p);
        }

        // The consuming reads drained the survivor completely.
        prop_assert!(plane.replica(1 - kill_idx).is_empty());
    }

    /// With both replicas up but writes randomly dropped on one side,
    /// scrub restores full two-copy redundancy.
    #[test]
    fn scrub_restores_redundancy(
        raw_pages in prop::collection::vec(0u64..64, 1..32),
        drop_raw in 26u8..230,
        seed in any::<u64>(),
    ) {
        let drop_prob = f64::from(drop_raw) / 255.0;
        let plan = FaultPlan::new(seed).with_site(
            FaultSite::ReplicaLoss,
            SiteSpec::with_probability(drop_prob).max_fires(16),
        );
        let mut plane = ReplicatedPlane::new(
            "remote",
            MediaModel::remote(),
            0,
            ClockMirror::new(),
        );
        plane.attach_faults(Arc::new(FaultInjector::new(&plan)));

        let pages: Vec<u64> = {
            let mut v = raw_pages;
            v.sort_unstable();
            v.dedup();
            v
        };
        for &p in &pages {
            plane.swap_out(PageNumber::new(p), &content(p, seed)).unwrap();
        }
        let dropped = plane.dropped_writes();
        let repaired = plane.scrub();
        prop_assert_eq!(repaired, dropped, "scrub must repair every dropped write");
        prop_assert_eq!(plane.replica(0).len(), plane.replica(1).len());
        // And the data plane still serves everything byte-exact.
        let mut out = Vec::new();
        for &p in &pages {
            plane.swap_in_into(PageNumber::new(p), true, &mut out).unwrap();
            prop_assert_eq!(&out, &content(p, seed), "page {} corrupted", p);
        }
    }
}
