//! Differential property test: the prefetch engine is observably
//! equivalent to the plane it wraps.
//!
//! For any predictor, any staging capacity (including tiny, to force
//! back-pressure), any stale write-back cadence, and any interleaving
//! of swap-outs, swap-ins, and pumps, a [`PrefetchEngine`] must return
//! exactly the page contents, outcomes, and error variants of an
//! un-prefetched [`ShardedSfm`] fed the same operations. Speculation
//! may only move *when* a page is decompressed — never what a fault
//! observes. After draining the staging cache, the compressed pools
//! must also agree on stored bytes and object count (a written-back
//! page re-compresses to exactly what it was).

use std::sync::Arc;

use proptest::prelude::*;
use xfm_sfm::{
    PredictorKind, PrefetchConfig, PrefetchEngine, SfmConfig, ShardedSfm, ShardedSfmConfig,
    SwapOutcome,
};
use xfm_types::{ByteSize, Error, PageNumber, Result as XfmResult, PAGE_SIZE};

/// Distinct pages the ops draw from (small enough to force collisions
/// and give the predictor real streams to chew on).
const PAGES: u64 = 32;

#[derive(Debug, Clone)]
enum Op {
    SwapOut(u64, u8),
    SwapIn(u64),
    /// Run one prefetcher step.
    Pump,
}

/// Deterministic page contents covering all three store paths:
/// same-filled short-circuit, codec-compressed, and raw-store reject.
fn content(page: u64, kind: u8) -> Vec<u8> {
    match kind % 3 {
        0 => vec![kind; PAGE_SIZE],
        1 => xfm_compress::Corpus::Json.generate(page * 31 + u64::from(kind), PAGE_SIZE),
        _ => xfm_compress::Corpus::RandomBytes.generate(page * 17 + u64::from(kind), PAGE_SIZE),
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..PAGES, any::<u8>()).prop_map(|(p, k)| Op::SwapOut(p, k)),
        5 => (0..PAGES).prop_map(Op::SwapIn),
        2 => Just(Op::Pump),
    ]
}

fn fmt(r: &XfmResult<SwapOutcome>) -> String {
    match r {
        Ok(o) => format!("{o:?}"),
        Err(e) => format!("err:{e:?}"),
    }
}

fn plane() -> ShardedSfm {
    ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(4),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefetching_never_changes_observable_contents(
        predictor_idx in 0usize..3,
        capacity_idx in 0usize..3,
        stale_idx in 0usize..3,
        auto_pump in any::<bool>(),
        seed in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let config = PrefetchConfig {
            predictor: [PredictorKind::Stride, PredictorKind::Learned, PredictorKind::Hybrid][predictor_idx],
            seed,
            depth: 4,
            staging_capacity: [2usize, 8, 64][capacity_idx],
            stale_after_pumps: [0u64, 1, 3][stale_idx],
            auto_pump,
            ..PrefetchConfig::default()
        };
        let engine = PrefetchEngine::new(Arc::new(plane()), config);
        let reference = plane();

        for op in ops {
            match op {
                Op::SwapOut(p, k) => {
                    let data = content(p, k);
                    // Collapse the engine's `SwapError` to its cause so the
                    // two sides debug-format identically.
                    let a = engine.swap_out(PageNumber::new(p), &data).map_err(Error::from);
                    let b = reference.swap_out(PageNumber::new(p), &data);
                    prop_assert_eq!(fmt(&a), fmt(&b), "swap_out page {}", p);
                }
                Op::SwapIn(p) => {
                    let a = engine.swap_in(PageNumber::new(p), false).map_err(Error::from);
                    let b = reference.swap_in(PageNumber::new(p), false);
                    match (a, b) {
                        (Ok((da, oa)), Ok((db, ob))) => {
                            prop_assert_eq!(da, db, "swap_in contents page {}", p);
                            // A staged hit replays the outcome captured at
                            // speculation time; it must match the demand
                            // decompress bit-for-bit.
                            prop_assert_eq!(oa, ob, "swap_in outcome page {}", p);
                        }
                        (Err(ea), Err(eb)) => {
                            prop_assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
                        }
                        (a, b) => prop_assert!(
                            false,
                            "swap_in diverged on page {p}: prefetch ok={} reference ok={}",
                            a.is_ok(),
                            b.is_ok()
                        ),
                    }
                }
                Op::Pump => {
                    let _ = engine.pump();
                }
            }

            // Membership must agree after every op: a staged page is
            // still "in the SFM" from the application's point of view.
            for p in 0..PAGES {
                prop_assert_eq!(
                    engine.contains(PageNumber::new(p)),
                    reference.contains(PageNumber::new(p)),
                    "contains diverged on page {}", p
                );
            }
        }

        // Drain speculation; the compressed pools must then agree.
        engine.flush_staging().unwrap();
        let ep = engine.inner().pool_stats();
        let rp = reference.pool_stats();
        prop_assert_eq!(ep.stored_bytes, rp.stored_bytes, "stored bytes after flush");
        prop_assert_eq!(ep.objects, rp.objects, "object count after flush");
        // And every remaining page faults to identical contents.
        for p in 0..PAGES {
            let a = engine.swap_in(PageNumber::new(p), false);
            let b = reference.swap_in(PageNumber::new(p), false);
            match (a, b) {
                (Ok((da, _)), Ok((db, _))) => prop_assert_eq!(da, db, "final page {}", p),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "final drain diverged on page {p}: prefetch ok={} reference ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}
