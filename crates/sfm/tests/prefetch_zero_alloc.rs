//! Zero-allocation proof for the staging-cache hit path.
//!
//! Extends `crates/sfm/tests/sharded_zero_alloc.rs` to the prefetch
//! plane: once the predictor has locked onto a stream and the pump has
//! staged the pages ahead of it, a demand fault that hits staging must
//! be a pure memcpy — no heap allocations, telemetry attached. The
//! staged buffer recycles into the engine's free list (pre-sized to the
//! staging capacity), the observation ring is a fixed-capacity
//! `VecDeque`, and the caller's output buffer is reused, so the
//! steady-state hit costs zero allocator calls.
//!
//! The *pump* path (prediction, batch issue) is intentionally out of
//! scope: it allocates per batch by design and runs off the fault path,
//! exactly like `swap_out_batch` in the sharded gate.
//!
//! The allocation counter is global, so this file hosts a single
//! `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xfm_sfm::{
    PredictorKind, PrefetchConfig, PrefetchEngine, SfmConfig, ShardedSfm, ShardedSfmConfig,
};
use xfm_telemetry::Registry;
use xfm_types::{ByteSize, PageNumber, PAGE_SIZE};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Sequential pages swapped out up front.
const TOTAL_PAGES: u64 = 256;
/// Faults served (with pumps) before the measured window.
const WARMUP_FAULTS: u64 = 64;
/// Staging-hit faults measured for allocations.
const MEASURED_HITS: u64 = 6;

fn engine(registry: &Registry) -> PrefetchEngine {
    let mut inner = ShardedSfm::new(ShardedSfmConfig {
        sfm: SfmConfig {
            region_capacity: ByteSize::from_mib(8),
            ..SfmConfig::default()
        },
        ..ShardedSfmConfig::default()
    });
    inner.attach_telemetry(registry);
    let mut e = PrefetchEngine::new(
        Arc::new(inner),
        PrefetchConfig {
            predictor: PredictorKind::Stride,
            depth: 8,
            staging_capacity: 64,
            auto_pump: false,
            ..PrefetchConfig::default()
        },
    );
    e.attach_telemetry(registry);
    e
}

#[test]
fn staging_cache_hit_path_is_allocation_free() {
    let registry = Registry::new();
    let e = engine(&registry);

    // Same-filled working set: round-trips are deterministic and the
    // speculative issue path stays on the class-0 arena.
    for p in 0..TOTAL_PAGES {
        e.swap_out(PageNumber::new(p), &vec![(p % 251) as u8; PAGE_SIZE])
            .unwrap();
    }

    // Warm up: a sequential fault stream with a pump after each fault.
    // The stride predictor locks on after a few faults and the pump
    // keeps staging ~depth pages ahead of the stream.
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    for p in 0..WARMUP_FAULTS {
        e.swap_in_into(PageNumber::new(p), false, &mut buf).unwrap();
        e.pump();
    }
    assert!(
        e.staged_pages() as u64 >= MEASURED_HITS,
        "warmup staged only {} pages",
        e.staged_pages()
    );
    let hits_before = registry.counter("xfm_prefetch_hits_total").get();

    // Measured window: the next faults in the stream are already
    // staged. No pumps — every swap-in below must be a staging hit
    // served without touching the allocator.
    let before = ALLOCS.load(Ordering::Relaxed);
    for p in WARMUP_FAULTS..WARMUP_FAULTS + MEASURED_HITS {
        e.swap_in_into(PageNumber::new(p), false, &mut buf).unwrap();
        assert_eq!(buf[0], (p % 251) as u8);
        assert_eq!(buf.len(), PAGE_SIZE);
    }
    let hit_allocs = ALLOCS.load(Ordering::Relaxed) - before;

    // Prove the window really exercised the hit path, then the bound.
    let hits_after = registry.counter("xfm_prefetch_hits_total").get();
    assert_eq!(
        hits_after - hits_before,
        MEASURED_HITS,
        "measured window was not hit-only"
    );
    assert_eq!(
        hit_allocs, 0,
        "staging-cache hit path allocated {hit_allocs} times over {MEASURED_HITS} faults"
    );
}
