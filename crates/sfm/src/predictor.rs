//! Far-memory access prediction.
//!
//! The paper's conclusion notes that "the benefits of XFM can be
//! increased by improving the far memory controller's proficiency at
//! predicting application memory access patterns": a predicted swap-in
//! can be issued as a *prefetch* (`do_offload = true`) and ride the
//! refresh side channel, while an unpredicted one stalls the
//! application on the CPU path.
//!
//! [`StridePredictor`] is a classic region-tagged stride predictor: it
//! detects constant-stride fault streams per memory region and predicts
//! the next pages. [`PredictorStats`] tracks realized accuracy — the
//! knob the ablation study sweeps.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use xfm_types::PageNumber;

/// Accuracy bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Faults observed.
    pub observed: u64,
    /// Faults that had been predicted beforehand (prefetch hits).
    pub hits: u64,
    /// Predictions issued.
    pub predictions: u64,
}

impl PredictorStats {
    /// Fraction of faults that were predicted (the `prefetch_accuracy`
    /// the Fig. 12 model consumes).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.hits as f64 / self.observed as f64
        }
    }

    /// Fraction of predictions that were eventually used.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.hits as f64 / self.predictions as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct StreamEntry {
    last_page: u64,
    stride: i64,
    confidence: u8,
}

/// A region-tagged stride predictor.
///
/// # Examples
///
/// ```
/// use xfm_sfm::predictor::StridePredictor;
/// use xfm_types::PageNumber;
///
/// let mut p = StridePredictor::new(4);
/// for page in [100u64, 101, 102, 103] {
///     p.observe(PageNumber::new(page));
/// }
/// // A confident +1 stride predicts the next pages.
/// p.observe(PageNumber::new(104));
/// assert!(p.is_predicted(PageNumber::new(105)));
/// assert!(p.stats().accuracy() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StridePredictor {
    /// Pages predicted per confident stream observation (prefetch depth).
    depth: u32,
    /// Region (page >> REGION_SHIFT) -> stream state.
    streams: BTreeMap<u64, StreamEntry>,
    /// Outstanding predictions awaiting confirmation.
    outstanding: BTreeMap<u64, ()>,
    stats: PredictorStats,
}

/// Pages per tracked region (64 pages = 256 KiB regions).
const REGION_SHIFT: u32 = 6;
/// Confidence needed before predictions are issued.
const CONFIDENT: u8 = 2;
/// Bound on the outstanding-prediction set (models prefetch buffers).
const MAX_OUTSTANDING: usize = 4096;

impl StridePredictor {
    /// Creates a predictor that prefetches `depth` pages ahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "prefetch depth must be non-zero");
        Self {
            depth,
            streams: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            stats: PredictorStats::default(),
        }
    }

    /// Observes a far-memory fault and returns the pages to prefetch.
    ///
    /// If the fault itself had been predicted, it counts as a hit (the
    /// controller would have prefetched it — `do_offload` path).
    pub fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        self.stats.observed += 1;
        if self.outstanding.remove(&page.index()).is_some() {
            self.stats.hits += 1;
        }

        let region = page.index() >> REGION_SHIFT;
        let entry = self.streams.entry(region).or_insert(StreamEntry {
            last_page: page.index(),
            stride: 0,
            confidence: 0,
        });
        let stride = page.index() as i64 - entry.last_page as i64;
        if stride != 0 && stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else if stride != 0 {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_page = page.index();

        let mut predictions = Vec::new();
        if entry.confidence >= CONFIDENT {
            let stride = entry.stride;
            let base = page.index() as i64;
            for k in 1..=i64::from(self.depth) {
                let predicted = base + stride * k;
                if predicted >= 0 {
                    let predicted = predicted as u64;
                    if self.outstanding.len() < MAX_OUTSTANDING
                        && self.outstanding.insert(predicted, ()).is_none()
                    {
                        self.stats.predictions += 1;
                        predictions.push(PageNumber::new(predicted));
                    }
                }
            }
        }
        predictions
    }

    /// Whether `page` is currently predicted (the backend checks this
    /// to pick the `do_offload` path).
    #[must_use]
    pub fn is_predicted(&self, page: PageNumber) -> bool {
        self.outstanding.contains_key(&page.index())
    }

    /// Accuracy statistics so far.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Drops all outstanding predictions (phase change).
    pub fn flush(&mut self) {
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_stream_reaches_high_accuracy() {
        let mut p = StridePredictor::new(4);
        for page in 0..500u64 {
            p.observe(PageNumber::new(page));
        }
        let acc = p.stats().accuracy();
        assert!(acc > 0.9, "sequential accuracy {acc}");
    }

    #[test]
    fn strided_stream_detected() {
        let mut p = StridePredictor::new(2);
        for k in 0..100u64 {
            p.observe(PageNumber::new(k * 3));
        }
        assert!(p.stats().accuracy() > 0.8);
    }

    #[test]
    fn random_stream_stays_inaccurate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = StridePredictor::new(4);
        for _ in 0..2000 {
            p.observe(PageNumber::new(rng.gen_range(0..1_000_000)));
        }
        let acc = p.stats().accuracy();
        assert!(acc < 0.1, "random accuracy {acc}");
    }

    #[test]
    fn interleaved_streams_tracked_per_region() {
        // Two sequential streams in distant regions, interleaved.
        let mut p = StridePredictor::new(2);
        for k in 0..200u64 {
            p.observe(PageNumber::new(k));
            p.observe(PageNumber::new(1_000_000 + k));
        }
        assert!(p.stats().accuracy() > 0.8, "{}", p.stats().accuracy());
    }

    #[test]
    fn predictions_marked_and_consumed() {
        let mut p = StridePredictor::new(1);
        for page in [10u64, 11, 12, 13] {
            p.observe(PageNumber::new(page));
        }
        assert!(p.is_predicted(PageNumber::new(14)));
        p.observe(PageNumber::new(14));
        assert!(!p.is_predicted(PageNumber::new(14)));
    }

    #[test]
    fn flush_clears_outstanding() {
        let mut p = StridePredictor::new(4);
        for page in 0..20u64 {
            p.observe(PageNumber::new(page));
        }
        p.flush();
        assert!(!p.is_predicted(PageNumber::new(20)));
    }

    #[test]
    fn precision_bounded_by_one() {
        let mut p = StridePredictor::new(8);
        for page in 0..300u64 {
            p.observe(PageNumber::new(page));
        }
        let s = p.stats();
        assert!(s.precision() <= 1.0);
        assert!(s.hits <= s.predictions);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_rejected() {
        let _ = StridePredictor::new(0);
    }
}
