//! Far-memory access prediction.
//!
//! The paper's conclusion notes that "the benefits of XFM can be
//! increased by improving the far memory controller's proficiency at
//! predicting application memory access patterns": a predicted swap-in
//! can be issued as a *prefetch* (`do_offload = true`) and ride the
//! refresh side channel, while an unpredicted one stalls the
//! application on the CPU path.
//!
//! Three predictors sit behind the common [`Predictor`] trait:
//!
//! - [`StridePredictor`] — a classic region-tagged stride predictor that
//!   detects constant-stride fault streams per memory region;
//! - [`LearnedPredictor`] — an online logistic model over page-delta +
//!   recency features, trained by SGD on the observed fault stream
//!   (from scratch, f32 weights, deterministic seeded init — the
//!   lightweight end of the learned-prefetching line of work);
//! - [`HybridPredictor`] — serves the learned model's predictions when
//!   its confidence clears a threshold and falls back to the stride
//!   heuristic otherwise.
//!
//! [`PredictorStats`] tracks realized accuracy — the knob the Fig. 12
//! ablation sweeps, and what `xfm-sim` now consumes in place of the
//! hand-set `prefetch_accuracy` constant.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use xfm_types::PageNumber;

/// Accuracy bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Faults observed.
    pub observed: u64,
    /// Faults that had been predicted beforehand (prefetch hits).
    pub hits: u64,
    /// Predictions issued.
    pub predictions: u64,
}

impl PredictorStats {
    /// Fraction of faults that were predicted (the `prefetch_accuracy`
    /// the Fig. 12 model consumes).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.hits as f64 / self.observed as f64
        }
    }

    /// Fraction of predictions that were eventually used.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.hits as f64 / self.predictions as f64
        }
    }
}

/// The common far-memory access-predictor interface.
///
/// Object-safe so the prefetch engine can swap implementations (and the
/// autotuner can retune a live one) behind `Box<dyn Predictor>`.
pub trait Predictor: Send {
    /// Observes a far-memory fault and returns the pages to prefetch.
    /// A fault that had itself been predicted counts as a hit.
    fn observe(&mut self, page: PageNumber) -> Vec<PageNumber>;

    /// Whether `page` is currently predicted (outstanding).
    fn is_predicted(&self, page: PageNumber) -> bool;

    /// Accuracy statistics so far.
    fn stats(&self) -> PredictorStats;

    /// Drops all outstanding predictions (phase change).
    fn flush(&mut self);

    /// Stable implementation name (telemetry / bench labels).
    fn name(&self) -> &'static str;

    /// Retunes the prefetch depth (autotuner knob). Depth zero is
    /// clamped to one.
    fn set_depth(&mut self, depth: u32);

    /// Retunes the confidence threshold (autotuner knob); predictors
    /// without a confidence notion ignore it.
    fn set_confidence_threshold(&mut self, threshold: f64) {
        let _ = threshold;
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct StreamEntry {
    last_page: u64,
    stride: i64,
    confidence: u8,
    /// Logical tick of the last observation (LRU eviction key).
    last_used: u64,
}

/// A region-tagged stride predictor.
///
/// # Examples
///
/// ```
/// use xfm_sfm::predictor::StridePredictor;
/// use xfm_types::PageNumber;
///
/// let mut p = StridePredictor::new(4);
/// for page in [100u64, 101, 102, 103] {
///     p.observe(PageNumber::new(page));
/// }
/// // A confident +1 stride predicts the next pages.
/// p.observe(PageNumber::new(104));
/// assert!(p.is_predicted(PageNumber::new(105)));
/// assert!(p.stats().accuracy() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StridePredictor {
    /// Pages predicted per confident stream observation (prefetch depth).
    depth: u32,
    /// Region (page >> REGION_SHIFT) -> stream state. Bounded to
    /// [`StridePredictor::MAX_REGIONS`] by LRU eviction.
    streams: BTreeMap<u64, StreamEntry>,
    /// Outstanding predictions awaiting confirmation.
    outstanding: BTreeMap<u64, ()>,
    /// Logical observation counter driving LRU eviction.
    tick: u64,
    stats: PredictorStats,
}

/// Pages per tracked region (64 pages = 256 KiB regions).
const REGION_SHIFT: u32 = 6;
/// Confidence needed before predictions are issued.
const CONFIDENT: u8 = 2;
/// Bound on the outstanding-prediction set (models prefetch buffers).
const MAX_OUTSTANDING: usize = 4096;

impl StridePredictor {
    /// Bound on tracked regions: a randomized fault stream previously
    /// grew the per-region map without limit; beyond this many regions
    /// the least-recently-observed stream is evicted.
    pub const MAX_REGIONS: usize = 1024;

    /// Creates a predictor that prefetches `depth` pages ahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "prefetch depth must be non-zero");
        Self {
            depth,
            streams: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            tick: 0,
            stats: PredictorStats::default(),
        }
    }

    /// Number of regions currently tracked (`<=` [`Self::MAX_REGIONS`]).
    #[must_use]
    pub fn tracked_regions(&self) -> usize {
        self.streams.len()
    }

    /// Observes a far-memory fault and returns the pages to prefetch.
    ///
    /// If the fault itself had been predicted, it counts as a hit (the
    /// controller would have prefetched it — `do_offload` path).
    pub fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        self.stats.observed += 1;
        self.tick += 1;
        if self.outstanding.remove(&page.index()).is_some() {
            self.stats.hits += 1;
        }

        let region = page.index() >> REGION_SHIFT;
        if !self.streams.contains_key(&region) && self.streams.len() >= Self::MAX_REGIONS {
            // LRU eviction: drop the stream observed longest ago.
            if let Some(&lru) = self
                .streams
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(r, _)| r)
            {
                self.streams.remove(&lru);
            }
        }
        let tick = self.tick;
        let entry = self.streams.entry(region).or_insert(StreamEntry {
            last_page: page.index(),
            stride: 0,
            confidence: 0,
            last_used: tick,
        });
        entry.last_used = tick;
        let stride = page.index() as i64 - entry.last_page as i64;
        if stride != 0 && stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else if stride != 0 {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_page = page.index();

        let mut predictions = Vec::new();
        if entry.confidence >= CONFIDENT {
            let stride = entry.stride;
            let base = page.index() as i64;
            for k in 1..=i64::from(self.depth) {
                let predicted = base + stride * k;
                if predicted >= 0 {
                    let predicted = predicted as u64;
                    if self.outstanding.len() < MAX_OUTSTANDING
                        && self.outstanding.insert(predicted, ()).is_none()
                    {
                        self.stats.predictions += 1;
                        predictions.push(PageNumber::new(predicted));
                    }
                }
            }
        }
        predictions
    }

    /// Whether `page` is currently predicted (the backend checks this
    /// to pick the `do_offload` path).
    #[must_use]
    pub fn is_predicted(&self, page: PageNumber) -> bool {
        self.outstanding.contains_key(&page.index())
    }

    /// Accuracy statistics so far.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Drops all outstanding predictions (phase change).
    pub fn flush(&mut self) {
        self.outstanding.clear();
    }
}

impl Predictor for StridePredictor {
    fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        StridePredictor::observe(self, page)
    }

    fn is_predicted(&self, page: PageNumber) -> bool {
        StridePredictor::is_predicted(self, page)
    }

    fn stats(&self) -> PredictorStats {
        StridePredictor::stats(self)
    }

    fn flush(&mut self) {
        StridePredictor::flush(self);
    }

    fn name(&self) -> &'static str {
        "stride"
    }

    fn set_depth(&mut self, depth: u32) {
        self.depth = depth.max(1);
    }
}

// ---------------------------------------------------------------------
// Learned predictor
// ---------------------------------------------------------------------

/// Feature count of the logistic model (see [`features`]).
const NFEAT: usize = 6;
/// Per-region delta-history length (the recency window).
const HIST: usize = 6;
/// Learned regions are coarser than stride regions (4 MiB) so large
/// strides stay inside one stream long enough to train on.
const LEARNED_REGION_SHIFT: u32 = 10;
/// Weight clamp: keeps `w · f` inside sigmoid's well-conditioned range
/// so weights can never overflow to inf/NaN regardless of the stream.
const W_CLAMP: f32 = 8.0;

/// Per-region recency state: the last page and a ring of recent deltas.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RegionHist {
    last_page: u64,
    deltas: [i64; HIST],
    len: u8,
    pos: u8,
    last_used: u64,
}

impl RegionHist {
    fn new(page: u64, tick: u64) -> Self {
        Self {
            last_page: page,
            deltas: [0; HIST],
            len: 0,
            pos: 0,
            last_used: tick,
        }
    }

    fn push(&mut self, delta: i64) {
        self.deltas[self.pos as usize] = delta;
        self.pos = (self.pos + 1) % HIST as u8;
        self.len = (self.len + 1).min(HIST as u8);
    }

    /// Recent deltas, newest first.
    fn recent(&self) -> impl Iterator<Item = i64> + '_ {
        (1..=self.len as usize).map(move |k| {
            let idx = (self.pos as usize + HIST - k) % HIST;
            self.deltas[idx]
        })
    }
}

/// Feature vector for candidate delta `d` against a recency window
/// (newest first). All features lie in `[0, 1]`.
fn features(d: i64, recent: &[i64]) -> [f32; NFEAT] {
    let eq_last = recent.first().is_some_and(|&r| r == d);
    let eq_2back = recent.get(1).is_some_and(|&r| r == d);
    let freq = if recent.is_empty() {
        0.0
    } else {
        recent.iter().filter(|&&r| r == d).count() as f32 / recent.len() as f32
    };
    // Small deltas are likelier next-fault candidates than page-distant
    // jumps: 1/(1 + log2 |d|).
    let inv_mag = 1.0 / (1.0 + (d.unsigned_abs().max(1) as f32).log2());
    let sign_votes = recent.iter().filter(|&&r| (r > 0) == (d > 0)).count();
    let sign = if recent.is_empty() {
        0.0
    } else {
        sign_votes as f32 / recent.len() as f32
    };
    [
        1.0,
        f32::from(u8::from(eq_last)),
        f32::from(u8::from(eq_2back)),
        freq,
        inv_mag,
        sign,
    ]
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// SplitMix64 step (deterministic seeded weight init).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An online-trained logistic next-delta model.
///
/// Candidates are the distinct deltas in the region's recency window;
/// each is scored `sigmoid(w · f(candidate, window))` and the best
/// candidate above the confidence threshold drives the prediction. On
/// every fault the realized delta supervises one SGD step per candidate
/// (label 1 for the delta that happened, 0 for the rest), so the model
/// *unlearns* its repeat-last-delta prior on streams where repetition
/// stops paying — pointer-chase traffic drives confidence below the
/// threshold and the predictor goes quiet.
///
/// Determinism: weights start from a seeded SplitMix64 perturbation of
/// a fixed prior and the model uses no other randomness, so equal seeds
/// and equal fault streams produce identical predictions. Weights are
/// clamped to ±8, which bounds `w · f` and keeps every update finite
/// (never NaN — pinned by proptest).
///
/// # Examples
///
/// ```
/// use xfm_sfm::predictor::{LearnedPredictor, Predictor};
/// use xfm_types::PageNumber;
///
/// let mut p = LearnedPredictor::new(4, 0x5eed);
/// for page in [100u64, 101, 102, 103] {
///     p.observe(PageNumber::new(page));
/// }
/// assert!(p.is_predicted(PageNumber::new(104)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedPredictor {
    weights: [f32; NFEAT],
    lr: f32,
    depth: u32,
    threshold: f32,
    seed: u64,
    /// Region (page >> LEARNED_REGION_SHIFT) -> recency state, bounded
    /// like the stride predictor's stream map.
    regions: BTreeMap<u64, RegionHist>,
    outstanding: BTreeMap<u64, ()>,
    tick: u64,
    /// Confidence of the most recent prediction decision (0 when the
    /// model declined to predict).
    last_confidence: f32,
    stats: PredictorStats,
}

impl LearnedPredictor {
    /// Bound on tracked regions (LRU-evicted, like the stride map).
    pub const MAX_REGIONS: usize = 1024;
    /// Default confidence threshold: the seeded prior scores a
    /// repeat-last-delta candidate just above it, so fresh models
    /// predict immediately on constant-stride streams and train
    /// themselves quiet on random ones.
    pub const DEFAULT_THRESHOLD: f64 = 0.6;

    /// Creates a model that prefetches `depth` pages ahead, with
    /// deterministic `seed`-derived initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: u32, seed: u64) -> Self {
        assert!(depth > 0, "prefetch depth must be non-zero");
        // Prior: repeating deltas are likely (w[1], w[2], w[3] positive)
        // against a skeptical bias (w[0] negative). The seed perturbs
        // each weight by at most ±0.01 — enough to make runs with
        // different seeds distinguishable, small enough not to move the
        // prior across the decision threshold.
        let mut s = seed ^ 0xA076_1D64_78BD_642F;
        let mut weights = [-0.6f32, 1.6, 0.4, 0.4, 0.2, 0.2];
        for w in &mut weights {
            let noise = (splitmix(&mut s) >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
            *w += (noise - 0.5) * 0.02;
        }
        Self {
            weights,
            lr: 0.15,
            depth,
            threshold: Self::DEFAULT_THRESHOLD as f32,
            seed,
            regions: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            tick: 0,
            last_confidence: 0.0,
            stats: PredictorStats::default(),
        }
    }

    /// The seed the weights were initialized from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current model weights (for inspection and the never-NaN proof).
    #[must_use]
    pub fn weights(&self) -> [f32; NFEAT] {
        self.weights
    }

    /// Confidence of the most recent prediction decision.
    #[must_use]
    pub fn last_confidence(&self) -> f64 {
        f64::from(self.last_confidence)
    }

    fn score(&self, d: i64, recent: &[i64]) -> f32 {
        let f = features(d, recent);
        let z: f32 = self.weights.iter().zip(f.iter()).map(|(w, x)| w * x).sum();
        sigmoid(z)
    }

    /// One SGD step toward `label` for candidate `d`.
    fn train(&mut self, d: i64, recent: &[i64], label: f32) {
        let f = features(d, recent);
        let z: f32 = self.weights.iter().zip(f.iter()).map(|(w, x)| w * x).sum();
        let err = label - sigmoid(z);
        for (w, x) in self.weights.iter_mut().zip(f.iter()) {
            *w = (*w + self.lr * err * x).clamp(-W_CLAMP, W_CLAMP);
        }
    }

    /// Distinct candidate deltas from the recency window, newest first.
    fn candidates(recent: &[i64]) -> Vec<i64> {
        let mut out: Vec<i64> = Vec::with_capacity(recent.len());
        for &d in recent {
            if d != 0 && !out.contains(&d) {
                out.push(d);
            }
        }
        out
    }

    /// Observes a fault: supervises the model with the realized delta,
    /// then predicts the next pages when confident.
    pub fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        self.stats.observed += 1;
        self.tick += 1;
        if self.outstanding.remove(&page.index()).is_some() {
            self.stats.hits += 1;
        }

        let region = page.index() >> LEARNED_REGION_SHIFT;
        if !self.regions.contains_key(&region) && self.regions.len() >= Self::MAX_REGIONS {
            if let Some(&lru) = self
                .regions
                .iter()
                .min_by_key(|(_, h)| h.last_used)
                .map(|(r, _)| r)
            {
                self.regions.remove(&lru);
            }
        }
        let tick = self.tick;
        let hist = self
            .regions
            .entry(region)
            .or_insert_with(|| RegionHist::new(page.index(), tick));
        hist.last_used = tick;
        let actual = page.index() as i64 - hist.last_page as i64;
        if actual == 0 {
            // Repeated fault on the same page: nothing to learn from.
            self.last_confidence = 0.0;
            return Vec::new();
        }
        let recent: Vec<i64> = hist.recent().collect();
        hist.push(actual);
        hist.last_page = page.index();
        let recent_after: Vec<i64> = self.regions[&region].recent().collect();

        // Supervise: the window *before* this fault scored each distinct
        // candidate; the realized delta is the positive example.
        if !recent.is_empty() {
            let mut cands = Self::candidates(&recent);
            if !cands.contains(&actual) {
                cands.push(actual);
            }
            for d in cands {
                let label = f32::from(u8::from(d == actual));
                self.train(d, &recent, label);
            }
        }

        // Predict: best-scoring candidate from the updated window.
        let mut best: Option<(i64, f32)> = None;
        for d in Self::candidates(&recent_after) {
            let p = self.score(d, &recent_after);
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((d, p));
            }
        }
        let mut predictions = Vec::new();
        match best {
            Some((d, p)) if p >= self.threshold => {
                self.last_confidence = p;
                let base = page.index() as i64;
                for k in 1..=i64::from(self.depth) {
                    let predicted = base + d * k;
                    if predicted >= 0 {
                        let predicted = predicted as u64;
                        if self.outstanding.len() < MAX_OUTSTANDING
                            && self.outstanding.insert(predicted, ()).is_none()
                        {
                            self.stats.predictions += 1;
                            predictions.push(PageNumber::new(predicted));
                        }
                    }
                }
            }
            Some((_, p)) => self.last_confidence = p.min(self.threshold - f32::EPSILON),
            None => self.last_confidence = 0.0,
        }
        predictions
    }

    /// Whether `page` is currently predicted.
    #[must_use]
    pub fn is_predicted(&self, page: PageNumber) -> bool {
        self.outstanding.contains_key(&page.index())
    }

    /// Accuracy statistics so far.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Drops all outstanding predictions (phase change).
    pub fn flush(&mut self) {
        self.outstanding.clear();
    }
}

impl Predictor for LearnedPredictor {
    fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        LearnedPredictor::observe(self, page)
    }

    fn is_predicted(&self, page: PageNumber) -> bool {
        LearnedPredictor::is_predicted(self, page)
    }

    fn stats(&self) -> PredictorStats {
        LearnedPredictor::stats(self)
    }

    fn flush(&mut self) {
        LearnedPredictor::flush(self);
    }

    fn name(&self) -> &'static str {
        "learned"
    }

    fn set_depth(&mut self, depth: u32) {
        self.depth = depth.max(1);
    }

    fn set_confidence_threshold(&mut self, threshold: f64) {
        #[allow(clippy::cast_possible_truncation)]
        let t = threshold.clamp(0.0, 1.0) as f32;
        self.threshold = t;
    }
}

// ---------------------------------------------------------------------
// Hybrid selector
// ---------------------------------------------------------------------

/// Serves the learned model's predictions when its confidence clears
/// the threshold, falling back to the stride heuristic otherwise.
///
/// Both inner predictors observe every fault (the fallback must stay
/// warm), but only the selected predictor's pages are issued, and the
/// hybrid keeps its own outstanding set so its [`PredictorStats`]
/// reflect what was actually issued.
///
/// # Examples
///
/// ```
/// use xfm_sfm::predictor::{HybridPredictor, Predictor};
/// use xfm_types::PageNumber;
///
/// let mut p = HybridPredictor::new(4, 0x5eed);
/// for page in [10u64, 12, 14, 16] {
///     p.observe(PageNumber::new(page));
/// }
/// assert!(p.is_predicted(PageNumber::new(18)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridPredictor {
    learned: LearnedPredictor,
    stride: StridePredictor,
    /// Learned predictions are used only above this confidence.
    select_threshold: f64,
    outstanding: BTreeMap<u64, ()>,
    stats: PredictorStats,
}

impl HybridPredictor {
    /// Creates a hybrid with both inner predictors at `depth` and the
    /// learned model seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: u32, seed: u64) -> Self {
        Self {
            learned: LearnedPredictor::new(depth, seed),
            stride: StridePredictor::new(depth),
            select_threshold: LearnedPredictor::DEFAULT_THRESHOLD,
            outstanding: BTreeMap::new(),
            stats: PredictorStats::default(),
        }
    }

    /// The inner learned model.
    #[must_use]
    pub fn learned(&self) -> &LearnedPredictor {
        &self.learned
    }

    /// The inner stride heuristic.
    #[must_use]
    pub fn stride(&self) -> &StridePredictor {
        &self.stride
    }
}

impl Predictor for HybridPredictor {
    fn observe(&mut self, page: PageNumber) -> Vec<PageNumber> {
        self.stats.observed += 1;
        if self.outstanding.remove(&page.index()).is_some() {
            self.stats.hits += 1;
        }
        let learned_preds = self.learned.observe(page);
        let stride_preds = self.stride.observe(page);
        let selected = if self.learned.last_confidence() >= self.select_threshold {
            learned_preds
        } else {
            stride_preds
        };
        let mut out = Vec::with_capacity(selected.len());
        for p in selected {
            if self.outstanding.len() < MAX_OUTSTANDING
                && self.outstanding.insert(p.index(), ()).is_none()
            {
                self.stats.predictions += 1;
                out.push(p);
            }
        }
        out
    }

    fn is_predicted(&self, page: PageNumber) -> bool {
        self.outstanding.contains_key(&page.index())
    }

    fn stats(&self) -> PredictorStats {
        self.stats
    }

    fn flush(&mut self) {
        self.outstanding.clear();
        self.learned.flush();
        self.stride.flush();
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn set_depth(&mut self, depth: u32) {
        self.learned.set_depth(depth);
        self.stride.set_depth(depth);
    }

    fn set_confidence_threshold(&mut self, threshold: f64) {
        self.select_threshold = threshold.clamp(0.0, 1.0);
        self.learned.set_confidence_threshold(threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_stream_reaches_high_accuracy() {
        let mut p = StridePredictor::new(4);
        for page in 0..500u64 {
            p.observe(PageNumber::new(page));
        }
        let acc = p.stats().accuracy();
        assert!(acc > 0.9, "sequential accuracy {acc}");
    }

    #[test]
    fn strided_stream_detected() {
        let mut p = StridePredictor::new(2);
        for k in 0..100u64 {
            p.observe(PageNumber::new(k * 3));
        }
        assert!(p.stats().accuracy() > 0.8);
    }

    #[test]
    fn random_stream_stays_inaccurate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = StridePredictor::new(4);
        for _ in 0..2000 {
            p.observe(PageNumber::new(rng.gen_range(0..1_000_000)));
        }
        let acc = p.stats().accuracy();
        assert!(acc < 0.1, "random accuracy {acc}");
    }

    #[test]
    fn interleaved_streams_tracked_per_region() {
        // Two sequential streams in distant regions, interleaved.
        let mut p = StridePredictor::new(2);
        for k in 0..200u64 {
            p.observe(PageNumber::new(k));
            p.observe(PageNumber::new(1_000_000 + k));
        }
        assert!(p.stats().accuracy() > 0.8, "{}", p.stats().accuracy());
    }

    #[test]
    fn predictions_marked_and_consumed() {
        let mut p = StridePredictor::new(1);
        for page in [10u64, 11, 12, 13] {
            p.observe(PageNumber::new(page));
        }
        assert!(p.is_predicted(PageNumber::new(14)));
        p.observe(PageNumber::new(14));
        assert!(!p.is_predicted(PageNumber::new(14)));
    }

    #[test]
    fn flush_clears_outstanding() {
        let mut p = StridePredictor::new(4);
        for page in 0..20u64 {
            p.observe(PageNumber::new(page));
        }
        p.flush();
        assert!(!p.is_predicted(PageNumber::new(20)));
    }

    #[test]
    fn precision_bounded_by_one() {
        let mut p = StridePredictor::new(8);
        for page in 0..300u64 {
            p.observe(PageNumber::new(page));
        }
        let s = p.stats();
        assert!(s.precision() <= 1.0);
        assert!(s.hits <= s.predictions);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_rejected() {
        let _ = StridePredictor::new(0);
    }

    #[test]
    fn stride_region_map_is_bounded_with_lru_eviction() {
        // Regression: a randomized fault stream used to grow the
        // per-region map without limit. Distinct regions far beyond the
        // bound must cap the map at MAX_REGIONS...
        let mut p = StridePredictor::new(2);
        let total = (StridePredictor::MAX_REGIONS * 3) as u64;
        for r in 0..total {
            p.observe(PageNumber::new(r << REGION_SHIFT));
        }
        assert_eq!(p.tracked_regions(), StridePredictor::MAX_REGIONS);
        // ...and eviction must be LRU: the most recent regions survive,
        // so a hot stream keeps its stride state across the churn.
        let survivor = (total - 1) << REGION_SHIFT;
        for k in 1..4u64 {
            p.observe(PageNumber::new(survivor + k));
        }
        assert!(
            p.is_predicted(PageNumber::new(survivor + 4)),
            "recently-observed stream lost its state to eviction"
        );
    }

    #[test]
    fn learned_predicts_constant_stride_quickly() {
        let mut p = LearnedPredictor::new(4, 7);
        let mut preds = 0;
        for k in 0..8u64 {
            preds += p.observe(PageNumber::new(100 + k * 2)).len();
        }
        assert!(preds > 0, "no predictions after 8 constant-stride faults");
        assert!(p.is_predicted(PageNumber::new(100 + 8 * 2)));
        assert!(p.last_confidence() >= LearnedPredictor::DEFAULT_THRESHOLD);
    }

    #[test]
    fn learned_goes_quiet_on_pointer_chase() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = LearnedPredictor::new(4, 7);
        for _ in 0..500 {
            p.observe(PageNumber::new(rng.gen_range(0..1u64 << 30)));
        }
        let s = p.stats();
        // The model must have throttled itself: very few predictions per
        // fault once the repeat prior is unlearned.
        assert!(
            (s.predictions as f64) < 0.5 * s.observed as f64 * 4.0,
            "model never went quiet: {} predictions / {} faults",
            s.predictions,
            s.observed
        );
        assert!(s.accuracy() < 0.1);
    }

    #[test]
    fn learned_same_seed_is_deterministic() {
        let stream: Vec<u64> = (0..200u64).map(|k| (k * 37) % 4096).collect();
        let mut a = LearnedPredictor::new(4, 42);
        let mut b = LearnedPredictor::new(4, 42);
        for &page in &stream {
            assert_eq!(
                a.observe(PageNumber::new(page)),
                b.observe(PageNumber::new(page))
            );
        }
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn hybrid_falls_back_to_stride() {
        // A constant-stride stream inside one learned region: both
        // models see it; the hybrid must predict it either way.
        let mut p = HybridPredictor::new(2, 3);
        for k in 0..20u64 {
            p.observe(PageNumber::new(k * 3));
        }
        assert!(p.stats().accuracy() > 0.5, "{}", p.stats().accuracy());
        assert!(p.is_predicted(PageNumber::new(60)));
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut preds: Vec<Box<dyn Predictor>> = vec![
            Box::new(StridePredictor::new(2)),
            Box::new(LearnedPredictor::new(2, 1)),
            Box::new(HybridPredictor::new(2, 1)),
        ];
        for p in &mut preds {
            for k in 0..10u64 {
                p.observe(PageNumber::new(k));
            }
            p.set_depth(8);
            p.set_confidence_threshold(0.7);
            assert!(p.stats().observed == 10);
            assert!(!p.name().is_empty());
            p.flush();
        }
    }
}
