//! A zsmalloc-like slab allocator for compressed pages.
//!
//! zswap deployments use the zsmalloc allocator because it packs as many
//! compressed pages as possible into each encapsulating OS page, at the
//! cost of intermittent compaction (paper §2.1). This model keeps the
//! same structure: the pool is a set of 4 KiB *host pages*, each assigned
//! to a *size class* (a multiple of a 64 B chunk); objects occupy fixed
//! slots of their class size. Each host page is one contiguous 4 KiB
//! arena — slot addresses are pure offset arithmetic, so store, load,
//! and compaction are single `memcpy`s with no per-object heap boxes.
//! [`Zpool::compact`] repacks each class into the fewest host pages and
//! reports the `memcpy` volume, which the backends charge as DRAM
//! traffic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use xfm_types::{ByteSize, Error, Result, PAGE_SIZE};

/// Allocation granularity within a host page (zsmalloc chunk).
pub const CHUNK: usize = 64;

/// Number of size classes (`CHUNK..=PAGE_SIZE` in `CHUNK` steps).
pub const NUM_CLASSES: usize = PAGE_SIZE / CHUNK;

/// An opaque reference to a stored object.
///
/// Handles remain valid across [`Zpool::compact`] (objects may move
/// between host pages, but the handle indirection is stable, mirroring
/// zsmalloc's handle table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Handle(u64);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct HostPage {
    /// Size class (slot size = `(class + 1) * CHUNK`).
    class: usize,
    /// One contiguous 4 KiB arena; slot `si` occupies
    /// `si * slot_size .. si * slot_size + lens[si]`.
    data: Box<[u8]>,
    /// Per-slot payload length; 0 = free (objects are never empty).
    lens: Vec<u16>,
    used: usize,
}

impl HostPage {
    fn new(class: usize) -> Self {
        let slot_size = (class + 1) * CHUNK;
        Self {
            class,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            lens: vec![0; PAGE_SIZE / slot_size],
            used: 0,
        }
    }

    fn slot_size(&self) -> usize {
        (self.class + 1) * CHUNK
    }

    fn num_slots(&self) -> usize {
        self.lens.len()
    }

    fn object(&self, si: usize) -> &[u8] {
        let start = si * self.slot_size();
        &self.data[start..start + self.lens[si] as usize]
    }

    /// Stores `obj` into free slot `si` (one memcpy into the arena).
    fn store(&mut self, si: usize, obj: &[u8]) {
        debug_assert_eq!(self.lens[si], 0, "slot occupied");
        let start = si * self.slot_size();
        self.data[start..start + obj.len()].copy_from_slice(obj);
        self.lens[si] = obj.len() as u16;
        self.used += 1;
    }

    /// Frees slot `si`, returning the payload length it held.
    fn clear(&mut self, si: usize) -> usize {
        let len = self.lens[si] as usize;
        debug_assert!(len > 0, "slot already free");
        self.lens[si] = 0;
        self.used -= 1;
        len
    }

    fn first_free(&self) -> Option<usize> {
        self.lens.iter().position(|&l| l == 0)
    }

    fn first_used(&self) -> Option<usize> {
        self.lens.iter().position(|&l| l != 0)
    }
}

/// Statistics snapshot for a [`Zpool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZpoolStats {
    /// Bytes of actual object payload stored.
    pub stored_bytes: ByteSize,
    /// Bytes reserved by slot rounding (internal fragmentation).
    pub slot_overhead: ByteSize,
    /// Host pages currently allocated from the region.
    pub host_pages: u64,
    /// Live objects.
    pub objects: u64,
}

impl ZpoolStats {
    /// Pool bytes consumed from the SFM region (host pages x 4 KiB).
    #[must_use]
    pub fn pool_bytes(&self) -> ByteSize {
        ByteSize::from_pages(self.host_pages)
    }

    /// Fraction of pool bytes holding live payload (0 when empty).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let pool = self.pool_bytes().as_bytes();
        if pool == 0 {
            0.0
        } else {
            self.stored_bytes.as_bytes() as f64 / pool as f64
        }
    }
}

/// Report from one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompactReport {
    /// Objects relocated.
    pub moved_objects: u64,
    /// Payload bytes `memcpy`ed (charged as DRAM read + write traffic).
    pub moved_bytes: ByteSize,
    /// Host pages returned to the region.
    pub freed_pages: u64,
}

/// The allocator.
///
/// # Examples
///
/// ```
/// use xfm_sfm::Zpool;
/// use xfm_types::ByteSize;
///
/// let mut pool = Zpool::new(ByteSize::from_mib(1));
/// let h = pool.alloc(&[1, 2, 3, 4])?;
/// assert_eq!(pool.get(h)?, &[1, 2, 3, 4]);
/// pool.free(h)?;
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zpool {
    capacity: ByteSize,
    pages: Vec<Option<HostPage>>,
    /// Free indices in `pages`.
    free_page_slots: Vec<usize>,
    /// `handle -> (page index, slot index)`.
    locations: BTreeMap<u64, (usize, usize)>,
    next_handle: u64,
    stored_bytes: u64,
    slot_overhead: u64,
}

impl Zpool {
    /// Creates a pool that may grow to at most `capacity` bytes of host
    /// pages.
    #[must_use]
    pub fn new(capacity: ByteSize) -> Self {
        Self {
            capacity,
            pages: Vec::new(),
            free_page_slots: Vec::new(),
            locations: BTreeMap::new(),
            next_handle: 1,
            stored_bytes: 0,
            slot_overhead: 0,
        }
    }

    /// The configured capacity limit.
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    fn class_of(len: usize) -> usize {
        len.div_ceil(CHUNK).max(1) - 1
    }

    fn live_pages(&self) -> u64 {
        (self.pages.len() - self.free_page_slots.len()) as u64
    }

    /// Whether storing an object of `len` bytes would require growing
    /// the pool by a new host page (no live page of the matching size
    /// class has a free slot).
    ///
    /// Read-only companion to [`Zpool::alloc`]: the sharded data plane
    /// uses it to enforce a *global* capacity budget across per-shard
    /// pools before committing an allocation, without mutating any pool.
    #[must_use]
    pub fn would_grow(&self, len: usize) -> bool {
        let class = Self::class_of(len);
        !self.pages.iter().any(|p| {
            p.as_ref()
                .is_some_and(|p| p.class == class && p.used < p.num_slots())
        })
    }

    /// Stores `data`, returning a stable handle.
    ///
    /// # Errors
    ///
    /// - [`Error::InvalidConfig`] if `data` is empty or larger than 4 KiB;
    /// - [`Error::SfmRegionFull`] if no slot is free and growing the pool
    ///   would exceed capacity. Callers should [`Zpool::compact`] and
    ///   retry, or reject the swap-out.
    pub fn alloc(&mut self, data: &[u8]) -> Result<Handle> {
        if data.is_empty() || data.len() > PAGE_SIZE {
            return Err(Error::InvalidConfig(format!(
                "object size {} outside 1..=4096",
                data.len()
            )));
        }
        let class = Self::class_of(data.len());
        // First fit: any existing page of this class with a free slot.
        let found = self.pages.iter().enumerate().find_map(|(pi, p)| {
            p.as_ref().and_then(|p| {
                (p.class == class && p.used < p.num_slots()).then(|| {
                    let si = p.first_free().expect("free slot");
                    (pi, si)
                })
            })
        });
        let (pi, si) = match found {
            Some(loc) => loc,
            None => {
                // Grow the pool by one host page, if capacity allows.
                let next_pages = self.live_pages() + 1;
                if ByteSize::from_pages(next_pages) > self.capacity {
                    return Err(Error::SfmRegionFull);
                }
                let pi = match self.free_page_slots.pop() {
                    Some(idx) => {
                        self.pages[idx] = Some(HostPage::new(class));
                        idx
                    }
                    None => {
                        self.pages.push(Some(HostPage::new(class)));
                        self.pages.len() - 1
                    }
                };
                (pi, 0)
            }
        };
        let page = self.pages[pi].as_mut().expect("live page");
        page.store(si, data);
        let handle = Handle(self.next_handle);
        self.next_handle += 1;
        self.locations.insert(handle.0, (pi, si));
        self.stored_bytes += data.len() as u64;
        self.slot_overhead += ((class + 1) * CHUNK - data.len()) as u64;
        Ok(handle)
    }

    /// [`Zpool::alloc`] behind a fault-injection hook: when `faults`
    /// carries an armed [`FaultSite::ZpoolStoreFailure`] that fires, the
    /// store is rejected as [`Error::SfmRegionFull`] before touching the
    /// pool — exactly the shape a capacity rejection takes, so callers
    /// exercise their compact-and-retry and clean-reject paths.
    ///
    /// The injector is a parameter rather than a field so the pool stays
    /// plain serializable data; with `None` this is a single branch on
    /// top of `alloc`.
    ///
    /// # Errors
    ///
    /// As [`Zpool::alloc`], plus the injected [`Error::SfmRegionFull`].
    ///
    /// [`FaultSite::ZpoolStoreFailure`]: xfm_faults::FaultSite::ZpoolStoreFailure
    pub fn alloc_faulted(
        &mut self,
        data: &[u8],
        faults: Option<&xfm_faults::FaultInjector>,
    ) -> Result<Handle> {
        if let Some(f) = faults {
            if f.should_fire(xfm_faults::FaultSite::ZpoolStoreFailure) {
                return Err(Error::SfmRegionFull);
            }
        }
        self.alloc(data)
    }

    /// Reads the object behind `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EntryNotFound`] for a stale or unknown handle.
    pub fn get(&self, handle: Handle) -> Result<&[u8]> {
        let &(pi, si) = self
            .locations
            .get(&handle.0)
            .ok_or(Error::EntryNotFound { page: handle.0 })?;
        Ok(self.pages[pi].as_ref().expect("live page").object(si))
    }

    /// Frees the object behind `handle`. Fully-empty host pages return to
    /// the region immediately.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EntryNotFound`] for a stale or unknown handle.
    pub fn free(&mut self, handle: Handle) -> Result<ByteSize> {
        let (pi, si) = self
            .locations
            .remove(&handle.0)
            .ok_or(Error::EntryNotFound { page: handle.0 })?;
        let page = self.pages[pi].as_mut().expect("live page");
        let len = page.clear(si);
        let class = page.class;
        self.stored_bytes -= len as u64;
        self.slot_overhead -= ((class + 1) * CHUNK - len) as u64;
        if page.used == 0 {
            self.pages[pi] = None;
            self.free_page_slots.push(pi);
        }
        Ok(ByteSize::from_bytes(len as u64))
    }

    /// Repacks every size class into the fewest host pages, relocating
    /// objects from sparse pages into dense ones — the zsmalloc-style
    /// `memcpy` compaction the paper's `xfm_compact()` exposes.
    pub fn compact(&mut self) -> CompactReport {
        let mut report = CompactReport::default();
        // Build per-class page lists, densest first.
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pi, p) in self.pages.iter().enumerate() {
            if let Some(p) = p {
                by_class.entry(p.class).or_default().push(pi);
            }
        }
        for (_, mut page_idxs) in by_class {
            page_idxs
                .sort_by_key(|&pi| std::cmp::Reverse(self.pages[pi].as_ref().expect("live").used));
            // Two-pointer: move objects from the sparsest pages into free
            // slots of the densest pages.
            let mut dense = 0usize;
            let mut sparse = page_idxs.len();
            while dense < sparse {
                let dense_pi = page_idxs[dense];
                let free_in_dense = {
                    let p = self.pages[dense_pi].as_ref().expect("live");
                    p.num_slots() - p.used
                };
                if free_in_dense == 0 {
                    dense += 1;
                    continue;
                }
                let sparse_pi = page_idxs[sparse - 1];
                if sparse_pi == dense_pi {
                    break;
                }
                let sparse_used = self.pages[sparse_pi].as_ref().expect("live").used;
                if sparse_used == 0 {
                    sparse -= 1;
                    continue;
                }
                // Move one object: a single arena-to-arena memcpy.
                // `split_at_mut` yields disjoint borrows of the two pages
                // (they are distinct — checked above).
                let (si_from, si_to, moved_len) = {
                    let mid = sparse_pi.max(dense_pi);
                    let (lo, hi) = self.pages.split_at_mut(mid);
                    let (from, to) = if sparse_pi < dense_pi {
                        (&mut lo[sparse_pi], &mut hi[0])
                    } else {
                        (&mut hi[0], &mut lo[dense_pi])
                    };
                    let from = from.as_mut().expect("live");
                    let to = to.as_mut().expect("live");
                    let si_from = from.first_used().expect("object present");
                    let si_to = to.first_free().expect("free slot");
                    let len = from.lens[si_from] as usize;
                    let src = si_from * from.slot_size();
                    let dst = si_to * to.slot_size();
                    to.data[dst..dst + len].copy_from_slice(&from.data[src..src + len]);
                    to.lens[si_to] = len as u16;
                    to.used += 1;
                    from.clear(si_from);
                    (si_from, si_to, len)
                };
                // Fix the handle that pointed at (sparse_pi, si_from).
                let handle = self
                    .locations
                    .iter()
                    .find_map(|(&h, &loc)| (loc == (sparse_pi, si_from)).then_some(h))
                    .expect("handle for moved object");
                self.locations.insert(handle, (dense_pi, si_to));
                report.moved_objects += 1;
                report.moved_bytes += ByteSize::from_bytes(moved_len as u64);
                if self.pages[sparse_pi].as_ref().expect("live").used == 0 {
                    self.pages[sparse_pi] = None;
                    self.free_page_slots.push(sparse_pi);
                    report.freed_pages += 1;
                    sparse -= 1;
                }
            }
        }
        report
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> ZpoolStats {
        ZpoolStats {
            stored_bytes: ByteSize::from_bytes(self.stored_bytes),
            slot_overhead: ByteSize::from_bytes(self.slot_overhead),
            host_pages: self.live_pages(),
            objects: self.locations.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Zpool {
        Zpool::new(ByteSize::from_mib(1))
    }

    #[test]
    fn alloc_get_free_round_trip() {
        let mut p = pool();
        let h = p.alloc(&[9u8; 100]).unwrap();
        assert_eq!(p.get(h).unwrap(), &[9u8; 100][..]);
        assert_eq!(p.free(h).unwrap().as_bytes(), 100);
        assert!(p.get(h).is_err());
        assert!(p.free(h).is_err());
    }

    #[test]
    fn objects_pack_into_shared_host_pages() {
        let mut p = pool();
        // 100-byte objects round to 128 B slots: 32 per host page.
        let handles: Vec<_> = (0..32).map(|_| p.alloc(&[1u8; 100]).unwrap()).collect();
        assert_eq!(p.stats().host_pages, 1);
        let h33 = p.alloc(&[1u8; 100]).unwrap();
        assert_eq!(p.stats().host_pages, 2);
        for h in handles {
            p.free(h).unwrap();
        }
        p.free(h33).unwrap();
        assert_eq!(p.stats().host_pages, 0);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut p = Zpool::new(ByteSize::from_pages(2));
        // Full-page objects: only 2 fit.
        p.alloc(&[1u8; 4096]).unwrap();
        p.alloc(&[2u8; 4096]).unwrap();
        assert!(matches!(p.alloc(&[3u8; 4096]), Err(Error::SfmRegionFull)));
    }

    #[test]
    fn invalid_sizes_rejected() {
        let mut p = pool();
        assert!(p.alloc(&[]).is_err());
        assert!(p.alloc(&vec![0u8; 4097]).is_err());
    }

    #[test]
    fn fragmentation_then_compaction_frees_pages() {
        let mut p = pool();
        // Fill 4 host pages with 128 B-class objects...
        let handles: Vec<_> = (0..128)
            .map(|i| p.alloc(&[i as u8; 100]).unwrap())
            .collect();
        assert_eq!(p.stats().host_pages, 4);
        // ...then free three quarters, scattered (leaves holes everywhere).
        for (i, h) in handles.iter().enumerate() {
            if i % 4 != 0 {
                p.free(*h).unwrap();
            }
        }
        assert_eq!(p.stats().objects, 32);
        let before = p.stats().host_pages;
        let report = p.compact();
        let after = p.stats().host_pages;
        assert_eq!(after, 1, "32 objects of 128 B fit one host page");
        assert_eq!(before - after, report.freed_pages);
        assert!(report.moved_objects > 0);
        // Survivors unharmed.
        for (i, h) in handles.iter().enumerate() {
            if i % 4 == 0 {
                assert_eq!(p.get(*h).unwrap(), &[i as u8; 100][..]);
            }
        }
    }

    #[test]
    fn handles_stay_valid_across_compaction() {
        let mut p = pool();
        let keep = p.alloc(b"keep me around").unwrap();
        let doomed: Vec<_> = (0..100).map(|_| p.alloc(&[0u8; 1000]).unwrap()).collect();
        for h in doomed {
            p.free(h).unwrap();
        }
        p.compact();
        assert_eq!(p.get(keep).unwrap(), b"keep me around");
    }

    #[test]
    fn stats_track_overhead() {
        let mut p = pool();
        p.alloc(&[0u8; 65]).unwrap(); // 128 B slot -> 63 B overhead
        let s = p.stats();
        assert_eq!(s.stored_bytes.as_bytes(), 65);
        assert_eq!(s.slot_overhead.as_bytes(), 63);
        assert_eq!(s.objects, 1);
        assert!(s.utilization() > 0.0 && s.utilization() < 0.05);
    }

    #[test]
    fn empty_pool_utilization_is_zero() {
        assert_eq!(pool().stats().utilization(), 0.0);
    }

    #[test]
    fn would_grow_tracks_free_slots_per_class() {
        let mut p = pool();
        assert!(p.would_grow(100), "empty pool always grows");
        let h = p.alloc(&[1u8; 100]).unwrap();
        assert!(!p.would_grow(100), "31 free 128 B slots remain");
        assert!(p.would_grow(300), "no 320 B-class page yet");
        // Fill the remaining slots of the 128 B class.
        let rest: Vec<_> = (0..31).map(|_| p.alloc(&[2u8; 100]).unwrap()).collect();
        assert!(p.would_grow(100), "class page is full");
        p.free(h).unwrap();
        assert!(!p.would_grow(100), "freed slot is reusable");
        for h in rest {
            p.free(h).unwrap();
        }
        assert!(p.would_grow(100), "empty host pages return to the region");
    }

    #[test]
    fn distinct_classes_use_distinct_pages() {
        let mut p = pool();
        p.alloc(&[1u8; 64]).unwrap(); // class 0
        p.alloc(&[2u8; 2048]).unwrap(); // class 31
        assert_eq!(p.stats().host_pages, 2);
    }

    #[test]
    fn injected_store_failure_rejects_without_touching_the_pool() {
        use xfm_faults::{FaultInjector, FaultPlan, FaultSite, SiteSpec};
        let plan = FaultPlan::new(1).with_site(
            FaultSite::ZpoolStoreFailure,
            SiteSpec::with_probability(1.0).max_fires(1),
        );
        let inj = FaultInjector::new(&plan);
        let mut p = pool();
        let before = p.stats();
        assert!(matches!(
            p.alloc_faulted(&[1u8; 100], Some(&inj)),
            Err(Error::SfmRegionFull)
        ));
        assert_eq!(p.stats(), before, "rejected store left no residue");
        // Fires exhausted: the same call now succeeds, and a `None`
        // injector is a pure pass-through.
        assert!(p.alloc_faulted(&[1u8; 100], Some(&inj)).is_ok());
        assert!(p.alloc_faulted(&[1u8; 100], None).is_ok());
    }
}
