//! The Baseline-CPU SFM backend.
//!
//! Runs the codec synchronously on the host, exactly like zswap: a
//! swap-out reads the cold 4 KiB page from DRAM, compresses it, and
//! writes the compressed bytes back into the zpool; a swap-in reads the
//! compressed bytes and writes the restored page. Both page and pool are
//! cold by definition, so every one of those four transfers hits DRAM —
//! the `4 x GBSwapped` channel traffic of the paper's §1/§3 (overhead
//! O3) — and the codec burns host cycles (overhead O2).
//!
//! The backend fronts its single-threaded state with one mutex so the
//! whole surface is `&self` (the [`SwapPlane`] contract); the lock is a
//! plain uncontended acquisition on this baseline, costing nothing
//! measurable next to a codec pass.

use std::sync::Arc;

use parking_lot::Mutex;
use xfm_compress::{Codec, CodecKind, CostModel, Scratch, XDeflate};
use xfm_faults::{FaultInjector, FaultSite};
use xfm_telemetry::swap_metrics::Stopwatch;
use xfm_telemetry::{Cause, Registry, SwapMetrics, SwapStage};
use xfm_types::{
    ByteSize, Cycles, Error, OpContext, PageNumber, Result, SwapError, SwapResult, TenantId,
    PAGE_SIZE,
};

use crate::backend::{BackendStats, ExecutedOn, SfmConfig, SwapOutcome, SwapPlane};
use crate::table::{SfmEntry, SfmTable};
use crate::zpool::{CompactReport, Zpool, ZpoolStats};

/// The Baseline-CPU backend.
///
/// # Examples
///
/// ```
/// use xfm_sfm::{CpuBackend, SfmConfig};
/// use xfm_types::PageNumber;
///
/// let b = CpuBackend::new(SfmConfig::default());
/// let page = b"16-byte pattern!".repeat(256); // 4096 bytes
/// let out = b.swap_out(PageNumber::new(1), &page)?;
/// assert!(out.compressed_len < 4096);
/// // DDR traffic: 4 KiB page read + compressed write.
/// assert_eq!(out.ddr_bytes.as_bytes(), 4096 + u64::from(out.compressed_len));
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub struct CpuBackend {
    config: SfmConfig,
    inner: Mutex<CpuInner>,
}

/// Single-owner state behind the mutex; every data-path method lives
/// here so the public wrappers are one lock acquisition each.
struct CpuInner {
    config: SfmConfig,
    codec: Box<dyn Codec + Send>,
    cost: CostModel,
    pool: Zpool,
    table: SfmTable,
    stats: BackendStats,
    /// Reusable codec state: after the first page, swap-out and swap-in
    /// run without heap allocation in the codec.
    scratch: Scratch,
    /// Reusable compressed-output buffer for swap-out.
    comp_buf: Vec<u8>,
    /// Swap-path metric handles; `None` until
    /// [`CpuBackend::attach_telemetry`], and the hot path pays nothing
    /// while detached.
    telemetry: Option<SwapMetrics>,
    /// Fault-injection hooks; `None` until [`CpuBackend::attach_faults`],
    /// and the hot path pays one pointer test while detached.
    faults: Option<Arc<FaultInjector>>,
}

impl std::fmt::Debug for CpuBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CpuBackend")
            .field("codec", &inner.codec.name())
            .field("entries", &inner.table.len())
            .finish_non_exhaustive()
    }
}

impl CpuBackend {
    /// Creates a backend with the default codec (xdeflate, matching the
    /// Deflate class the paper's hardware implements) and the paper's
    /// average cost model.
    #[must_use]
    pub fn new(config: SfmConfig) -> Self {
        Self::with_codec(
            config,
            Box::new(XDeflate::default()),
            CostModel::paper_average(),
        )
    }

    /// Creates a backend with an explicit codec and cost model.
    #[must_use]
    pub fn with_codec(config: SfmConfig, codec: Box<dyn Codec + Send>, cost: CostModel) -> Self {
        // Pre-warm the scratch so the first real page already runs at
        // steady-state speed (lazy buffer sizing otherwise costs the
        // documented fresh-vs-warm gap on the first few pages).
        let mut scratch = Scratch::new();
        scratch.warm(&*codec);
        Self {
            config,
            inner: Mutex::new(CpuInner {
                pool: Zpool::new(config.region_capacity),
                table: SfmTable::new(),
                stats: BackendStats::default(),
                config,
                codec,
                cost,
                scratch,
                comp_buf: Vec::with_capacity(PAGE_SIZE),
                telemetry: None,
                faults: None,
            }),
        }
    }

    /// Attaches the standard swap-path metrics to `registry`.
    ///
    /// The baseline backend reports through the same `xfm_*` series as
    /// the XFM backend — every operation counts as a CPU execution —
    /// so A/B comparisons read one schema.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.inner.lock().telemetry = Some(SwapMetrics::register(registry));
    }

    /// Attaches a fault injector; its zpool-store and bit-corruption
    /// sites then apply to this backend's swap path.
    pub fn attach_faults(&mut self, faults: Arc<FaultInjector>) {
        self.inner.lock().faults = Some(faults);
    }

    /// Number of pages currently held by the SFM entry table.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.inner.lock().table.len()
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SfmConfig {
        &self.config
    }

    /// Compresses `data` (one 4 KiB page) into the SFM under `page`.
    ///
    /// # Errors
    ///
    /// - [`Error::EntryExists`] if the page is already out;
    /// - [`Error::SfmRegionFull`] if the region cannot hold it even
    ///   after compaction;
    /// - [`Error::InvalidConfig`] if `data` is not 4 KiB.
    pub fn swap_out(&self, page: PageNumber, data: &[u8]) -> Result<SwapOutcome> {
        self.inner.lock().swap_out(TenantId::SYSTEM, page, data)
    }

    /// Tenant-attributed form of [`CpuBackend::swap_out`]: the stored
    /// compressed bytes are billed to `tenant` until the entry is
    /// consumed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CpuBackend::swap_out`].
    pub fn swap_out_for(
        &self,
        tenant: TenantId,
        page: PageNumber,
        data: &[u8],
    ) -> Result<SwapOutcome> {
        self.inner.lock().swap_out(tenant, page, data)
    }

    /// Decompresses `page` back out of the SFM, removing its entry.
    ///
    /// `do_offload` mirrors the paper's `xfm_swap_out()` parameter: when
    /// `false` (a demand fault) the CPU path is preferred because the
    /// application is stalled; when `true` (a prefetch) the NMA path may
    /// be used. The CPU baseline ignores it.
    ///
    /// # Errors
    ///
    /// - [`Error::EntryNotFound`] if the page is not in the SFM;
    /// - [`Error::ChecksumMismatch`] if the fetched bytes fail
    ///   verification — the entry and slot are left intact, so a retry
    ///   re-reads the stored copy;
    /// - [`Error::Corrupt`] if stored data fails to decompress (the
    ///   entry is consumed).
    pub fn swap_in(&self, page: PageNumber, do_offload: bool) -> Result<(Vec<u8>, SwapOutcome)> {
        let mut out = Vec::with_capacity(PAGE_SIZE);
        let outcome = self.inner.lock().swap_in_into(page, do_offload, &mut out)?;
        Ok((out, outcome))
    }

    /// Allocation-free fault path: decompresses `page` into the caller's
    /// reusable buffer (`out` is cleared first).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CpuBackend::swap_in`].
    pub fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> Result<SwapOutcome> {
        self.inner.lock().swap_in_into(page, do_offload, out)
    }

    /// Whether `page` currently lives in the SFM.
    #[must_use]
    pub fn contains(&self, page: PageNumber) -> bool {
        self.inner.lock().table.contains(page)
    }

    /// Runs a compaction pass over the zpool.
    pub fn compact(&self) -> CompactReport {
        self.inner.lock().pool.compact()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> BackendStats {
        self.inner.lock().stats
    }

    /// Zpool-level statistics.
    #[must_use]
    pub fn pool_stats(&self) -> ZpoolStats {
        self.inner.lock().pool.stats()
    }
}

impl SwapPlane for CpuBackend {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        CpuBackend::swap_out(self, page, data).map_err(SwapError::from)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        CpuBackend::swap_in_into(self, page, do_offload, out).map_err(SwapError::from)
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        CpuBackend::swap_out_for(self, ctx.tenant, page, data).map_err(SwapError::from)
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        self.inner.lock().table.tenant_bytes()
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        self.inner.lock().table.get(page).map(|e| e.tenant)
    }

    fn contains(&self, page: PageNumber) -> bool {
        CpuBackend::contains(self, page)
    }

    fn compact(&self) -> CompactReport {
        CpuBackend::compact(self)
    }

    fn stats(&self) -> BackendStats {
        CpuBackend::stats(self)
    }

    fn pool_stats(&self) -> ZpoolStats {
        CpuBackend::pool_stats(self)
    }
}

/// Returns the fill byte when every byte of `data` is identical.
#[must_use]
pub fn same_filled(data: &[u8]) -> Option<u8> {
    let (&first, rest) = data.split_first()?;
    rest.iter().all(|&b| b == first).then_some(first)
}

impl CpuInner {
    fn swap_out(&mut self, tenant: TenantId, page: PageNumber, data: &[u8]) -> Result<SwapOutcome> {
        if data.len() != PAGE_SIZE {
            return Err(Error::InvalidConfig(format!(
                "swap_out requires a 4 KiB page, got {} bytes",
                data.len()
            )));
        }
        if self.table.contains(page) {
            return Err(Error::EntryExists { page: page.index() });
        }
        let sw = self.telemetry.as_ref().map(|_| Stopwatch::start());

        // zswap's same-filled-page check runs before compression: a page
        // of one repeated byte stores just that byte.
        if let Some(fill) = same_filled(data) {
            let handle = self.pool.alloc_faulted(&[fill], self.faults.as_deref())?;
            self.table.insert(
                page,
                SfmEntry {
                    handle,
                    compressed_len: 1,
                    codec: CodecKind::SameFilled,
                    checksum: xfm_faults::checksum(&[fill]),
                    tenant,
                },
            )?;
            let outcome = SwapOutcome {
                executed_on: ExecutedOn::Cpu,
                compressed_len: 1,
                // The scan costs roughly one pass over the page.
                cpu_cycles: Cycles::new(PAGE_SIZE as u64),
                ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64 + 1),
            };
            self.stats.record(&outcome, true);
            if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
                let total = sw.elapsed_ns();
                t.swap_outs.inc();
                t.same_filled.inc();
                t.cpu_executions.inc();
                t.swap_out_ns.record(total);
                t.span(
                    SwapStage::Compress,
                    page.index(),
                    0,
                    total,
                    Cause::SameFilled,
                );
            }
            return Ok(outcome);
        }

        self.comp_buf.clear();
        let csw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        self.codec
            .compress_into(data, &mut self.comp_buf, &mut self.scratch)?;
        let compress_ns = csw.map_or(0, |s| s.elapsed_ns());
        let cycles = self.cost.compress_cycles(PAGE_SIZE as u64);
        let (bytes, codec_kind): (&[u8], CodecKind) =
            if self.comp_buf.len() > self.config.max_compressed_len() {
                // zswap-style reject: store raw; compression cycles were
                // still spent discovering that.
                self.stats.stored_raw += 1;
                (data, CodecKind::Raw)
            } else {
                (&self.comp_buf, self.codec.kind())
            };

        // Allocate; on full, compact once and retry (the paper's
        // swapOut() "initiates an internal compaction operation if the
        // SFM capacity limit is hit").
        let mut extra_ddr = ByteSize::ZERO;
        let ssw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        let handle = match self.pool.alloc_faulted(bytes, self.faults.as_deref()) {
            Ok(h) => h,
            Err(Error::SfmRegionFull) => {
                let report = self.pool.compact();
                extra_ddr += report.moved_bytes * 2; // memcpy: read + write
                match self.pool.alloc_faulted(bytes, self.faults.as_deref()) {
                    Ok(h) => h,
                    Err(e) => {
                        self.stats.rejected_full += 1;
                        if let Some(t) = &self.telemetry {
                            t.span(
                                SwapStage::ZpoolStore,
                                page.index(),
                                0,
                                ssw.map_or(0, |s| s.elapsed_ns()),
                                Cause::RegionFull,
                            );
                        }
                        return Err(e);
                    }
                }
            }
            Err(e) => return Err(e),
        };
        let store_ns = ssw.map_or(0, |s| s.elapsed_ns());
        self.table.insert(
            page,
            SfmEntry {
                handle,
                compressed_len: bytes.len() as u32,
                codec: codec_kind,
                checksum: xfm_faults::checksum(bytes),
                tenant,
            },
        )?;

        let outcome = SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: bytes.len() as u32,
            cpu_cycles: cycles,
            // Cold page read + compressed write, plus any compaction copies.
            ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64 + bytes.len() as u64) + extra_ddr,
        };
        self.stats.record(&outcome, true);
        if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
            let total = sw.elapsed_ns();
            let cause = if matches!(codec_kind, CodecKind::Raw) {
                t.stored_raw.inc();
                Cause::StoredRaw
            } else {
                Cause::Ok
            };
            t.swap_outs.inc();
            t.cpu_executions.inc();
            t.compress_ns.record(compress_ns);
            t.zpool_store_ns.record(store_ns);
            t.swap_out_ns.record(total);
            t.span(SwapStage::Compress, page.index(), 0, compress_ns, cause);
            t.span(
                SwapStage::ZpoolStore,
                page.index(),
                compress_ns,
                store_ns,
                Cause::Ok,
            );
        }
        Ok(outcome)
    }

    fn swap_in_into(
        &mut self,
        page: PageNumber,
        _do_offload: bool,
        out: &mut Vec<u8>,
    ) -> Result<SwapOutcome> {
        let sw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        let entry = *self
            .table
            .get(page)
            .ok_or(Error::EntryNotFound { page: page.index() })?;
        let mut fetch_ns = 0u64;
        let mut decomp_ns = 0u64;
        out.clear();
        // Decompress straight out of the pool's arena slice — the
        // compressed bytes are never copied. The slot is freed after the
        // borrow ends, even when decoding fails.
        let decoded: Result<Cycles> = {
            let compressed = self.pool.get(entry.handle)?;
            if let Some(sw) = &sw {
                fetch_ns = sw.elapsed_ns();
            }
            // Verify before decoding. The checksum covers the bytes as
            // fetched — an injected flip models in-transit corruption —
            // so on mismatch the stored copy is still pristine and the
            // error is retryable: entry and slot stay untouched.
            let got = match self
                .faults
                .as_deref()
                .and_then(|f| f.fire_value(FaultSite::BitCorruption))
            {
                Some(v) => {
                    let mut fetched = compressed.to_vec();
                    let bit = (v % (fetched.len() as u64 * 8)) as usize;
                    fetched[bit / 8] ^= 1 << (bit % 8);
                    xfm_faults::checksum(&fetched)
                }
                None => xfm_faults::checksum(compressed),
            };
            if got != entry.checksum {
                if let Some(t) = &self.telemetry {
                    t.span(
                        SwapStage::Fetch,
                        page.index(),
                        0,
                        fetch_ns,
                        Cause::ChecksumMismatch,
                    );
                }
                return Err(Error::ChecksumMismatch {
                    page: page.index(),
                    expected: entry.checksum,
                    got,
                });
            }
            match entry.codec {
                CodecKind::SameFilled => {
                    out.resize(PAGE_SIZE, compressed[0]);
                    Ok(Cycles::new(PAGE_SIZE as u64))
                }
                CodecKind::Raw => {
                    out.extend_from_slice(compressed);
                    Ok(Cycles::ZERO)
                }
                _ => {
                    let dsw = sw.map(|_| Stopwatch::start());
                    match self
                        .codec
                        .decompress_into(compressed, out, &mut self.scratch)
                    {
                        Ok(_) if out.len() != PAGE_SIZE => Err(Error::Corrupt(format!(
                            "page {page} decompressed to {} bytes",
                            out.len()
                        ))),
                        Ok(_) => {
                            decomp_ns = dsw.map_or(0, |s| s.elapsed_ns());
                            Ok(self.cost.decompress_cycles(PAGE_SIZE as u64))
                        }
                        Err(e) => Err(e),
                    }
                }
            }
        };
        self.table.remove(page)?;
        self.pool.free(entry.handle)?;
        let cycles = decoded?;

        let outcome = SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: entry.compressed_len,
            cpu_cycles: cycles,
            // Compressed read + restored page write.
            ddr_bytes: ByteSize::from_bytes(u64::from(entry.compressed_len) + PAGE_SIZE as u64),
        };
        self.stats.record(&outcome, false);
        if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
            let total = sw.elapsed_ns();
            let cause = match entry.codec {
                CodecKind::SameFilled => Cause::SameFilled,
                CodecKind::Raw => Cause::StoredRaw,
                _ => Cause::Ok,
            };
            t.swap_ins.inc();
            t.cpu_executions.inc();
            t.zpool_load_ns.record(fetch_ns);
            t.swap_in_ns.record(total);
            t.span(SwapStage::Fault, page.index(), 0, total, cause);
            t.span(SwapStage::Fetch, page.index(), 0, fetch_ns, Cause::Ok);
            if !matches!(cause, Cause::SameFilled | Cause::StoredRaw) {
                t.decompress_ns.record(decomp_ns);
                t.span(
                    SwapStage::Decompress,
                    page.index(),
                    fetch_ns,
                    decomp_ns,
                    Cause::Ok,
                );
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfm_compress::Corpus;

    fn page_of(corpus: Corpus, seed: u64) -> Vec<u8> {
        corpus.generate(seed, PAGE_SIZE)
    }

    fn backend() -> CpuBackend {
        CpuBackend::new(SfmConfig {
            region_capacity: ByteSize::from_mib(4),
            ..SfmConfig::default()
        })
    }

    #[test]
    fn swap_round_trip_preserves_data() {
        let b = backend();
        for (i, corpus) in Corpus::all().iter().enumerate() {
            let page = page_of(*corpus, i as u64);
            b.swap_out(PageNumber::new(i as u64), &page).unwrap();
            assert!(b.contains(PageNumber::new(i as u64)));
            let (restored, _) = b.swap_in(PageNumber::new(i as u64), false).unwrap();
            assert_eq!(restored, page, "{}", corpus.name());
            assert!(!b.contains(PageNumber::new(i as u64)));
        }
    }

    #[test]
    fn ddr_traffic_matches_four_component_model() {
        let b = backend();
        let page = page_of(Corpus::Json, 1);
        let out = b.swap_out(PageNumber::new(1), &page).unwrap();
        let c = u64::from(out.compressed_len);
        assert_eq!(out.ddr_bytes.as_bytes(), 4096 + c);
        let (_, inn) = b.swap_in(PageNumber::new(1), false).unwrap();
        assert_eq!(inn.ddr_bytes.as_bytes(), c + 4096);
        // Over the round trip: compressed read+write plus page read+write.
        assert_eq!(b.stats().ddr_bytes.as_bytes(), 2 * 4096 + 2 * c);
    }

    #[test]
    fn incompressible_page_stored_raw() {
        let b = backend();
        let page = page_of(Corpus::RandomBytes, 2);
        let out = b.swap_out(PageNumber::new(9), &page).unwrap();
        assert_eq!(out.compressed_len as usize, PAGE_SIZE);
        assert_eq!(b.stats().stored_raw, 1);
        let (restored, _) = b.swap_in(PageNumber::new(9), false).unwrap();
        assert_eq!(restored, page);
    }

    #[test]
    fn double_swap_out_rejected() {
        let b = backend();
        let page = page_of(Corpus::Csv, 3);
        b.swap_out(PageNumber::new(4), &page).unwrap();
        assert!(matches!(
            b.swap_out(PageNumber::new(4), &page),
            Err(Error::EntryExists { page: 4 })
        ));
    }

    #[test]
    fn swap_in_of_missing_page_rejected() {
        let b = backend();
        assert!(matches!(
            b.swap_in(PageNumber::new(11), false),
            Err(Error::EntryNotFound { page: 11 })
        ));
    }

    #[test]
    fn wrong_size_page_rejected() {
        let b = backend();
        assert!(b.swap_out(PageNumber::new(1), &[0u8; 100]).is_err());
    }

    #[test]
    fn region_full_rejects_after_compaction_attempt() {
        // Tiny region: two raw pages fill it.
        let b = CpuBackend::new(SfmConfig {
            region_capacity: ByteSize::from_pages(2),
            ..SfmConfig::default()
        });
        let p = page_of(Corpus::RandomBytes, 7);
        b.swap_out(PageNumber::new(0), &p).unwrap();
        let p2 = page_of(Corpus::RandomBytes, 8);
        b.swap_out(PageNumber::new(1), &p2).unwrap();
        let p3 = page_of(Corpus::RandomBytes, 9);
        assert!(matches!(
            b.swap_out(PageNumber::new(2), &p3),
            Err(Error::SfmRegionFull)
        ));
        assert_eq!(b.stats().rejected_full, 1);
        // Swapping one in frees room again.
        b.swap_in(PageNumber::new(0), false).unwrap();
        b.swap_out(PageNumber::new(2), &p3).unwrap();
    }

    #[test]
    fn cpu_cycles_charged_for_codec_work() {
        let b = backend();
        let page = page_of(Corpus::EnglishText, 5);
        b.swap_out(PageNumber::new(1), &page).unwrap();
        b.swap_in(PageNumber::new(1), false).unwrap();
        // paper average: 7.65 cycles/byte each way on 4096 bytes.
        let expected = (7.65 * 4096.0) as u64;
        let cycles = b.stats().cpu_cycles.count();
        assert!(
            cycles >= 2 * expected - 10 && cycles <= 2 * expected + 10,
            "cycles {cycles}"
        );
    }

    #[test]
    fn same_filled_pages_store_one_byte() {
        let b = backend();
        for (i, fill) in [(0u64, 0u8), (1, 0xff), (2, 0x5a)] {
            let page = vec![fill; PAGE_SIZE];
            let out = b.swap_out(PageNumber::new(i), &page).unwrap();
            assert_eq!(out.compressed_len, 1, "fill {fill:#x}");
            let (restored, _) = b.swap_in(PageNumber::new(i), false).unwrap();
            assert_eq!(restored, page);
        }
        // An almost-same-filled page goes through the codec instead.
        let mut page = vec![7u8; PAGE_SIZE];
        page[4095] = 8;
        let out = b.swap_out(PageNumber::new(9), &page).unwrap();
        assert!(out.compressed_len > 1);
        let (restored, _) = b.swap_in(PageNumber::new(9), false).unwrap();
        assert_eq!(restored, page);
    }

    #[test]
    fn same_filled_detector() {
        assert_eq!(same_filled(&[3, 3, 3]), Some(3));
        assert_eq!(same_filled(&[3, 3, 4]), None);
        assert_eq!(same_filled(&[9]), Some(9));
        assert_eq!(same_filled(&[]), None);
    }

    #[test]
    fn swap_plane_surface_round_trips() {
        let b = backend();
        let plane: &dyn SwapPlane = &b;
        let page = page_of(Corpus::Json, 4);
        plane.swap_out(PageNumber::new(3), &page).unwrap();
        assert!(plane.contains(PageNumber::new(3)));
        let mut out = Vec::new();
        plane
            .swap_in_into(PageNumber::new(3), false, &mut out)
            .unwrap();
        assert_eq!(out, page);
        assert_eq!(plane.stats().swap_outs, 1);
    }

    #[test]
    fn swap_plane_errors_carry_site_and_retryability() {
        let b = backend();
        let plane: &dyn SwapPlane = &b;
        let err = plane.swap_in(PageNumber::new(11), false).unwrap_err();
        assert_eq!(err.site, xfm_types::SwapSite::EntryTable);
        assert!(!err.retryable);
    }

    #[test]
    fn tenant_attribution_round_trips() {
        let b = backend();
        let plane: &dyn SwapPlane = &b;
        let ctx = OpContext::for_tenant(TenantId::new(4));
        let page = page_of(Corpus::Json, 6);
        let out = plane.swap_out_ctx(&ctx, PageNumber::new(1), &page).unwrap();
        assert_eq!(plane.tenant_of(PageNumber::new(1)), Some(TenantId::new(4)));
        assert_eq!(
            plane.tenant_usage(),
            vec![(TenantId::new(4), u64::from(out.compressed_len))]
        );
        // Context-free ops bill the system tenant.
        plane
            .swap_out(PageNumber::new(2), &page_of(Corpus::Csv, 7))
            .unwrap();
        assert_eq!(plane.tenant_of(PageNumber::new(2)), Some(TenantId::SYSTEM));
        // Consuming the entry returns the bytes to the owner's account.
        let mut buf = Vec::new();
        plane
            .swap_in_into_ctx(&ctx, PageNumber::new(1), false, &mut buf)
            .unwrap();
        assert_eq!(plane.tenant_usage().len(), 1);
        assert_eq!(plane.tenant_usage()[0].0, TenantId::SYSTEM);
    }

    #[test]
    fn telemetry_records_cpu_swap_path() {
        let registry = Registry::new();
        let mut b = backend();
        b.attach_telemetry(&registry);
        // One compressible, one same-filled, one incompressible page.
        b.swap_out(PageNumber::new(0), &page_of(Corpus::Json, 1))
            .unwrap();
        b.swap_out(PageNumber::new(1), &vec![9u8; PAGE_SIZE])
            .unwrap();
        b.swap_out(PageNumber::new(2), &page_of(Corpus::RandomBytes, 2))
            .unwrap();
        for i in 0..3 {
            b.swap_in(PageNumber::new(i), false).unwrap();
        }
        let s = registry.snapshot();
        assert_eq!(s.counters["xfm_swap_outs_total"], 3);
        assert_eq!(s.counters["xfm_swap_ins_total"], 3);
        assert_eq!(s.counters["xfm_cpu_executions_total"], 6);
        assert_eq!(s.counters["xfm_same_filled_total"], 1);
        assert_eq!(s.counters["xfm_stored_raw_total"], 1);
        assert_eq!(
            s.counters
                .get("xfm_nma_executions_total")
                .copied()
                .unwrap_or(0),
            0
        );
        assert_eq!(s.histograms["xfm_swap_out_latency_ns"].count, 3);
        assert_eq!(s.histograms["xfm_swap_in_latency_ns"].count, 3);
        // Only the codec-compressed page exercises compress/decompress
        // (raw pages still pass through compress_into to discover they
        // don't fit, so compress has 2 samples; decompress has 1).
        assert_eq!(s.histograms["xfm_compress_latency_ns"].count, 2);
        assert_eq!(s.histograms["xfm_decompress_latency_ns"].count, 1);
        assert!(!s.spans.is_empty());
        assert!(s
            .spans
            .iter()
            .any(|sp| matches!(sp.cause, Cause::SameFilled)));
    }

    #[test]
    fn unattached_cpu_backend_behaves_identically() {
        let registry = Registry::new();
        let plain = backend();
        let mut traced = backend();
        traced.attach_telemetry(&registry);
        for (i, corpus) in Corpus::all().iter().enumerate() {
            let page = page_of(*corpus, i as u64);
            let a = plain.swap_out(PageNumber::new(i as u64), &page).unwrap();
            let b = traced.swap_out(PageNumber::new(i as u64), &page).unwrap();
            assert_eq!(a, b);
            let (da, oa) = plain.swap_in(PageNumber::new(i as u64), false).unwrap();
            let (db, ob) = traced.swap_in(PageNumber::new(i as u64), false).unwrap();
            assert_eq!(da, db);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn pool_stats_reflect_occupancy() {
        let b = backend();
        let page = page_of(Corpus::ZeroPage, 0);
        b.swap_out(PageNumber::new(1), &page).unwrap();
        let s = b.pool_stats();
        assert_eq!(s.objects, 1);
        assert!(s.stored_bytes.as_bytes() < 200);
    }
}
