//! The SFM entry table.
//!
//! Maps swapped-out page numbers to their compressed storage. The paper's
//! `xfm_swap_out()` "performs a lookup in an internal red-black tree to
//! find the associated physical address of the compressed page entry";
//! Rust's `BTreeMap` plays that role here.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use xfm_types::{ByteSize, Error, PageNumber, Result, TenantId};

use xfm_compress::CodecKind;

use crate::zpool::Handle;

/// Metadata for one compressed page resident in the SFM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SfmEntry {
    /// Location in the zpool.
    pub handle: Handle,
    /// Compressed length in bytes.
    pub compressed_len: u32,
    /// Codec used (or [`CodecKind::Raw`] for incompressible pages).
    pub codec: CodecKind,
    /// XXH64 checksum of the stored bytes, computed at swap-out and
    /// verified at swap-in so in-transit corruption surfaces as a
    /// retryable [`Error::ChecksumMismatch`] instead of a garbage page.
    pub checksum: u64,
    /// Tenant whose account holds this entry's compressed bytes: the
    /// accounting is debited back to this owner when the entry is
    /// consumed, regardless of who issues the swap-in.
    pub tenant: TenantId,
}

/// Ordered page-number → entry map.
///
/// # Examples
///
/// ```
/// use xfm_sfm::{SfmTable, SfmEntry, Zpool};
/// use xfm_compress::CodecKind;
/// use xfm_types::{ByteSize, PageNumber, TenantId};
///
/// let mut pool = Zpool::new(ByteSize::from_mib(1));
/// let handle = pool.alloc(&[0u8; 100])?;
/// let mut table = SfmTable::new();
/// table.insert(PageNumber::new(3), SfmEntry {
///     handle,
///     compressed_len: 100,
///     codec: CodecKind::Xlz,
///     checksum: xfm_faults::checksum(&[0u8; 100]),
///     tenant: TenantId::SYSTEM,
/// })?;
/// assert!(table.get(PageNumber::new(3)).is_some());
/// # Ok::<(), xfm_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SfmTable {
    entries: BTreeMap<u64, SfmEntry>,
}

impl SfmTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entry for `page`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EntryExists`] if the page is already swapped out —
    /// the backend must never double-compress a page.
    pub fn insert(&mut self, page: PageNumber, entry: SfmEntry) -> Result<()> {
        if self.entries.contains_key(&page.index()) {
            return Err(Error::EntryExists { page: page.index() });
        }
        self.entries.insert(page.index(), entry);
        Ok(())
    }

    /// Looks up the entry for `page`.
    #[must_use]
    pub fn get(&self, page: PageNumber) -> Option<&SfmEntry> {
        self.entries.get(&page.index())
    }

    /// Removes and returns the entry for `page`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EntryNotFound`] if the page is not in the SFM.
    pub fn remove(&mut self, page: PageNumber) -> Result<SfmEntry> {
        self.entries
            .remove(&page.index())
            .ok_or(Error::EntryNotFound { page: page.index() })
    }

    /// Whether `page` is currently swapped out.
    #[must_use]
    pub fn contains(&self, page: PageNumber) -> bool {
        self.entries.contains_key(&page.index())
    }

    /// Number of swapped-out pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of compressed lengths across entries.
    #[must_use]
    pub fn compressed_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(
            self.entries
                .values()
                .map(|e| u64::from(e.compressed_len))
                .sum(),
        )
    }

    /// Uncompressed capacity represented (entries × 4 KiB) — the
    /// "extra memory" the SFM provides.
    #[must_use]
    pub fn represented_bytes(&self) -> ByteSize {
        ByteSize::from_pages(self.entries.len() as u64)
    }

    /// Iterates over `(page, entry)` pairs in page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageNumber, &SfmEntry)> {
        self.entries.iter().map(|(&p, e)| (PageNumber::new(p), e))
    }

    /// Sum of compressed lengths grouped by owning tenant, sorted by
    /// tenant id. Derived from the resident entries, so it can neither
    /// leak nor double-count: an entry either exists (billed to its
    /// owner) or it does not.
    #[must_use]
    pub fn tenant_bytes(&self) -> Vec<(TenantId, u64)> {
        let mut per: BTreeMap<TenantId, u64> = BTreeMap::new();
        for e in self.entries.values() {
            *per.entry(e.tenant).or_insert(0) += u64::from(e.compressed_len);
        }
        per.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(len: u32) -> SfmEntry {
        // Handles here are synthetic: table tests don't need a real pool.
        let mut pool = crate::zpool::Zpool::new(ByteSize::from_mib(1));
        let data = vec![0u8; len as usize];
        let handle = pool.alloc(&data).unwrap();
        SfmEntry {
            handle,
            compressed_len: len,
            codec: CodecKind::XDeflate,
            checksum: xfm_faults::checksum(&data),
            tenant: TenantId::SYSTEM,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut t = SfmTable::new();
        t.insert(PageNumber::new(1), entry(128)).unwrap();
        assert!(t.contains(PageNumber::new(1)));
        assert_eq!(t.get(PageNumber::new(1)).unwrap().compressed_len, 128);
        let e = t.remove(PageNumber::new(1)).unwrap();
        assert_eq!(e.compressed_len, 128);
        assert!(t.is_empty());
    }

    #[test]
    fn double_insert_rejected() {
        let mut t = SfmTable::new();
        t.insert(PageNumber::new(5), entry(64)).unwrap();
        assert!(matches!(
            t.insert(PageNumber::new(5), entry(64)),
            Err(Error::EntryExists { page: 5 })
        ));
    }

    #[test]
    fn remove_missing_rejected() {
        let mut t = SfmTable::new();
        assert!(matches!(
            t.remove(PageNumber::new(9)),
            Err(Error::EntryNotFound { page: 9 })
        ));
    }

    #[test]
    fn byte_accounting() {
        let mut t = SfmTable::new();
        t.insert(PageNumber::new(1), entry(1000)).unwrap();
        t.insert(PageNumber::new(2), entry(500)).unwrap();
        assert_eq!(t.compressed_bytes().as_bytes(), 1500);
        assert_eq!(t.represented_bytes().as_bytes(), 8192);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tenant_bytes_groups_by_owner() {
        let mut t = SfmTable::new();
        for (p, tenant, len) in [(1u64, 1u16, 100u32), (2, 2, 50), (3, 1, 25)] {
            let mut e = entry(len);
            e.tenant = TenantId::new(tenant);
            t.insert(PageNumber::new(p), e).unwrap();
        }
        assert_eq!(
            t.tenant_bytes(),
            vec![(TenantId::new(1), 125), (TenantId::new(2), 50)]
        );
        t.remove(PageNumber::new(2)).unwrap();
        assert_eq!(t.tenant_bytes(), vec![(TenantId::new(1), 125)]);
    }

    #[test]
    fn iteration_is_page_ordered() {
        let mut t = SfmTable::new();
        for p in [9u64, 1, 5] {
            t.insert(PageNumber::new(p), entry(64)).unwrap();
        }
        let pages: Vec<u64> = t.iter().map(|(p, _)| p.index()).collect();
        assert_eq!(pages, vec![1, 5, 9]);
    }
}
