//! The SFM controller: cold-page selection and promotion-rate tracking.
//!
//! Production control planes scan for cold pages (Google's kstaled-style
//! scanner classifies a page cold after 120 s without access, which their
//! fleet data says marks ~30% of memory cold at a ~15% promotion rate;
//! paper §2.1/§3.1). This model keeps a resident-set age table, emits
//! swap-out candidates on scan, and measures the realized *promotion
//! rate* — the percentage of far memory accessed per minute (EQ1's
//! `PromotionRate`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use xfm_types::{ByteSize, Nanos, PageNumber};

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColdScanConfig {
    /// Idle time after which a page is classified cold (default 120 s).
    pub cold_threshold: Nanos,
    /// Maximum pages returned per scan (rate limiting, 0 = unlimited).
    pub scan_batch: usize,
}

impl Default for ColdScanConfig {
    fn default() -> Self {
        Self {
            cold_threshold: Nanos::from_secs(120),
            scan_batch: 0,
        }
    }
}

/// Promotion-rate measurement over a sliding one-minute window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PromotionStats {
    /// Bytes promoted (swapped in) during the last completed minute.
    pub promoted_last_minute: ByteSize,
    /// Far-memory footprint at the end of the last completed minute.
    pub far_bytes: ByteSize,
    /// Realized promotion rate (fraction of far memory accessed/minute).
    pub promotion_rate: f64,
    /// Completed measurement minutes.
    pub minutes: u64,
}

/// The SFM control plane.
///
/// # Examples
///
/// ```
/// use xfm_sfm::{ColdScanConfig, SfmController};
/// use xfm_types::{Nanos, PageNumber};
///
/// let mut ctl = SfmController::new(ColdScanConfig {
///     cold_threshold: Nanos::from_secs(2),
///     scan_batch: 0,
/// });
/// ctl.touch(PageNumber::new(1), Nanos::ZERO);
/// ctl.touch(PageNumber::new(2), Nanos::from_secs(3));
/// // Page 1 has been idle 3 s > 2 s threshold: it is a cold candidate.
/// let cold = ctl.scan(Nanos::from_secs(3));
/// assert_eq!(cold, vec![PageNumber::new(1)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SfmController {
    config: ColdScanConfig,
    /// Resident (local-memory) pages and their last access times.
    resident: BTreeMap<u64, Nanos>,
    /// Pages currently in far memory.
    far: BTreeMap<u64, ()>,
    /// Promotion accounting for the current minute.
    minute_start: Nanos,
    promoted_this_minute: u64,
    stats: PromotionStats,
}

impl SfmController {
    /// Creates a controller.
    #[must_use]
    pub fn new(config: ColdScanConfig) -> Self {
        Self {
            config,
            resident: BTreeMap::new(),
            far: BTreeMap::new(),
            minute_start: Nanos::ZERO,
            promoted_this_minute: 0,
            stats: PromotionStats::default(),
        }
    }

    /// Records an application access to `page` at `now`. Returns `true`
    /// if the page was in far memory (a promotion / swap-in fault).
    pub fn touch(&mut self, page: PageNumber, now: Nanos) -> bool {
        self.roll_minute(now);
        let was_far = self.far.remove(&page.index()).is_some();
        if was_far {
            self.promoted_this_minute += 1;
        }
        self.resident.insert(page.index(), now);
        was_far
    }

    /// Scans the resident set at `now`, returning pages idle longer than
    /// the cold threshold (oldest first) and moving them to the far set.
    /// The caller must actually `swap_out` each returned page.
    ///
    /// When [`ColdScanConfig::scan_batch`] is nonzero, at most that many
    /// pages are returned per scan — always the *oldest* cold pages —
    /// and the remainder stays resident, so consecutive scans drain the
    /// cold set in age order (rate-limited demotion). A batch of 0 means
    /// unlimited: every cold page is returned at once.
    pub fn scan(&mut self, now: Nanos) -> Vec<PageNumber> {
        self.roll_minute(now);
        let threshold = self.config.cold_threshold;
        let mut cold: Vec<(Nanos, u64)> = self
            .resident
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) >= threshold)
            .map(|(&p, &last)| (last, p))
            .collect();
        select_cold_batch(&mut cold, self.config.scan_batch);
        let pages: Vec<PageNumber> = cold.iter().map(|&(_, p)| PageNumber::new(p)).collect();
        for p in &pages {
            self.resident.remove(&p.index());
            self.far.insert(p.index(), ());
        }
        pages
    }

    /// Explicitly marks a page promoted out of far memory without an
    /// application access (controller-initiated prefetch).
    pub fn prefetch(&mut self, page: PageNumber, now: Nanos) -> bool {
        self.roll_minute(now);
        let was_far = self.far.remove(&page.index()).is_some();
        if was_far {
            self.promoted_this_minute += 1;
            self.resident.insert(page.index(), now);
        }
        was_far
    }

    fn roll_minute(&mut self, now: Nanos) {
        let minute = Nanos::from_secs(60);
        while now >= self.minute_start + minute {
            let far_bytes = ByteSize::from_pages(self.far.len() as u64);
            let promoted = ByteSize::from_pages(self.promoted_this_minute);
            self.stats = PromotionStats {
                promoted_last_minute: promoted,
                far_bytes,
                promotion_rate: if far_bytes.is_zero() {
                    0.0
                } else {
                    promoted.as_bytes() as f64 / far_bytes.as_bytes() as f64
                },
                minutes: self.stats.minutes + 1,
            };
            self.promoted_this_minute = 0;
            self.minute_start += minute;
        }
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Number of far-memory pages.
    #[must_use]
    pub fn far_pages(&self) -> usize {
        self.far.len()
    }

    /// Fraction of tracked pages currently classified cold (in far
    /// memory) — the metric Google's fleet study reports as ~30% at the
    /// 120 s threshold.
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        let total = self.resident.len() + self.far.len();
        if total == 0 {
            0.0
        } else {
            self.far.len() as f64 / total as f64
        }
    }

    /// Promotion statistics for the last completed minute.
    #[must_use]
    pub fn promotion_stats(&self) -> PromotionStats {
        self.stats
    }
}

/// Keeps the oldest `batch` candidates of `cold`, sorted oldest first.
///
/// `batch == 0` means unlimited: the whole set is kept (sorted). For a
/// nonzero batch this is a partial selection — `select_nth_unstable`
/// partitions in O(n), then only the kept prefix is sorted — so a
/// rate-limited scan over a huge resident set never pays a full sort.
/// Shared by [`SfmController::scan`] and the sharded scanner.
pub(crate) fn select_cold_batch(cold: &mut Vec<(Nanos, u64)>, batch: usize) {
    if batch > 0 && cold.len() > batch {
        cold.select_nth_unstable(batch - 1);
        cold.truncate(batch);
    }
    cold.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(threshold_secs: u64) -> SfmController {
        SfmController::new(ColdScanConfig {
            cold_threshold: Nanos::from_secs(threshold_secs),
            scan_batch: 0,
        })
    }

    #[test]
    fn recently_touched_pages_stay_resident() {
        let mut c = ctl(120);
        c.touch(PageNumber::new(1), Nanos::from_secs(100));
        assert!(c.scan(Nanos::from_secs(150)).is_empty());
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn idle_pages_go_cold_oldest_first() {
        let mut c = ctl(10);
        c.touch(PageNumber::new(1), Nanos::from_secs(0));
        c.touch(PageNumber::new(2), Nanos::from_secs(5));
        c.touch(PageNumber::new(3), Nanos::from_secs(14));
        let cold = c.scan(Nanos::from_secs(15));
        assert_eq!(cold, vec![PageNumber::new(1), PageNumber::new(2)]);
        assert_eq!(c.far_pages(), 2);
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn touch_of_far_page_is_a_promotion() {
        let mut c = ctl(1);
        c.touch(PageNumber::new(1), Nanos::ZERO);
        c.scan(Nanos::from_secs(2));
        assert!(c.touch(PageNumber::new(1), Nanos::from_secs(3)));
        assert_eq!(c.far_pages(), 0);
        assert!(!c.touch(PageNumber::new(1), Nanos::from_secs(4)));
    }

    #[test]
    fn scan_batch_limits_throughput() {
        let mut c = SfmController::new(ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 2,
        });
        for p in 0..5 {
            c.touch(PageNumber::new(p), Nanos::ZERO);
        }
        assert_eq!(c.scan(Nanos::from_secs(2)).len(), 2);
        assert_eq!(c.scan(Nanos::from_secs(2)).len(), 2);
        assert_eq!(c.scan(Nanos::from_secs(2)).len(), 1);
    }

    #[test]
    fn unlimited_scan_batch_returns_every_cold_page() {
        let mut c = ctl(1); // scan_batch: 0 (unlimited)
        for p in 0..100 {
            c.touch(PageNumber::new(p), Nanos::from_ms(p));
        }
        let cold = c.scan(Nanos::from_secs(5));
        assert_eq!(cold.len(), 100, "batch 0 must not rate-limit");
        // Oldest first: ascending last-touch time.
        let expect: Vec<_> = (0..100).map(PageNumber::new).collect();
        assert_eq!(cold, expect);
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.far_pages(), 100);
    }

    #[test]
    fn partial_scans_resume_in_age_order() {
        let mut c = SfmController::new(ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 3,
        });
        // Ten pages with distinct ages; page p last touched at p ms.
        for p in 0..10 {
            c.touch(PageNumber::new(p), Nanos::from_ms(p));
        }
        let now = Nanos::from_secs(2);
        // Each scan takes the three oldest *remaining* cold pages; the
        // rest stay resident and are picked up by the next scan.
        assert_eq!(c.scan(now), (0..3).map(PageNumber::new).collect::<Vec<_>>());
        assert_eq!(c.resident_pages(), 7);
        assert_eq!(c.scan(now), (3..6).map(PageNumber::new).collect::<Vec<_>>());
        assert_eq!(c.scan(now), (6..9).map(PageNumber::new).collect::<Vec<_>>());
        // Final partial batch drains the tail.
        assert_eq!(c.scan(now), vec![PageNumber::new(9)]);
        assert!(c.scan(now).is_empty());
        assert_eq!(c.far_pages(), 10);
    }

    #[test]
    fn retouch_between_partial_scans_requeues_the_page() {
        let mut c = SfmController::new(ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 2,
        });
        for p in 0..6 {
            c.touch(PageNumber::new(p), Nanos::from_ms(p));
        }
        assert_eq!(
            c.scan(Nanos::from_secs(2)),
            vec![PageNumber::new(0), PageNumber::new(1)]
        );
        // Page 2 is accessed before the scanner reaches it: it must not
        // appear in the next batch...
        c.touch(PageNumber::new(2), Nanos::from_secs(2));
        assert_eq!(
            c.scan(Nanos::from_secs(2)),
            vec![PageNumber::new(3), PageNumber::new(4)]
        );
        // ...but goes cold again once it re-ages past the threshold.
        assert_eq!(
            c.scan(Nanos::from_secs(4)),
            vec![PageNumber::new(5), PageNumber::new(2)]
        );
    }

    #[test]
    fn scan_batch_larger_than_cold_set_takes_everything() {
        let mut c = SfmController::new(ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 100,
        });
        for p in 0..4 {
            c.touch(PageNumber::new(p), Nanos::ZERO);
        }
        assert_eq!(c.scan(Nanos::from_secs(2)).len(), 4);
        assert!(c.scan(Nanos::from_secs(2)).is_empty());
    }

    #[test]
    fn promotion_rate_measured_per_minute() {
        let mut c = ctl(1);
        // Park 10 pages in far memory.
        for p in 0..10 {
            c.touch(PageNumber::new(p), Nanos::ZERO);
        }
        c.scan(Nanos::from_secs(2));
        assert_eq!(c.far_pages(), 10);
        // Promote 2 within the first minute.
        c.touch(PageNumber::new(0), Nanos::from_secs(10));
        c.touch(PageNumber::new(1), Nanos::from_secs(20));
        // Roll into the next minute.
        c.touch(PageNumber::new(0), Nanos::from_secs(61));
        let s = c.promotion_stats();
        assert_eq!(s.minutes, 1);
        assert_eq!(s.promoted_last_minute.as_pages(), 2);
        assert_eq!(s.far_bytes.as_pages(), 8);
        assert!((s.promotion_rate - 0.25).abs() < 1e-9);
    }

    #[test]
    fn prefetch_promotes_without_fault() {
        let mut c = ctl(1);
        c.touch(PageNumber::new(7), Nanos::ZERO);
        c.scan(Nanos::from_secs(2));
        assert!(c.prefetch(PageNumber::new(7), Nanos::from_secs(3)));
        assert_eq!(c.far_pages(), 0);
        assert!(!c.prefetch(PageNumber::new(7), Nanos::from_secs(4)));
    }

    #[test]
    fn cold_fraction_tracks_far_share() {
        let mut c = ctl(1);
        for p in 0..10 {
            c.touch(PageNumber::new(p), Nanos::ZERO);
        }
        // Re-touch 7 pages late so only 3 go cold.
        for p in 0..7 {
            c.touch(PageNumber::new(p), Nanos::from_secs(10));
        }
        c.scan(Nanos::from_secs(10));
        assert!((c.cold_fraction() - 0.3).abs() < 1e-9);
    }
}
