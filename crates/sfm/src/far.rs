//! The [`FarMemory<T>`] smart-pointer client API.
//!
//! Applications hold a `FarMemory<T>` instead of a `T`. While the
//! value is resident it behaves like a mutex-guarded local object;
//! after [`FarMemory::evict`] the value lives only in the swap plane
//! (any [`SwapPlane`] — the compressed zpool, a modeled SSD, a
//! replicated remote pair, or a whole [`TieredPlane`]
//! (`crate::tier::TieredPlane`) hierarchy), and the next access
//! **faults it back in** through the plane transparently. Dropping a
//! resident `FarMemory` writes the value back to the plane, so the
//! far copy is always the durable one.
//!
//! This is the Proxics/AIFM-style programming model reduced to its
//! core: deref-on-fault, explicit eviction, write-back on drop.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use xfm_event::ClockMirror;
//! use xfm_sfm::{FarMemory, MediaModel, ModeledPlane};
//! use xfm_types::PageNumber;
//!
//! let plane = Arc::new(ModeledPlane::new(
//!     "ssd", MediaModel::ssd(), 0, ClockMirror::new(),
//! ));
//! let far = FarMemory::new(plane, PageNumber::new(1), b"hello".to_vec());
//! far.evict()?; // value now lives only on the modeled SSD
//! assert!(!far.is_resident());
//! assert_eq!(&*far.get()?, b"hello"); // deref faults it back in
//! # Ok::<(), xfm_types::SwapError>(())
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use xfm_types::{PageNumber, SwapResult, PAGE_SIZE};

use crate::backend::SwapPlane;

/// A value that serializes to exactly one 4 KiB page.
///
/// Payloads smaller than a page are padded; [`FarObject::to_page`]
/// must panic if the value cannot fit (smart pointers own one page).
pub trait FarObject: Send {
    /// Serializes the value into a `PAGE_SIZE`-byte buffer.
    fn to_page(&self) -> Vec<u8>;
    /// Reconstructs the value from a page produced by
    /// [`FarObject::to_page`].
    fn from_page(data: &[u8]) -> Self;
}

/// Length-prefixed bytes: up to `PAGE_SIZE - 8` of payload.
impl FarObject for Vec<u8> {
    fn to_page(&self) -> Vec<u8> {
        assert!(
            self.len() <= PAGE_SIZE - 8,
            "Vec<u8> of {} bytes exceeds one page",
            self.len()
        );
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(&(self.len() as u64).to_le_bytes());
        page[8..8 + self.len()].copy_from_slice(self);
        page
    }

    fn from_page(data: &[u8]) -> Self {
        let len = u64::from_le_bytes(data[..8].try_into().expect("page header")) as usize;
        data[8..8 + len].to_vec()
    }
}

/// UTF-8 text: up to `PAGE_SIZE - 8` encoded bytes.
impl FarObject for String {
    fn to_page(&self) -> Vec<u8> {
        self.as_bytes().to_vec().to_page()
    }

    fn from_page(data: &[u8]) -> Self {
        String::from_utf8(Vec::<u8>::from_page(data)).expect("stored page held valid UTF-8")
    }
}

/// Fixed-size byte blocks up to one full page, zero-padded.
impl<const N: usize> FarObject for [u8; N] {
    fn to_page(&self) -> Vec<u8> {
        assert!(N <= PAGE_SIZE, "[u8; {N}] exceeds one page");
        let mut page = vec![0u8; PAGE_SIZE];
        page[..N].copy_from_slice(self);
        page
    }

    fn from_page(data: &[u8]) -> Self {
        data[..N].try_into().expect("page shorter than N")
    }
}

/// A smart pointer whose pointee can live in far memory.
///
/// See the [module docs](self). All methods take `&self`; residency
/// is guarded by a mutex, so one `FarMemory` can be shared across
/// threads behind an `Arc`.
pub struct FarMemory<T: FarObject> {
    plane: Arc<dyn SwapPlane>,
    page: PageNumber,
    resident: Mutex<Option<T>>,
}

impl<T: FarObject> FarMemory<T> {
    /// Wraps `value`, resident, backed by `plane` under `page`.
    ///
    /// The page number is the object's identity on the plane; two live
    /// `FarMemory` values must not share one.
    #[must_use]
    pub fn new(plane: Arc<dyn SwapPlane>, page: PageNumber, value: T) -> Self {
        Self {
            plane,
            page,
            resident: Mutex::new(Some(value)),
        }
    }

    /// Adopts a value that already lives on the plane (not resident).
    #[must_use]
    pub fn from_far(plane: Arc<dyn SwapPlane>, page: PageNumber) -> Self {
        Self {
            plane,
            page,
            resident: Mutex::new(None),
        }
    }

    /// The page number identifying this object on the plane.
    #[must_use]
    pub fn page(&self) -> PageNumber {
        self.page
    }

    /// Whether the value is currently resident in local memory.
    #[must_use]
    pub fn is_resident(&self) -> bool {
        self.resident.lock().is_some()
    }

    /// Writes the value out to the plane and drops the local copy.
    /// A no-op if already evicted.
    ///
    /// # Errors
    ///
    /// Any swap-out failure from the plane; the value stays resident.
    pub fn evict(&self) -> SwapResult<()> {
        let mut slot = self.resident.lock();
        let Some(value) = slot.take() else {
            return Ok(());
        };
        match self.plane.swap_out(self.page, &value.to_page()) {
            Ok(_) => Ok(()),
            Err(e) => {
                *slot = Some(value);
                Err(e)
            }
        }
    }

    /// Immutable access, faulting the value in if evicted.
    ///
    /// # Errors
    ///
    /// Any swap-in failure from the plane (e.g. the page was never
    /// stored, or every replica is down).
    pub fn get(&self) -> SwapResult<FarGuard<'_, T>> {
        Ok(FarGuard {
            inner: self.fault_in()?,
        })
    }

    /// Mutable access, faulting the value in if evicted.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FarMemory::get`].
    pub fn get_mut(&self) -> SwapResult<FarGuardMut<'_, T>> {
        Ok(FarGuardMut {
            inner: self.fault_in()?,
        })
    }

    fn fault_in(&self) -> SwapResult<MutexGuard<'_, Option<T>>> {
        let mut slot = self.resident.lock();
        if slot.is_none() {
            // Demand fault: the application is stalled on this value.
            let (data, _) = self.plane.swap_in(self.page, false)?;
            *slot = Some(T::from_page(&data));
        }
        Ok(slot)
    }
}

impl<T: FarObject> Drop for FarMemory<T> {
    /// Best-effort write-back: a resident value is flushed to the
    /// plane so the far copy survives the pointer. Failures are
    /// swallowed — drop cannot report them.
    fn drop(&mut self) {
        if let Some(value) = self.resident.lock().take() {
            let _ = self.plane.swap_out(self.page, &value.to_page());
        }
    }
}

/// Immutable residency guard returned by [`FarMemory::get`].
pub struct FarGuard<'a, T: FarObject> {
    inner: MutexGuard<'a, Option<T>>,
}

impl<T: FarObject> std::fmt::Debug for FarGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarGuard").finish_non_exhaustive()
    }
}

impl<T: FarObject> Deref for FarGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds a resident value")
    }
}

/// Mutable residency guard returned by [`FarMemory::get_mut`].
pub struct FarGuardMut<'a, T: FarObject> {
    inner: MutexGuard<'a, Option<T>>,
}

impl<T: FarObject> std::fmt::Debug for FarGuardMut<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarGuardMut").finish_non_exhaustive()
    }
}

impl<T: FarObject> Deref for FarGuardMut<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds a resident value")
    }
}

impl<T: FarObject> DerefMut for FarGuardMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds a resident value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeled::{MediaModel, ModeledPlane};
    use xfm_event::ClockMirror;
    use xfm_types::Error;

    fn ssd() -> Arc<ModeledPlane> {
        Arc::new(ModeledPlane::new(
            "ssd",
            MediaModel::ssd(),
            0,
            ClockMirror::new(),
        ))
    }

    #[test]
    fn evict_and_fault_round_trip() {
        let plane = ssd();
        let far = FarMemory::new(plane.clone(), PageNumber::new(1), b"payload".to_vec());
        assert!(far.is_resident());
        far.evict().unwrap();
        assert!(!far.is_resident());
        assert!(plane.contains(PageNumber::new(1)));
        assert_eq!(&*far.get().unwrap(), b"payload");
        assert!(far.is_resident());
        assert!(
            !plane.contains(PageNumber::new(1)),
            "fault consumed the far copy"
        );
    }

    #[test]
    fn mutation_survives_eviction_cycles() {
        let far = FarMemory::new(ssd(), PageNumber::new(2), String::from("v0"));
        for round in 1..4 {
            far.get_mut().unwrap().push_str(&format!("+v{round}"));
            far.evict().unwrap();
        }
        assert_eq!(&*far.get().unwrap(), "v0+v1+v2+v3");
    }

    #[test]
    fn drop_writes_back() {
        let plane = ssd();
        {
            let far = FarMemory::new(plane.clone(), PageNumber::new(3), [7u8; 64]);
            assert!(far.is_resident());
        }
        assert!(plane.contains(PageNumber::new(3)), "drop flushed the value");
        let adopted: FarMemory<[u8; 64]> = FarMemory::from_far(plane, PageNumber::new(3));
        assert_eq!(*adopted.get().unwrap(), [7u8; 64]);
    }

    #[test]
    fn double_evict_is_noop_and_missing_fault_errors() {
        let far: FarMemory<Vec<u8>> = FarMemory::from_far(ssd(), PageNumber::new(4));
        far.evict().unwrap();
        let err = far.get().unwrap_err();
        assert!(matches!(err.cause(), Error::EntryNotFound { .. }));
    }

    #[test]
    fn evicted_drop_does_not_duplicate() {
        let plane = ssd();
        {
            let far = FarMemory::new(plane.clone(), PageNumber::new(5), b"x".to_vec());
            far.evict().unwrap();
        }
        // Dropped while evicted: exactly the one stored copy remains.
        assert_eq!(plane.len(), 1);
    }
}
