//! Synthetic swap-trace generation.
//!
//! The paper's emulator replays swap-in/out traces "generated using the
//! AIFM userspace far memory framework when running a synthetic web
//! front-end application" (§7). This module substitutes an equivalent
//! generator: a Zipfian object-popularity stream over a paged working
//! set, with a bounded local-memory budget. Accesses to non-resident
//! pages produce [`SwapKind::In`] events; the displaced coldest resident
//! page produces a matching [`SwapKind::Out`] — in the steady state the
//! two rates are equal, exactly as §3.2 argues they must be.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xfm_types::{ByteSize, Nanos, PageNumber};

/// Direction of a swap event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwapKind {
    /// Page promoted into local memory (decompress).
    In,
    /// Page demoted to far memory (compress).
    Out,
}

/// One record in a swap trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapEvent {
    /// Event time.
    pub at: Nanos,
    /// Swap direction.
    pub kind: SwapKind,
    /// Page involved.
    pub page: PageNumber,
    /// `true` when the far-memory controller predicted this access
    /// (prefetchable swap-ins may be offloaded to the NMA; demand faults
    /// default to the CPU — paper §6 `do_offload`).
    pub prefetchable: bool,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Total distinct pages the application touches.
    pub working_set_pages: u64,
    /// Pages that fit in local memory (the rest live in the SFM).
    pub local_pages: u64,
    /// Zipf skew parameter (0 = uniform; web workloads ≈ 0.8–1.1).
    pub zipf_s: f64,
    /// Mean page accesses per second.
    pub accesses_per_sec: f64,
    /// Probability that a swap-in was predicted by the controller.
    pub prefetch_accuracy: f64,
    /// Trace duration.
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    /// A web-frontend-like default: 64 Ki pages (256 MiB), half local,
    /// s = 0.9, 10 k accesses/s, 70% prefetch accuracy, 10 s.
    fn default() -> Self {
        Self {
            working_set_pages: 64 * 1024,
            local_pages: 32 * 1024,
            zipf_s: 0.9,
            accesses_per_sec: 10_000.0,
            prefetch_accuracy: 0.7,
            duration: Nanos::from_secs(10),
            seed: 0xfa12_3456,
        }
    }
}

/// Zipfian swap-trace generator.
///
/// # Examples
///
/// ```
/// use xfm_sfm::{SwapKind, TraceConfig, TraceGenerator};
///
/// let trace = TraceGenerator::new(TraceConfig {
///     working_set_pages: 1024,
///     local_pages: 512,
///     duration: xfm_types::Nanos::from_secs(1),
///     ..TraceConfig::default()
/// })
/// .generate();
/// let ins = trace.iter().filter(|e| e.kind == SwapKind::In).count();
/// let outs = trace.iter().filter(|e| e.kind == SwapKind::Out).count();
/// // Steady state: every promotion displaces a page.
/// assert!(ins.abs_diff(outs) <= 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
    /// Zipf CDF over page ranks.
    cdf: Vec<f64>,
}

impl TraceGenerator {
    /// Builds a generator (precomputes the Zipf CDF).
    ///
    /// # Panics
    ///
    /// Panics if `working_set_pages` is zero or `local_pages` exceeds it.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.working_set_pages > 0,
            "working set must be non-empty"
        );
        assert!(
            config.local_pages <= config.working_set_pages,
            "local memory cannot exceed the working set"
        );
        let n = config.working_set_pages as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(config.zipf_s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { config, cdf }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    fn sample_page(&self, rng: &mut StdRng) -> PageNumber {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        PageNumber::new(idx.min(self.cdf.len() - 1) as u64)
    }

    /// Generates the full event trace, sorted by time.
    #[must_use]
    pub fn generate(&self) -> Vec<SwapEvent> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();

        // Resident set as a clock: page -> last access tick. Hot pages
        // (low ranks) start resident. BTreeMap keeps victim selection
        // deterministic (ties break toward the lowest page number).
        let mut resident: std::collections::BTreeMap<u64, u64> =
            (0..cfg.local_pages).map(|p| (p, 0)).collect();
        let mut tick = 0u64;

        let mean_gap = Nanos::from_ps((1e12 / cfg.accesses_per_sec) as u64);
        let mut now = Nanos::ZERO;
        while now < cfg.duration {
            // Exponential-ish interarrival (geometric over ps).
            let gap = Nanos::from_ps(
                (mean_gap.as_ps() as f64 * -f64::ln(1.0 - rng.gen::<f64>())).round() as u64,
            )
            .max(Nanos::from_ps(1));
            now += gap;
            if now >= cfg.duration {
                break;
            }
            tick += 1;
            let page = self.sample_page(&mut rng);
            if let std::collections::btree_map::Entry::Occupied(mut e) =
                resident.entry(page.index())
            {
                *e.get_mut() = tick;
                continue; // local hit: no swap traffic
            }
            // Miss: swap the page in, evict the coldest resident page.
            events.push(SwapEvent {
                at: now,
                kind: SwapKind::In,
                page,
                prefetchable: rng.gen_bool(cfg.prefetch_accuracy),
            });
            if resident.len() as u64 >= cfg.local_pages {
                let (&victim, _) = resident
                    .iter()
                    .min_by_key(|&(&p, &t)| (t, p))
                    .expect("resident set non-empty");
                resident.remove(&victim);
                events.push(SwapEvent {
                    at: now,
                    kind: SwapKind::Out,
                    page: PageNumber::new(victim),
                    // Demotions are always controller-scheduled.
                    prefetchable: true,
                });
            }
            resident.insert(page.index(), tick);
        }
        events
    }

    /// Total bytes swapped (each direction counts 4 KiB per event).
    #[must_use]
    pub fn traffic_bytes(trace: &[SwapEvent]) -> ByteSize {
        ByteSize::from_pages(trace.len() as u64)
    }

    /// Realized promotion rate of a trace: swapped-in bytes per minute
    /// over the far-memory capacity implied by the config.
    #[must_use]
    pub fn promotion_rate(&self, trace: &[SwapEvent]) -> f64 {
        let far_pages = self.config.working_set_pages - self.config.local_pages;
        if far_pages == 0 || self.config.duration.is_zero() {
            return 0.0;
        }
        let ins = trace.iter().filter(|e| e.kind == SwapKind::In).count() as f64;
        let minutes = self.config.duration.as_secs_f64() / 60.0;
        ins / minutes / far_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig {
            working_set_pages: 2048,
            local_pages: 1024,
            accesses_per_sec: 20_000.0,
            duration: Nanos::from_secs(2),
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = TraceGenerator::new(small_config()).generate();
        let b = TraceGenerator::new(small_config()).generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn events_are_time_ordered() {
        let trace = TraceGenerator::new(small_config()).generate();
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn steady_state_balances_ins_and_outs() {
        let trace = TraceGenerator::new(small_config()).generate();
        let ins = trace.iter().filter(|e| e.kind == SwapKind::In).count();
        let outs = trace.iter().filter(|e| e.kind == SwapKind::Out).count();
        assert!(ins.abs_diff(outs) <= 1, "ins {ins} outs {outs}");
    }

    #[test]
    fn zipf_skew_reduces_traffic() {
        // More skew -> more hits on the resident hot set -> fewer swaps.
        let skewed = TraceGenerator::new(TraceConfig {
            zipf_s: 1.2,
            ..small_config()
        })
        .generate();
        let uniform = TraceGenerator::new(TraceConfig {
            zipf_s: 0.0,
            ..small_config()
        })
        .generate();
        assert!(
            skewed.len() < uniform.len(),
            "skewed {} uniform {}",
            skewed.len(),
            uniform.len()
        );
    }

    #[test]
    fn prefetch_accuracy_respected_approximately() {
        let trace = TraceGenerator::new(TraceConfig {
            prefetch_accuracy: 1.0,
            ..small_config()
        })
        .generate();
        assert!(trace
            .iter()
            .filter(|e| e.kind == SwapKind::In)
            .all(|e| e.prefetchable));

        let trace = TraceGenerator::new(TraceConfig {
            prefetch_accuracy: 0.0,
            ..small_config()
        })
        .generate();
        assert!(trace
            .iter()
            .filter(|e| e.kind == SwapKind::In)
            .all(|e| !e.prefetchable));
    }

    #[test]
    fn promotion_rate_positive_for_thrashing_workload() {
        let gen = TraceGenerator::new(small_config());
        let trace = gen.generate();
        let pr = gen.promotion_rate(&trace);
        assert!(pr > 0.0, "promotion rate {pr}");
    }

    #[test]
    #[should_panic(expected = "local memory cannot exceed")]
    fn oversized_local_memory_rejected() {
        let _ = TraceGenerator::new(TraceConfig {
            working_set_pages: 10,
            local_pages: 20,
            ..TraceConfig::default()
        });
    }

    #[test]
    fn pages_in_events_are_within_working_set() {
        let cfg = small_config();
        let trace = TraceGenerator::new(cfg).generate();
        assert!(trace.iter().all(|e| e.page.index() < cfg.working_set_pages));
    }
}
