//! User-level software-defined far memory (SFM) stack.
//!
//! Re-creates the control plane the paper's §2.1/§6 describe — the part
//! that production systems build on Linux zswap — as a user-level library
//! (the same move the paper makes by integrating with AIFM):
//!
//! - [`zpool`] — a zsmalloc-like slab allocator that packs compressed
//!   pages into 4 KiB host pages using size classes, with explicit
//!   compaction (`memcpy`-cost accounted) to fight internal fragmentation;
//! - [`table`] — the SFM entry table mapping swapped-out page numbers to
//!   their compressed locations (the paper's red-black tree);
//! - [`backend`] — the [`SwapPlane`] trait: `swap_out` / `swap_in_into` /
//!   `swap_out_batch` / `compact` behind `&self`, with per-operation
//!   accounting (CPU cycles, DRAM traffic) and structured
//!   [`SwapError`](xfm_types::SwapError) results;
//! - [`cpu_backend`] — the Baseline-CPU backend: synchronous compression
//!   on the host, four DRAM traffic components per swap;
//! - [`controller`] — cold-page scanning (120 s idle threshold by
//!   default, per the Google fleet data) and promotion-rate tracking;
//! - [`sharded`] — the sharded concurrent swap data plane: the table,
//!   age table, and zpool striped into N lock-independent shards behind
//!   a `&self` front, with a batched swap-out pipeline feeding the
//!   `compress_pages` worker pool and a batched swap-in entry point
//!   decoding per shard through the codec's batch path;
//! - [`predictor`] — far-memory access predictors behind the
//!   [`Predictor`] trait: stride heuristic, online-logistic learned
//!   model, and a confidence-gated hybrid;
//! - [`prefetch`] — the [`PrefetchEngine`]: batched speculative
//!   swap-ins landed in a bounded staging cache the fault path consults
//!   before decompressing (hit = memcpy);
//! - [`autotune`] — a UCB bandit over control-plane knob settings,
//!   scored from live telemetry and frozen while the degrade ladder is
//!   active;
//! - [`modeled`] — latency/bandwidth-modeled SSD and remote-node swap
//!   planes on the `xfm-event` virtual clock, plus write-both/read-any
//!   replication with checksum-verified repair;
//! - [`tier`] — the [`TieredPlane`]: multiple [`SwapPlane`]s composed
//!   into a demotion hierarchy with per-tier capacity budgets,
//!   placement verdicts, and fault-driven promotion;
//! - [`far`] — the [`FarMemory<T>`](FarMemory) smart-pointer client
//!   API: deref faults pages in through any plane, drop writes back;
//! - [`trace`] — an AIFM-like synthetic swap-trace generator with
//!   Zipfian object popularity.
//!
//! # Examples
//!
//! ```
//! use xfm_sfm::{CpuBackend, SfmConfig};
//! use xfm_types::{ByteSize, PageNumber};
//!
//! let backend = CpuBackend::new(SfmConfig {
//!     region_capacity: ByteSize::from_mib(4),
//!     ..SfmConfig::default()
//! });
//! let page = vec![42u8; 4096];
//! backend.swap_out(PageNumber::new(7), &page)?;
//! let (restored, _) = backend.swap_in(PageNumber::new(7), false)?;
//! assert_eq!(restored, page);
//! # Ok::<(), xfm_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod backend;
pub mod controller;
pub mod cpu_backend;
pub mod far;
pub mod modeled;
pub mod predictor;
pub mod prefetch;
pub mod sharded;
pub mod table;
pub mod tier;
pub mod trace;
pub mod zpool;

pub use autotune::{AutoTuneConfig, AutoTuner, CodecBias, Knobs, TierBias};
pub use backend::{BackendStats, ExecutedOn, SfmConfig, SwapOutcome, SwapPlane};
pub use controller::{ColdScanConfig, PromotionStats, SfmController};
pub use cpu_backend::CpuBackend;
pub use far::{FarGuard, FarGuardMut, FarMemory, FarObject};
pub use modeled::{MediaModel, ModeledPlane, ReplicatedPlane};
pub use predictor::{
    HybridPredictor, LearnedPredictor, Predictor, PredictorStats, StridePredictor,
};
pub use prefetch::{PredictorKind, PrefetchConfig, PrefetchEngine, PumpReport};
pub use sharded::{ShardedSfm, ShardedSfmConfig};
pub use table::{SfmEntry, SfmTable};
pub use tier::{Placement, TierSpec, TierStats, TieredPlane};
pub use trace::{SwapEvent, SwapKind, TraceConfig, TraceGenerator};
pub use zpool::{CompactReport, Handle, Zpool, ZpoolStats};
