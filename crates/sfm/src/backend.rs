//! The [`SwapPlane`] trait and shared accounting types.
//!
//! A backend owns the SFM region (zpool + entry table) and executes
//! swap-outs (compress into far memory) and swap-ins (decompress back).
//! Three implementations exist in the workspace: the Baseline-CPU
//! backend ([`crate::cpu_backend::CpuBackend`]), the sharded concurrent
//! plane ([`crate::sharded::ShardedSfm`]), and the XFM backend in
//! `xfm-core`, which offloads to the near-memory accelerator and falls
//! back to the CPU when NMA resources are exhausted (paper §6). All
//! three sit behind [`SwapPlane`]: `&self` methods (interior
//! mutability), [`SwapResult`] errors that carry the failing
//! [`SwapSite`](xfm_types::SwapSite) and a retryability verdict.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use xfm_types::{ByteSize, Cycles, OpContext, PageNumber, SwapResult, TenantId, PAGE_SIZE};

/// Where a swap operation actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutedOn {
    /// The host CPU ran the codec (baseline, or XFM's `CPU_Fallback`).
    Cpu,
    /// The near-memory accelerator ran the codec during refresh windows.
    Nma,
}

/// Accounting record returned by every swap operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapOutcome {
    /// Who performed the (de)compression.
    pub executed_on: ExecutedOn,
    /// Compressed size of the page involved.
    pub compressed_len: u32,
    /// Host CPU cycles consumed (zero for NMA executions).
    pub cpu_cycles: Cycles,
    /// Bytes moved over the DDR channel for this operation. For a CPU
    /// swap-out this is read(4 KiB) + write(compressed); for NMA
    /// executions it is zero — the traffic rides the refresh side channel.
    pub ddr_bytes: ByteSize,
}

/// Aggregate statistics for a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BackendStats {
    /// Completed swap-outs.
    pub swap_outs: u64,
    /// Completed swap-ins.
    pub swap_ins: u64,
    /// Swap operations that executed on the NMA.
    pub nma_executions: u64,
    /// Swap operations that fell back to (or ran on) the CPU.
    pub cpu_executions: u64,
    /// Total host CPU cycles spent in codecs.
    pub cpu_cycles: Cycles,
    /// Total DDR-channel traffic caused by swap operations.
    pub ddr_bytes: ByteSize,
    /// Pages rejected because the region was full.
    pub rejected_full: u64,
    /// Pages stored raw because they did not compress.
    pub stored_raw: u64,
}

impl BackendStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: &SwapOutcome, is_out: bool) {
        if is_out {
            self.swap_outs += 1;
        } else {
            self.swap_ins += 1;
        }
        match outcome.executed_on {
            ExecutedOn::Cpu => self.cpu_executions += 1,
            ExecutedOn::Nma => self.nma_executions += 1,
        }
        self.cpu_cycles += outcome.cpu_cycles;
        self.ddr_bytes += outcome.ddr_bytes;
    }

    /// Fraction of operations that executed on the CPU (the paper's
    /// Fig. 12 "CPU fall backs" metric, for the XFM backend).
    #[must_use]
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.cpu_executions + self.nma_executions;
        if total == 0 {
            0.0
        } else {
            self.cpu_executions as f64 / total as f64
        }
    }
}

/// Configuration shared by SFM backends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SfmConfig {
    /// Capacity of the compressed region (zpool limit).
    pub region_capacity: ByteSize,
    /// Store the page raw when the compressed size exceeds this fraction
    /// of 4 KiB (zswap-style reject threshold).
    pub max_compressed_fraction: f64,
    /// CPU clock used to convert codec cycles into time.
    pub cpu_freq: xfm_types::Hertz,
}

impl SfmConfig {
    /// Largest acceptable compressed size under the reject threshold.
    #[must_use]
    pub fn max_compressed_len(&self) -> usize {
        (PAGE_SIZE as f64 * self.max_compressed_fraction) as usize
    }
}

impl Default for SfmConfig {
    /// 1 GiB region, 0.95 reject threshold, 2.6 GHz host (the paper's
    /// Xeon E5-2670 reference clock).
    fn default() -> Self {
        Self {
            region_capacity: ByteSize::from_gib(1),
            max_compressed_fraction: 0.95,
            cpu_freq: xfm_types::Hertz::from_ghz(2.6),
        }
    }
}

/// The unified swap data plane.
///
/// Implementors hold the compressed region; callers are the SFM
/// controller (policy) and applications (page faults). Every method
/// takes `&self` — implementations use interior mutability (a mutex, or
/// per-shard mutexes) — so one plane can be shared across threads and
/// behind `Arc` without wrapper locks at every call site. Failures come
/// back as [`SwapError`](xfm_types::SwapError), which names the failing
/// site and whether re-submitting the operation may succeed.
pub trait SwapPlane: Send + Sync {
    /// Compresses `data` (one 4 KiB page) into the SFM under `page`.
    ///
    /// # Errors
    ///
    /// - [`xfm_types::Error::EntryExists`] if the page is already out;
    /// - [`xfm_types::Error::SfmRegionFull`] if the region cannot hold it
    ///   even after compaction;
    /// - [`xfm_types::Error::InvalidConfig`] if `data` is not 4 KiB.
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome>;

    /// Decompresses `page` into the caller's reusable buffer (`out` is
    /// cleared first), removing the entry. With a warm buffer the
    /// steady-state fault performs zero heap allocations.
    ///
    /// `do_offload` mirrors the paper's parameter: when `false` (a
    /// demand fault) the CPU path is preferred because the application
    /// is stalled; when `true` (a prefetch) the NMA path may be used.
    ///
    /// # Errors
    ///
    /// - [`xfm_types::Error::EntryNotFound`] if the page is not in the
    ///   SFM;
    /// - [`xfm_types::Error::ChecksumMismatch`] if the fetched block
    ///   fails verification — retryable, the entry stays intact;
    /// - [`xfm_types::Error::Corrupt`] if stored data fails to
    ///   decompress (the entry is consumed).
    fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome>;

    /// Allocating convenience form of [`SwapPlane::swap_in_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SwapPlane::swap_in_into`].
    fn swap_in(&self, page: PageNumber, do_offload: bool) -> SwapResult<(Vec<u8>, SwapOutcome)> {
        let mut out = Vec::with_capacity(PAGE_SIZE);
        let outcome = self.swap_in_into(page, do_offload, &mut out)?;
        Ok((out, outcome))
    }

    /// Swaps out a batch of pages, returning per-page results in
    /// submission order. The default runs pages sequentially through
    /// [`SwapPlane::swap_out`]; concurrent planes override this to fan
    /// the codec work across worker threads (`threads` is a hint).
    ///
    /// # Errors
    ///
    /// A top-level error means the batch machinery itself failed;
    /// per-page conditions are reported in the inner results.
    fn swap_out_batch(
        &self,
        batch: &[(PageNumber, Bytes)],
        _threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        Ok(batch
            .iter()
            .map(|(page, data)| self.swap_out(*page, data))
            .collect())
    }

    /// Swaps in a batch of pages into the caller's reusable buffers,
    /// returning per-page results in submission order (`pages[i]` lands
    /// in `outs[i]`). The speculative prefetch engine issues its
    /// claim batches through this entry point. The default runs pages
    /// sequentially through [`SwapPlane::swap_in_into`] with
    /// `do_offload = true` (a batch is speculation, not a stalled
    /// demand fault); the sharded plane overrides it to decode each
    /// shard's pages through the codec's batched entry point under a
    /// single lock acquisition.
    fn swap_in_batch_into(
        &self,
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
    ) -> Vec<SwapResult<SwapOutcome>> {
        pages
            .iter()
            .zip(outs.iter_mut())
            .map(|(page, out)| self.swap_in_into(*page, true, out))
            .collect()
    }

    /// Context-carrying form of [`SwapPlane::swap_out`]: the page is
    /// billed to `ctx.tenant` and `ctx.class` hints the placement tier.
    ///
    /// The default ignores the context and delegates, so every plane
    /// keeps compiling; tenant-aware planes override this with the real
    /// body and route the context-free form through
    /// [`OpContext::SYSTEM`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SwapPlane::swap_out`].
    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        let _ = ctx;
        self.swap_out(page, data)
    }

    /// Context-carrying form of [`SwapPlane::swap_in_into`]: the freed
    /// compressed bytes are credited back to the owning tenant's
    /// account (the *entry's* owner, which tenant-aware planes recorded
    /// at swap-out — `ctx.tenant` identifies the caller for telemetry).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SwapPlane::swap_in_into`].
    fn swap_in_into_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        let _ = ctx;
        self.swap_in_into(page, do_offload, out)
    }

    /// Context-carrying form of [`SwapPlane::swap_out_batch`]: every
    /// page in the batch is billed to `ctx.tenant`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SwapPlane::swap_out_batch`].
    fn swap_out_batch_ctx(
        &self,
        ctx: &OpContext,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        let _ = ctx;
        self.swap_out_batch(batch, threads)
    }

    /// Per-tenant compressed-byte usage, one entry per tenant that has
    /// ever stored a page (including [`TenantId::SYSTEM`]), sorted by
    /// tenant id. Planes without tenant accounting return an empty
    /// vector. On accounting-exact planes the byte sum equals the
    /// pool's stored bytes.
    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        Vec::new()
    }

    /// The tenant whose account owns `page`'s resident entry, if this
    /// plane tracks ownership. Speculative machinery (the prefetch
    /// engine) uses this to attribute work it issues on a tenant's
    /// behalf.
    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        let _ = page;
        None
    }

    /// Whether `page` currently lives in the SFM.
    fn contains(&self, page: PageNumber) -> bool;

    /// Runs a compaction pass over the region (the paper's
    /// `xfm_compact()`), returning the `memcpy` report.
    fn compact(&self) -> crate::zpool::CompactReport;

    /// Aggregate statistics.
    fn stats(&self) -> BackendStats;

    /// Zpool-level statistics (occupancy, fragmentation).
    fn pool_stats(&self) -> crate::zpool::ZpoolStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_and_fraction() {
        let mut s = BackendStats::default();
        s.record(
            &SwapOutcome {
                executed_on: ExecutedOn::Cpu,
                compressed_len: 100,
                cpu_cycles: Cycles::new(1000),
                ddr_bytes: ByteSize::from_bytes(4196),
            },
            true,
        );
        s.record(
            &SwapOutcome {
                executed_on: ExecutedOn::Nma,
                compressed_len: 100,
                cpu_cycles: Cycles::ZERO,
                ddr_bytes: ByteSize::ZERO,
            },
            false,
        );
        assert_eq!(s.swap_outs, 1);
        assert_eq!(s.swap_ins, 1);
        assert_eq!(s.cpu_fraction(), 0.5);
        assert_eq!(s.cpu_cycles.count(), 1000);
        assert_eq!(s.ddr_bytes.as_bytes(), 4196);
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        assert_eq!(BackendStats::default().cpu_fraction(), 0.0);
    }

    #[test]
    fn config_reject_threshold() {
        let cfg = SfmConfig {
            max_compressed_fraction: 0.5,
            ..SfmConfig::default()
        };
        assert_eq!(cfg.max_compressed_len(), 2048);
    }

    #[test]
    fn swap_plane_trait_is_object_safe() {
        fn _takes_dyn(_b: &dyn SwapPlane) {}
    }
}
