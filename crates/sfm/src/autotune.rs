//! Online control-plane knob autotuning.
//!
//! SNIPPETS.md's provenance note on Google's warehouse-scale software
//! -defined far memory reports ~30% efficiency gained by autotuning the
//! control-plane knobs (cold-age threshold, scan cadence) with a
//! fleet-wide optimization loop; XFM inherits the same knob surface and
//! adds prefetch knobs on top. This module is a node-local version of
//! that loop: a UCB1 bandit over a discrete grid of [`Knobs`], scored
//! by a live reward from `xfm-telemetry` (negated p99 demand-fault
//! latency plus a busy-time penalty — lower latency and less CPU burn
//! mean higher reward).
//!
//! The tuner is **sticky-safe** against the degrade ladder
//! ([`DegradedMode`]): while the plane is degraded or recovering it
//! freezes — the current arm is pinned and rewards are discarded — so
//! incident-mode measurements (which reflect the incident, not the
//! knobs) can never poison the arm statistics, and the tuner never
//! flaps knobs while the controller is shedding load.

use serde::{Deserialize, Serialize};
use xfm_faults::DegradedMode;
use xfm_telemetry::Registry;

/// Codec preference an arm can express (consumed as an `AutoCodec`
/// routing bias by the caller that owns codec selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecBias {
    /// Let `AutoCodec` route per page, unbiased.
    Balanced,
    /// Prefer the fast route (lower decompress latency, worse ratio).
    Speed,
    /// Prefer the dense route (better ratio, slower faults).
    Ratio,
}

/// Demotion-aggressiveness bias an arm can express (consumed by
/// [`TieredPlane::set_tier_bias`](crate::tier::TieredPlane::set_tier_bias)
/// as a scale on every tier's resident-page budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierBias {
    /// Inflate budgets 25%: keep pages on hot tiers longer.
    LocalFirst,
    /// Budgets as configured.
    Balanced,
    /// Shrink budgets 25%: demote eagerly, keep hot tiers headroomed.
    DemoteEager,
}

impl TierBias {
    /// The budget scale factor this bias applies.
    #[must_use]
    pub fn scale(&self) -> f64 {
        match self {
            TierBias::LocalFirst => 1.25,
            TierBias::Balanced => 1.0,
            TierBias::DemoteEager => 0.75,
        }
    }
}

/// One discrete setting of every tunable control-plane knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Knobs {
    /// Prefetch depth (pages predicted ahead).
    pub prefetch_depth: u32,
    /// Predictor confidence threshold.
    pub confidence_threshold: f64,
    /// Cold-scan cadence: pages per scan batch.
    pub scan_batch: usize,
    /// Promotion-rate target (pages per minute the controller sizes
    /// the far set against).
    pub promotion_target: u64,
    /// Codec routing bias.
    pub codec_bias: CodecBias,
    /// Tier demotion bias.
    pub tier_bias: TierBias,
}

impl Default for Knobs {
    fn default() -> Self {
        Self {
            prefetch_depth: 8,
            confidence_threshold: 0.6,
            scan_batch: 256,
            promotion_target: 1000,
            codec_bias: CodecBias::Balanced,
            tier_bias: TierBias::Balanced,
        }
    }
}

/// Configuration for [`AutoTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoTuneConfig {
    /// UCB exploration coefficient (`c` in `mean + c·sqrt(2 ln N / n)`).
    pub exploration: f64,
    /// Probability of a uniformly random arm instead of the UCB pick
    /// (escape hatch when reward is nonstationary).
    pub epsilon: f64,
    /// Seed for the deterministic exploration stream.
    pub seed: u64,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        Self {
            exploration: 0.5,
            epsilon: 0.05,
            seed: 0xBA2D17,
        }
    }
}

/// A UCB1 bandit over a discrete grid of knob settings.
///
/// Drive it in epochs: run one measurement window under
/// [`AutoTuner::current`]'s knobs, compute a reward (higher = better;
/// [`AutoTuner::reward_from_registry`] is the standard one), feed it to
/// [`AutoTuner::record_reward`], apply the newly selected arm, repeat.
///
/// # Examples
///
/// ```
/// use xfm_sfm::autotune::{AutoTuneConfig, AutoTuner, Knobs};
///
/// let mut tuner = AutoTuner::new(AutoTuner::grid_default(), AutoTuneConfig::default());
/// for _ in 0..32 {
///     let knobs = *tuner.current();
///     // ... run a window under `knobs`, measure ...
///     let reward = -(knobs.prefetch_depth as f64); // toy reward
///     tuner.record_reward(reward);
/// }
/// let (_best_arm, _best_knobs) = tuner.best();
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoTuner {
    arms: Vec<Knobs>,
    counts: Vec<u64>,
    means: Vec<f64>,
    total_pulls: u64,
    current: usize,
    frozen: bool,
    rng: u64,
    config: AutoTuneConfig,
}

impl AutoTuner {
    /// Creates a tuner over `arms`, starting on arm 0.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Knobs>, config: AutoTuneConfig) -> Self {
        assert!(!arms.is_empty(), "autotuner needs at least one arm");
        let n = arms.len();
        Self {
            arms,
            counts: vec![0; n],
            means: vec![0.0; n],
            total_pulls: 0,
            current: 0,
            frozen: false,
            rng: config.seed | 1,
            config,
        }
    }

    /// The default knob grid: prefetch depth × confidence threshold,
    /// with scan cadence and codec bias varied on the deeper settings.
    #[must_use]
    pub fn grid_default() -> Vec<Knobs> {
        let mut arms = Vec::new();
        for &depth in &[2u32, 4, 8, 16] {
            for &threshold in &[0.5f64, 0.6, 0.75] {
                arms.push(Knobs {
                    prefetch_depth: depth,
                    confidence_threshold: threshold,
                    scan_batch: if depth >= 8 { 512 } else { 256 },
                    promotion_target: 1000,
                    codec_bias: if threshold >= 0.75 {
                        CodecBias::Ratio
                    } else {
                        CodecBias::Balanced
                    },
                    // Deep prefetch wants hot-tier headroom to stage into.
                    tier_bias: if depth >= 16 {
                        TierBias::DemoteEager
                    } else {
                        TierBias::Balanced
                    },
                });
            }
        }
        arms.push(Knobs {
            prefetch_depth: 8,
            confidence_threshold: 0.6,
            scan_batch: 256,
            promotion_target: 1000,
            codec_bias: CodecBias::Speed,
            tier_bias: TierBias::Balanced,
        });
        arms.push(Knobs {
            prefetch_depth: 8,
            confidence_threshold: 0.6,
            scan_batch: 256,
            promotion_target: 1000,
            codec_bias: CodecBias::Balanced,
            tier_bias: TierBias::LocalFirst,
        });
        arms
    }

    /// The knob setting to run the next window under.
    #[must_use]
    pub fn current(&self) -> &Knobs {
        &self.arms[self.current]
    }

    /// Index of the current arm (exported on the
    /// `xfm_prefetch_autotune_arm` gauge).
    #[must_use]
    pub fn current_arm(&self) -> usize {
        self.current
    }

    /// Number of arms in the grid.
    #[must_use]
    pub fn arm_count(&self) -> usize {
        self.arms.len()
    }

    /// Whether the tuner is frozen by the degrade ladder.
    #[must_use]
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Tracks the degrade ladder: any mode other than healthy NMA
    /// operation (including `Recovering`) freezes the tuner — the arm
    /// is pinned and incoming rewards are discarded until recovery.
    pub fn observe_mode(&mut self, mode: DegradedMode) {
        self.frozen = mode != DegradedMode::Nma;
    }

    /// Records the reward measured under the current arm and selects
    /// the next arm. While frozen, the reward is discarded and the arm
    /// stays pinned.
    pub fn record_reward(&mut self, reward: f64) {
        if self.frozen || !reward.is_finite() {
            return;
        }
        let i = self.current;
        self.counts[i] += 1;
        self.total_pulls += 1;
        // Incremental mean.
        self.means[i] += (reward - self.means[i]) / self.counts[i] as f64;
        self.current = self.select_next();
    }

    /// UCB1 with an epsilon-greedy escape: untried arms first (in index
    /// order), then argmax of `mean + c·sqrt(2 ln N / n)`.
    fn select_next(&mut self) -> usize {
        if let Some(untried) = self.counts.iter().position(|&c| c == 0) {
            return untried;
        }
        if self.next_f64() < self.config.epsilon {
            return (self.next_u64() % self.arms.len() as u64) as usize;
        }
        let ln_total = (self.total_pulls as f64).ln();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.arms.len() {
            let bonus = self.config.exploration * (2.0 * ln_total / self.counts[i] as f64).sqrt();
            let score = self.means[i] + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The best arm by observed mean reward (falls back to the current
    /// arm before any reward has been recorded).
    #[must_use]
    pub fn best(&self) -> (usize, &Knobs) {
        let mut best = self.current;
        let mut best_mean = f64::NEG_INFINITY;
        for i in 0..self.arms.len() {
            if self.counts[i] > 0 && self.means[i] > best_mean {
                best_mean = self.means[i];
                best = i;
            }
        }
        (best, &self.arms[best])
    }

    /// Mean observed reward of `arm` (`None` until it has been pulled).
    #[must_use]
    pub fn arm_mean(&self, arm: usize) -> Option<f64> {
        (self.counts[arm] > 0).then(|| self.means[arm])
    }

    /// Times `arm` has been pulled.
    #[must_use]
    pub fn arm_pulls(&self, arm: usize) -> u64 {
        self.counts[arm]
    }

    /// The standard live reward: negated p99 demand-fault latency plus
    /// a per-fault busy-time penalty, read from the registry's
    /// `xfm_swap_in_latency_ns` histogram and `xfm_shard_busy_ns_total`
    /// counters. Call once per window on a registry that was reset (or
    /// freshly created) for the window.
    #[must_use]
    pub fn reward_from_registry(registry: &Registry) -> f64 {
        let hist = registry.histogram("xfm_swap_in_latency_ns");
        let faults = hist.count().max(1);
        let p99 = hist.quantile(0.99) as f64;
        let snap = registry.snapshot();
        let busy: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("xfm_shard_busy_ns_total"))
            .map(|(_, &v)| v)
            .sum();
        -(p99 + busy as f64 / faults as f64)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: deterministic exploration stream.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic synthetic reward: arm quality decays with index.
    fn toy_reward(arm: usize) -> f64 {
        -(arm as f64) * 10.0
    }

    #[test]
    fn converges_to_best_arm() {
        let arms: Vec<Knobs> = (0..6)
            .map(|i| Knobs {
                prefetch_depth: 1 << i,
                ..Knobs::default()
            })
            .collect();
        let mut t = AutoTuner::new(arms, AutoTuneConfig::default());
        for _ in 0..300 {
            let arm = t.current_arm();
            t.record_reward(toy_reward(arm));
        }
        let (best, _) = t.best();
        assert_eq!(best, 0, "best arm should be arm 0");
        // Within 10% of the best fixed arm: the bandit's average regret
        // must be dominated by the best arm's pull share.
        assert!(
            t.arm_pulls(0) > 150,
            "best arm pulled only {} of 300",
            t.arm_pulls(0)
        );
    }

    #[test]
    fn every_arm_gets_tried_first() {
        let mut t = AutoTuner::new(AutoTuner::grid_default(), AutoTuneConfig::default());
        let n = t.arm_count();
        let mut seen = vec![false; n];
        for _ in 0..n {
            seen[t.current_arm()] = true;
            t.record_reward(0.0);
        }
        assert!(
            seen.iter().all(|&s| s),
            "some arm never pulled in round-robin phase"
        );
    }

    #[test]
    fn freezes_while_degraded() {
        let mut t = AutoTuner::new(AutoTuner::grid_default(), AutoTuneConfig::default());
        t.record_reward(1.0);
        let arm = t.current_arm();
        let pulls: u64 = (0..t.arm_count()).map(|i| t.arm_pulls(i)).sum();
        t.observe_mode(DegradedMode::CpuOnly);
        assert!(t.frozen());
        for _ in 0..10 {
            t.record_reward(-1e9);
        }
        // Arm pinned, rewards discarded.
        assert_eq!(t.current_arm(), arm);
        let pulls_after: u64 = (0..t.arm_count()).map(|i| t.arm_pulls(i)).sum();
        assert_eq!(pulls, pulls_after);
        // Recovering still counts as degraded (sticky-safe).
        t.observe_mode(DegradedMode::Recovering);
        assert!(t.frozen());
        t.observe_mode(DegradedMode::Nma);
        assert!(!t.frozen());
        t.record_reward(0.5);
        let pulls_resumed: u64 = (0..t.arm_count()).map(|i| t.arm_pulls(i)).sum();
        assert_eq!(pulls_resumed, pulls + 1);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mk = || AutoTuner::new(AutoTuner::grid_default(), AutoTuneConfig::default());
        let (mut a, mut b) = (mk(), mk());
        for step in 0..200 {
            assert_eq!(a.current_arm(), b.current_arm(), "diverged at step {step}");
            let r = toy_reward(a.current_arm());
            a.record_reward(r);
            b.record_reward(r);
        }
    }

    #[test]
    fn non_finite_rewards_ignored() {
        let mut t = AutoTuner::new(AutoTuner::grid_default(), AutoTuneConfig::default());
        t.record_reward(f64::NAN);
        t.record_reward(f64::INFINITY);
        assert_eq!(t.arm_pulls(0), 0);
    }

    #[test]
    fn reward_from_registry_penalizes_latency() {
        let fast = Registry::new();
        let slow = Registry::new();
        for _ in 0..100 {
            fast.histogram("xfm_swap_in_latency_ns").record(500);
            slow.histogram("xfm_swap_in_latency_ns").record(30_000);
        }
        assert!(AutoTuner::reward_from_registry(&fast) > AutoTuner::reward_from_registry(&slow));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_grid_rejected() {
        let _ = AutoTuner::new(Vec::new(), AutoTuneConfig::default());
    }
}
