//! The sharded concurrent swap data plane.
//!
//! The single-threaded stack ([`crate::CpuBackend`] + [`crate::SfmController`])
//! caps aggregate swap throughput at one core, while the paper sizes XFM
//! for fleet-scale SFM traffic (≈426 MB/s of cold-page churn for a 512 GB
//! SFM at 100% promotion rate, §3). This module stripes the entry table,
//! the cold-age table, and the zpool into N independent *shards* — the
//! same shard-for-parallelism move refresh-access-parallelism work makes
//! at the DRAM level — so unrelated faults never contend:
//!
//! - **Routing**: a page's shard is a Fibonacci hash of its page number
//!   masked to a power-of-two shard count, so sequential page ranges
//!   spread evenly across shards.
//! - **Lock discipline**: one `Mutex` per shard, never more than one
//!   held at a time. Cross-shard state (capacity budget, far-set size,
//!   promotion minute) lives in atomics plus one tiny minute-roll mutex
//!   that is never held together with a shard lock.
//! - **Batch handoff**: [`ShardedSfm::swap_out_batch`] same-fill-checks
//!   inline, then drains the remaining pages through the
//!   `compress_pages` worker pool; each worker hands its finished page
//!   to a sink that locks *only the owning shard* for the store-back,
//!   so no lock is ever held across compression.
//!
//! With one shard the plane is observably identical to the unsharded
//! path (pinned by a differential proptest); the capacity budget is
//! global across shards, enforced before any shard's pool grows.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use xfm_compress::auto::block_route;
use xfm_compress::parallel::PageResult;
use xfm_compress::{
    compress_pages_streamed, compress_pages_streamed_traced, Codec, CodecKind, CostModel, Scratch,
    XDeflate,
};
use xfm_faults::{FaultInjector, FaultSite};
use xfm_telemetry::swap_metrics::Stopwatch;
use xfm_telemetry::{
    Cause, LifecycleStage, Registry, ShardMetrics, SwapMetrics, SwapStage, TenantMetrics,
};
use xfm_types::{
    ByteSize, Cycles, Error, Nanos, OpContext, PageNumber, Result, SwapError, SwapResult, TenantId,
    PAGE_SIZE,
};

use crate::backend::{BackendStats, ExecutedOn, SfmConfig, SwapOutcome, SwapPlane};
use crate::controller::{select_cold_batch, ColdScanConfig, PromotionStats};
use crate::cpu_backend::same_filled;
use crate::table::{SfmEntry, SfmTable};
use crate::zpool::{CompactReport, Handle, Zpool, ZpoolStats};

/// Configuration for [`ShardedSfm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedSfmConfig {
    /// Backend configuration. `region_capacity` is the **global** budget
    /// shared by every shard's pool, not a per-shard limit.
    pub sfm: SfmConfig,
    /// Cold-scan configuration. `scan_batch` rate-limits the *merged*
    /// scan across shards, oldest pages first.
    pub scan: ColdScanConfig,
    /// Number of shards; must be a nonzero power of two.
    pub shards: usize,
}

impl Default for ShardedSfmConfig {
    fn default() -> Self {
        Self {
            sfm: SfmConfig::default(),
            scan: ColdScanConfig::default(),
            shards: 4,
        }
    }
}

/// One stripe of the data plane: pool, entry table, age table, and
/// reusable codec state, all guarded by a single mutex.
struct Shard {
    pool: Zpool,
    table: SfmTable,
    /// Resident pages owned by this shard and their last access times.
    resident: BTreeMap<u64, Nanos>,
    /// This shard's pages currently in far memory.
    far: BTreeSet<u64>,
    stats: BackendStats,
    /// Reusable codec state: after warm-up the sequential swap path runs
    /// without heap allocation inside this shard.
    scratch: Scratch,
    /// Reusable compressed-output buffer for sequential swap-out.
    comp_buf: Vec<u8>,
    /// Host pages this shard's pool currently holds, mirrored into the
    /// global budget counter on every pool mutation.
    host_pages: u64,
}

struct MinuteState {
    start: Nanos,
    stats: PromotionStats,
}

struct Telemetry {
    swap: SwapMetrics,
    shards: ShardMetrics,
    tenants: TenantMetrics,
    registry: Registry,
}

/// The sharded front: same observable behavior as the unsharded plane,
/// but every operation takes `&self` and only the owning shard's lock,
/// so faults and demotions on different shards run concurrently.
///
/// # Examples
///
/// ```
/// use xfm_sfm::{ShardedSfm, ShardedSfmConfig};
/// use xfm_types::PageNumber;
///
/// let sfm = ShardedSfm::new(ShardedSfmConfig::default());
/// let page = b"16-byte pattern!".repeat(256); // 4096 bytes
/// sfm.swap_out(PageNumber::new(7), &page)?;
/// let (restored, _) = sfm.swap_in(PageNumber::new(7), false)?;
/// assert_eq!(restored, page);
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub struct ShardedSfm {
    shards: Vec<Mutex<Shard>>,
    /// `shards - 1`; page-number hash is masked with this.
    mask: u64,
    config: SfmConfig,
    scan_config: ColdScanConfig,
    codec: Arc<dyn Codec + Send + Sync>,
    cost: CostModel,
    /// Host pages across every shard's pool (the global budget).
    total_host_pages: AtomicU64,
    /// Far-memory pages across every shard (controller accounting).
    far_pages_total: AtomicU64,
    /// Promotions since the current minute started.
    promoted_this_minute: AtomicU64,
    /// Fast-path mirror of `minute.start` so steady-state ops skip the
    /// minute mutex entirely.
    minute_start_ns: AtomicU64,
    minute: Mutex<MinuteState>,
    telemetry: Option<Telemetry>,
    /// Fault-injection hooks; `None` until [`ShardedSfm::attach_faults`],
    /// and the hot path pays one pointer test while detached.
    faults: Option<Arc<FaultInjector>>,
    /// Wall time spent pre-warming every shard's scratch at construction.
    warm_ns: u64,
    /// Synthetic pages round-tripped while pre-warming (3 per shard when
    /// warming succeeds).
    warm_pages: u64,
}

impl std::fmt::Debug for ShardedSfm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSfm")
            .field("shards", &self.shards.len())
            .field("codec", &self.codec.name())
            .finish_non_exhaustive()
    }
}

impl ShardedSfm {
    /// Creates a sharded plane with the default codec (xdeflate) and the
    /// paper's average cost model — the sharded counterpart of
    /// [`crate::CpuBackend::new`].
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` is zero or not a power of two.
    #[must_use]
    pub fn new(config: ShardedSfmConfig) -> Self {
        Self::with_codec(
            config,
            Arc::new(XDeflate::default()),
            CostModel::paper_average(),
        )
    }

    /// Creates a sharded plane with an explicit codec and cost model.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` is zero or not a power of two.
    #[must_use]
    pub fn with_codec(
        config: ShardedSfmConfig,
        codec: Arc<dyn Codec + Send + Sync>,
        cost: CostModel,
    ) -> Self {
        assert!(
            config.shards > 0 && config.shards.is_power_of_two(),
            "shard count {} must be a nonzero power of two",
            config.shards
        );
        // Pre-warm every shard's scratch so the first real page through
        // each shard already runs at steady-state speed (lazy buffer
        // sizing otherwise costs the documented fresh-vs-warm gap).
        let warm_sw = Stopwatch::start();
        let mut warm_pages = 0u64;
        let shards = (0..config.shards)
            .map(|_| {
                let mut scratch = Scratch::new();
                warm_pages += scratch.warm(&*codec) as u64;
                Mutex::new(Shard {
                    // Every pool is created with the full region capacity;
                    // the *global* budget below is what actually limits
                    // growth, so fragmentation in one shard cannot strand
                    // budget another shard needs.
                    pool: Zpool::new(config.sfm.region_capacity),
                    table: SfmTable::new(),
                    resident: BTreeMap::new(),
                    far: BTreeSet::new(),
                    stats: BackendStats::default(),
                    scratch,
                    comp_buf: Vec::with_capacity(PAGE_SIZE),
                    host_pages: 0,
                })
            })
            .collect();
        let warm_ns = warm_sw.elapsed_ns();
        Self {
            shards,
            mask: (config.shards - 1) as u64,
            config: config.sfm,
            scan_config: config.scan,
            codec,
            cost,
            total_host_pages: AtomicU64::new(0),
            far_pages_total: AtomicU64::new(0),
            promoted_this_minute: AtomicU64::new(0),
            minute_start_ns: AtomicU64::new(0),
            minute: Mutex::new(MinuteState {
                start: Nanos::ZERO,
                stats: PromotionStats::default(),
            }),
            telemetry: None,
            faults: None,
            warm_ns,
            warm_pages,
        }
    }

    /// Attaches the standard swap metrics plus per-shard series
    /// (`xfm_shard_*{shard="i"}` and the `xfm_shard_imbalance` gauge).
    ///
    /// The construction-time scratch warm-up is recorded retroactively
    /// on the lifecycle trail (telemetry attaches after construction),
    /// with the warmed-page count as the aux datum.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        registry.lifecycle().record(
            LifecycleStage::Warmup,
            Cause::Ok,
            0,
            xfm_telemetry::lifecycle::NO_SHARD,
            self.warm_pages,
            self.warm_ns,
        );
        self.telemetry = Some(Telemetry {
            swap: SwapMetrics::register(registry),
            shards: ShardMetrics::register(registry, self.shards.len()),
            tenants: TenantMetrics::register(registry),
            registry: registry.clone(),
        });
    }

    /// Attaches a fault injector; its zpool-store and bit-corruption
    /// sites then apply to every shard's swap path.
    pub fn attach_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The active backend configuration.
    #[must_use]
    pub fn config(&self) -> &SfmConfig {
        &self.config
    }

    /// The shard that owns `page`: high bits of a Fibonacci hash of the
    /// page number, masked to the power-of-two shard count. Sequential
    /// page ranges (the common hot-set layout) spread evenly.
    #[must_use]
    pub fn shard_of(&self, page: PageNumber) -> usize {
        ((page.index().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Compresses `data` (one 4 KiB page) into the owning shard.
    /// Observable behavior matches [`crate::CpuBackend::swap_out`]:
    /// same-filled short-circuit, zswap-style raw-store reject, and a
    /// compact-once retry when the global capacity budget is hit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SfmBackend::swap_out`].
    pub fn swap_out(&self, page: PageNumber, data: &[u8]) -> Result<SwapOutcome> {
        self.swap_out_for(TenantId::SYSTEM, page, data)
    }

    /// Tenant-attributed form of [`ShardedSfm::swap_out`]: the stored
    /// compressed bytes are billed to `tenant` (recorded on the entry)
    /// until the entry is consumed by a swap-in, and telemetry carries
    /// the tenant on its lifecycle events and per-tenant counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedSfm::swap_out`].
    pub fn swap_out_for(
        &self,
        tenant: TenantId,
        page: PageNumber,
        data: &[u8],
    ) -> Result<SwapOutcome> {
        if data.len() != PAGE_SIZE {
            return Err(Error::InvalidConfig(format!(
                "swap_out requires a 4 KiB page, got {} bytes",
                data.len()
            )));
        }
        let si = self.shard_of(page);
        let mut guard = self.shards[si].lock();
        let s = &mut *guard;
        if s.table.contains(page) {
            return Err(Error::EntryExists { page: page.index() });
        }
        let sw = self.telemetry.as_ref().map(|_| Stopwatch::start());

        // zswap's same-filled-page check runs before compression: a page
        // of one repeated byte stores just that byte.
        if let Some(fill) = same_filled(data) {
            if self.store_would_overflow(&s.pool, 1) {
                return Err(Error::SfmRegionFull);
            }
            let handle = s.pool.alloc_faulted(&[fill], self.faults.as_deref())?;
            let Shard {
                pool, host_pages, ..
            } = s;
            self.sync_host_pages(pool, host_pages);
            s.table.insert(
                page,
                SfmEntry {
                    handle,
                    compressed_len: 1,
                    codec: CodecKind::SameFilled,
                    checksum: xfm_faults::checksum(&[fill]),
                    tenant,
                },
            )?;
            let outcome = SwapOutcome {
                executed_on: ExecutedOn::Cpu,
                compressed_len: 1,
                // The scan costs roughly one pass over the page.
                cpu_cycles: Cycles::new(PAGE_SIZE as u64),
                ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64 + 1),
            };
            s.stats.record(&outcome, true);
            if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
                let total = sw.elapsed_ns();
                t.swap.swap_outs.inc();
                t.swap.same_filled.inc();
                t.swap.cpu_executions.inc();
                t.swap.swap_out_ns.record(total);
                t.swap.span(
                    SwapStage::Compress,
                    page.index(),
                    0,
                    total,
                    Cause::SameFilled,
                );
                t.swap.lifecycle_event_for(
                    LifecycleStage::Compress,
                    Cause::SameFilled,
                    tenant,
                    page.index(),
                    si as u32,
                    u64::from(fill),
                    total,
                );
                let ts = t.tenants.series(tenant);
                ts.swap_outs.inc();
                ts.bytes_stored.add(1);
                t.shards.swap_outs[si].inc();
                t.shards.busy_ns[si].add(total);
                t.shards.entries[si].set(s.table.len() as f64);
            }
            return Ok(outcome);
        }

        s.comp_buf.clear();
        let csw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        {
            let Shard {
                comp_buf, scratch, ..
            } = s;
            self.codec.compress_into(data, comp_buf, scratch)?;
        }
        let compress_ns = csw.map_or(0, |s| s.elapsed_ns());
        self.store_page(si, s, tenant, page, data, None, sw, compress_ns)
    }

    /// Decompresses `page` back out of its shard, removing the entry.
    /// `do_offload` is accepted for API parity and ignored (CPU plane).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SfmBackend::swap_in`].
    pub fn swap_in(&self, page: PageNumber, do_offload: bool) -> Result<(Vec<u8>, SwapOutcome)> {
        let mut out = Vec::with_capacity(PAGE_SIZE);
        let outcome = self.swap_in_into(page, do_offload, &mut out)?;
        Ok((out, outcome))
    }

    /// Allocation-free fault path: decompresses `page` into the caller's
    /// reusable buffer (`out` is cleared first). With a warm buffer the
    /// steady-state fault performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SfmBackend::swap_in`].
    pub fn swap_in_into(
        &self,
        page: PageNumber,
        _do_offload: bool,
        out: &mut Vec<u8>,
    ) -> Result<SwapOutcome> {
        let si = self.shard_of(page);
        let mut guard = self.shards[si].lock();
        let s = &mut *guard;
        let sw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        let entry = *s
            .table
            .get(page)
            .ok_or(Error::EntryNotFound { page: page.index() })?;
        let mut fetch_ns = 0u64;
        let mut decomp_ns = 0u64;
        out.clear();
        // Decompress straight out of the pool's arena slice — the
        // compressed bytes are never copied. The slot is freed after the
        // borrow ends, even when decoding fails.
        let decoded: Result<Cycles> = {
            let Shard { pool, scratch, .. } = &mut *s;
            let compressed = pool.get(entry.handle)?;
            if let Some(sw) = &sw {
                fetch_ns = sw.elapsed_ns();
            }
            // Verify before decoding. The checksum covers the bytes as
            // fetched — an injected flip models in-transit corruption —
            // so on mismatch the stored copy is still pristine and the
            // error is retryable: entry and slot stay untouched.
            let got = match self
                .faults
                .as_deref()
                .and_then(|f| f.fire_value(FaultSite::BitCorruption))
            {
                Some(v) => {
                    let mut fetched = compressed.to_vec();
                    let bit = (v % (fetched.len() as u64 * 8)) as usize;
                    fetched[bit / 8] ^= 1 << (bit % 8);
                    xfm_faults::checksum(&fetched)
                }
                None => xfm_faults::checksum(compressed),
            };
            if got != entry.checksum {
                if let Some(t) = &self.telemetry {
                    t.swap.span(
                        SwapStage::Fetch,
                        page.index(),
                        0,
                        fetch_ns,
                        Cause::ChecksumMismatch,
                    );
                    t.swap.lifecycle_event_for(
                        LifecycleStage::Fault,
                        Cause::ChecksumMismatch,
                        entry.tenant,
                        page.index(),
                        si as u32,
                        u64::from(entry.compressed_len),
                        fetch_ns,
                    );
                }
                return Err(Error::ChecksumMismatch {
                    page: page.index(),
                    expected: entry.checksum,
                    got,
                });
            }
            match entry.codec {
                CodecKind::SameFilled => {
                    out.resize(PAGE_SIZE, compressed[0]);
                    Ok(Cycles::new(PAGE_SIZE as u64))
                }
                CodecKind::Raw => {
                    out.extend_from_slice(compressed);
                    Ok(Cycles::ZERO)
                }
                _ => {
                    let dsw = sw.map(|_| Stopwatch::start());
                    match self.codec.decompress_into(compressed, out, scratch) {
                        Ok(_) if out.len() != PAGE_SIZE => Err(Error::Corrupt(format!(
                            "page {page} decompressed to {} bytes",
                            out.len()
                        ))),
                        Ok(_) => {
                            decomp_ns = dsw.map_or(0, |s| s.elapsed_ns());
                            Ok(self.cost.decompress_cycles(PAGE_SIZE as u64))
                        }
                        Err(e) => Err(e),
                    }
                }
            }
        };
        s.table.remove(page)?;
        s.pool.free(entry.handle)?;
        {
            let Shard {
                pool, host_pages, ..
            } = s;
            self.sync_host_pages(pool, host_pages);
        }
        // The entry is consumed from here on — even when decoding
        // failed — so the owner's compressed bytes are credited back
        // unconditionally: no leak on the Corrupt fall-through.
        if let Some(t) = &self.telemetry {
            t.tenants
                .series(entry.tenant)
                .bytes_freed
                .add(u64::from(entry.compressed_len));
        }
        let cycles = decoded?;

        let outcome = SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: entry.compressed_len,
            cpu_cycles: cycles,
            // Compressed read + restored page write.
            ddr_bytes: ByteSize::from_bytes(u64::from(entry.compressed_len) + PAGE_SIZE as u64),
        };
        s.stats.record(&outcome, false);
        if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
            let total = sw.elapsed_ns();
            let cause = match entry.codec {
                CodecKind::SameFilled => Cause::SameFilled,
                CodecKind::Raw => Cause::StoredRaw,
                _ => Cause::Ok,
            };
            t.swap.swap_ins.inc();
            t.swap.cpu_executions.inc();
            t.swap.zpool_load_ns.record(fetch_ns);
            t.swap.swap_in_ns.record(total);
            t.swap.span(SwapStage::Fault, page.index(), 0, total, cause);
            t.swap
                .span(SwapStage::Fetch, page.index(), 0, fetch_ns, Cause::Ok);
            t.swap.lifecycle_event_for(
                LifecycleStage::Fault,
                cause,
                entry.tenant,
                page.index(),
                si as u32,
                u64::from(entry.compressed_len),
                total,
            );
            t.swap.lifecycle_event_for(
                LifecycleStage::Fetch,
                Cause::Ok,
                entry.tenant,
                page.index(),
                si as u32,
                u64::from(entry.compressed_len),
                fetch_ns,
            );
            if !matches!(cause, Cause::SameFilled | Cause::StoredRaw) {
                t.swap.decompress_ns.record(decomp_ns);
                t.swap.span(
                    SwapStage::Decompress,
                    page.index(),
                    fetch_ns,
                    decomp_ns,
                    Cause::Ok,
                );
                t.swap.lifecycle_event_for(
                    LifecycleStage::Decompress,
                    Cause::Ok,
                    entry.tenant,
                    page.index(),
                    si as u32,
                    u64::from(entry.compressed_len),
                    decomp_ns,
                );
            }
            let ts = t.tenants.series(entry.tenant);
            ts.swap_ins.inc();
            ts.fault_ns.record(total);
            t.shards.swap_ins[si].inc();
            t.shards.busy_ns[si].add(total);
            t.shards.entries[si].set(s.table.len() as f64);
        }
        Ok(outcome)
    }

    /// Batched swap-in with per-shard claim batching: `pages[i]` lands
    /// in `outs[i]` (cleared first), per-page results in submission
    /// order. Pages are grouped by owning shard so each shard's lock is
    /// taken exactly once, and every real-codec block in a shard is
    /// decoded through [`Codec::decompress_batch_into`] — same-header
    /// blocks share decode tables, which is what makes speculative
    /// prefetch batches cheaper than N sequential faults. Per-page
    /// observable behavior (outcome, stats, stored bytes, error
    /// conditions) matches calling [`ShardedSfm::swap_in_into`]
    /// sequentially.
    ///
    /// # Panics
    ///
    /// Panics when `pages.len() != outs.len()`.
    pub fn swap_in_batch_into(
        &self,
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
    ) -> Vec<Result<SwapOutcome>> {
        assert_eq!(
            pages.len(),
            outs.len(),
            "swap_in_batch_into needs one output buffer per page"
        );
        let mut results: Vec<Option<Result<SwapOutcome>>> =
            (0..pages.len()).map(|_| None).collect();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, p) in pages.iter().enumerate() {
            by_shard[self.shard_of(*p)].push(i);
        }
        for (si, idxs) in by_shard.iter().enumerate() {
            if !idxs.is_empty() {
                self.swap_in_shard_batch(si, idxs, pages, outs, &mut results);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every page resolved"))
            .collect()
    }

    /// One shard's slice of a batched swap-in, under a single lock
    /// acquisition. Inline kinds (same-filled, raw) resolve immediately;
    /// real-codec blocks are verified first, then decoded together.
    fn swap_in_shard_batch(
        &self,
        si: usize,
        idxs: &[usize],
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
        results: &mut [Option<Result<SwapOutcome>>],
    ) {
        let mut guard = self.shards[si].lock();
        let s = &mut *guard;
        // (batch index, entry, fetch_ns) for deferred real-codec blocks.
        let mut blocks: Vec<(usize, SfmEntry, u64)> = Vec::new();
        // Pages already claimed by an earlier duplicate in this batch:
        // the sequential plane would find their entry gone.
        let mut claimed: BTreeSet<u64> = BTreeSet::new();
        for &i in idxs {
            let page = pages[i];
            let psw = self.telemetry.as_ref().map(|_| Stopwatch::start());
            let entry = match s.table.get(page) {
                Some(e) if !claimed.contains(&page.index()) => *e,
                _ => {
                    results[i] = Some(Err(Error::EntryNotFound { page: page.index() }));
                    continue;
                }
            };
            // Fetch + verify, mirroring the sequential path (including
            // injected in-transit flips): on mismatch the entry stays
            // intact and the error is retryable.
            let (got, fetch_ns) = {
                let Shard { pool, .. } = &mut *s;
                match pool.get(entry.handle) {
                    Ok(compressed) => {
                        let got = match self
                            .faults
                            .as_deref()
                            .and_then(|f| f.fire_value(FaultSite::BitCorruption))
                        {
                            Some(v) => {
                                let mut fetched = compressed.to_vec();
                                let bit = (v % (fetched.len() as u64 * 8)) as usize;
                                fetched[bit / 8] ^= 1 << (bit % 8);
                                xfm_faults::checksum(&fetched)
                            }
                            None => xfm_faults::checksum(compressed),
                        };
                        (got, psw.map_or(0, |s| s.elapsed_ns()))
                    }
                    Err(e) => {
                        results[i] = Some(Err(e));
                        continue;
                    }
                }
            };
            if got != entry.checksum {
                if let Some(t) = &self.telemetry {
                    t.swap.span(
                        SwapStage::Fetch,
                        page.index(),
                        0,
                        fetch_ns,
                        Cause::ChecksumMismatch,
                    );
                    t.swap.lifecycle_event_for(
                        LifecycleStage::Fault,
                        Cause::ChecksumMismatch,
                        entry.tenant,
                        page.index(),
                        si as u32,
                        u64::from(entry.compressed_len),
                        fetch_ns,
                    );
                }
                results[i] = Some(Err(Error::ChecksumMismatch {
                    page: page.index(),
                    expected: entry.checksum,
                    got,
                }));
                continue;
            }
            claimed.insert(page.index());
            match entry.codec {
                CodecKind::SameFilled => {
                    {
                        let Shard { pool, .. } = &mut *s;
                        let fill = pool.get(entry.handle).expect("verified above")[0];
                        let out = &mut outs[i];
                        out.clear();
                        out.resize(PAGE_SIZE, fill);
                    }
                    let op_ns = psw.map_or(0, |s| s.elapsed_ns());
                    results[i] = Some(self.finish_batch_page(
                        si,
                        s,
                        page,
                        entry,
                        Cycles::new(PAGE_SIZE as u64),
                        fetch_ns,
                        0,
                        op_ns,
                    ));
                }
                CodecKind::Raw => {
                    {
                        let Shard { pool, .. } = &mut *s;
                        let compressed = pool.get(entry.handle).expect("verified above");
                        let out = &mut outs[i];
                        out.clear();
                        out.extend_from_slice(compressed);
                    }
                    let op_ns = psw.map_or(0, |s| s.elapsed_ns());
                    results[i] = Some(self.finish_batch_page(
                        si,
                        s,
                        page,
                        entry,
                        Cycles::ZERO,
                        fetch_ns,
                        0,
                        op_ns,
                    ));
                }
                _ => blocks.push((i, entry, fetch_ns)),
            }
        }
        if blocks.is_empty() {
            return;
        }

        // Batched decode: every destination buffer is taken out of
        // `outs` so the pool can lend all source slices simultaneously.
        let dsw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        let mut dsts: Vec<Vec<u8>> = blocks
            .iter()
            .map(|&(i, _, _)| {
                let mut d = std::mem::take(&mut outs[i]);
                d.clear();
                d
            })
            .collect();
        let mut decode_res: Vec<Result<()>> = Vec::with_capacity(blocks.len());
        {
            let Shard { pool, scratch, .. } = &mut *s;
            let srcs: Vec<&[u8]> = blocks
                .iter()
                .map(|(_, e, _)| pool.get(e.handle).expect("verified above"))
                .collect();
            match self.codec.decompress_batch_into(&srcs, &mut dsts, scratch) {
                Ok(()) => {
                    for (k, d) in dsts.iter().enumerate() {
                        decode_res.push(if d.len() == PAGE_SIZE {
                            Ok(())
                        } else {
                            Err(Error::Corrupt(format!(
                                "page {} decompressed to {} bytes",
                                pages[blocks[k].0],
                                d.len()
                            )))
                        });
                    }
                }
                Err(_) => {
                    // The batch entry point aborts on the first corrupt
                    // block; re-decode individually so every page gets
                    // its own verdict, exactly as the sequential path
                    // would have produced.
                    for (k, (bi, e, _)) in blocks.iter().enumerate() {
                        let src = pool.get(e.handle).expect("verified above");
                        let d = &mut dsts[k];
                        d.clear();
                        let r = match self.codec.decompress_into(src, d, scratch) {
                            Ok(_) if d.len() != PAGE_SIZE => Err(Error::Corrupt(format!(
                                "page {} decompressed to {} bytes",
                                pages[*bi],
                                d.len()
                            ))),
                            Ok(_) => Ok(()),
                            Err(err) => Err(err),
                        };
                        decode_res.push(r);
                    }
                }
            }
        }
        let decomp_ns_each = dsw.map_or(0, |s| s.elapsed_ns()) / blocks.len() as u64;
        for (k, &(i, entry, fetch_ns)) in blocks.iter().enumerate() {
            outs[i] = std::mem::take(&mut dsts[k]);
            match std::mem::replace(&mut decode_res[k], Ok(())) {
                Ok(()) => {
                    results[i] = Some(self.finish_batch_page(
                        si,
                        s,
                        pages[i],
                        entry,
                        self.cost.decompress_cycles(PAGE_SIZE as u64),
                        fetch_ns,
                        decomp_ns_each,
                        fetch_ns + decomp_ns_each,
                    ));
                }
                Err(e) => {
                    // Corrupt stored data consumes the entry, matching
                    // the sequential path — the owner's bytes are
                    // credited back here too, so the error fall-through
                    // cannot leak accounting.
                    let _ = s.table.remove(pages[i]);
                    let _ = s.pool.free(entry.handle);
                    {
                        let Shard {
                            pool, host_pages, ..
                        } = s;
                        self.sync_host_pages(pool, host_pages);
                    }
                    if let Some(t) = &self.telemetry {
                        t.tenants
                            .series(entry.tenant)
                            .bytes_freed
                            .add(u64::from(entry.compressed_len));
                    }
                    results[i] = Some(Err(e));
                }
            }
        }
    }

    /// Accounting tail shared by every page a batched swap-in resolves:
    /// removes the entry, frees the slot, and mirrors the sequential
    /// path's stats and telemetry.
    #[allow(clippy::too_many_arguments)]
    fn finish_batch_page(
        &self,
        si: usize,
        s: &mut Shard,
        page: PageNumber,
        entry: SfmEntry,
        cycles: Cycles,
        fetch_ns: u64,
        decomp_ns: u64,
        op_ns: u64,
    ) -> Result<SwapOutcome> {
        s.table.remove(page)?;
        s.pool.free(entry.handle)?;
        {
            let Shard {
                pool, host_pages, ..
            } = s;
            self.sync_host_pages(pool, host_pages);
        }
        let outcome = SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: entry.compressed_len,
            cpu_cycles: cycles,
            ddr_bytes: ByteSize::from_bytes(u64::from(entry.compressed_len) + PAGE_SIZE as u64),
        };
        s.stats.record(&outcome, false);
        if let Some(t) = &self.telemetry {
            let cause = match entry.codec {
                CodecKind::SameFilled => Cause::SameFilled,
                CodecKind::Raw => Cause::StoredRaw,
                _ => Cause::Ok,
            };
            t.swap.swap_ins.inc();
            t.swap.cpu_executions.inc();
            t.swap.zpool_load_ns.record(fetch_ns);
            t.swap.swap_in_ns.record(op_ns);
            t.swap.span(SwapStage::Fault, page.index(), 0, op_ns, cause);
            t.swap
                .span(SwapStage::Fetch, page.index(), 0, fetch_ns, Cause::Ok);
            t.swap.lifecycle_event_for(
                LifecycleStage::Fault,
                cause,
                entry.tenant,
                page.index(),
                si as u32,
                u64::from(entry.compressed_len),
                op_ns,
            );
            t.swap.lifecycle_event_for(
                LifecycleStage::Fetch,
                Cause::Ok,
                entry.tenant,
                page.index(),
                si as u32,
                u64::from(entry.compressed_len),
                fetch_ns,
            );
            if !matches!(cause, Cause::SameFilled | Cause::StoredRaw) {
                t.swap.decompress_ns.record(decomp_ns);
                t.swap.span(
                    SwapStage::Decompress,
                    page.index(),
                    fetch_ns,
                    decomp_ns,
                    Cause::Ok,
                );
                t.swap.lifecycle_event_for(
                    LifecycleStage::Decompress,
                    Cause::Ok,
                    entry.tenant,
                    page.index(),
                    si as u32,
                    u64::from(entry.compressed_len),
                    decomp_ns,
                );
            }
            let ts = t.tenants.series(entry.tenant);
            ts.swap_ins.inc();
            ts.fault_ns.record(op_ns);
            ts.bytes_freed.add(u64::from(entry.compressed_len));
            t.shards.swap_ins[si].inc();
            t.shards.busy_ns[si].add(op_ns);
            t.shards.entries[si].set(s.table.len() as f64);
        }
        Ok(outcome)
    }

    /// Whether `page` currently lives in the SFM.
    #[must_use]
    pub fn contains(&self, page: PageNumber) -> bool {
        self.shards[self.shard_of(page)].lock().table.contains(page)
    }

    /// Batched swap-out pipeline. Same-filled (and invalid-size) pages
    /// resolve inline; everything else is compressed by `threads`
    /// workers from the `compress_pages` pool, and each finished page is
    /// stored back under *only its owning shard's lock*. Per-page
    /// results come back in submission order.
    ///
    /// Observable per-page behavior (outcome, stats, stored bytes)
    /// matches calling [`ShardedSfm::swap_out`] sequentially, except
    /// that a page already present is only rejected at store-back time
    /// (after its compression has been wasted).
    ///
    /// # Errors
    ///
    /// Returns an error when `threads` is zero or the codec itself fails
    /// (per-page conditions such as `EntryExists` or `SfmRegionFull` are
    /// reported in the per-page results instead).
    pub fn swap_out_batch(
        &self,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> Result<Vec<Result<SwapOutcome>>> {
        self.swap_out_batch_for(TenantId::SYSTEM, batch, threads)
    }

    /// Tenant-attributed form of [`ShardedSfm::swap_out_batch`]: every
    /// page in the batch is billed to `tenant`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedSfm::swap_out_batch`].
    pub fn swap_out_batch_for(
        &self,
        tenant: TenantId,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> Result<Vec<Result<SwapOutcome>>> {
        let results: Mutex<Vec<Option<Result<SwapOutcome>>>> =
            Mutex::new((0..batch.len()).map(|_| None).collect());
        let mut compress_idx: Vec<usize> = Vec::new();
        let mut to_compress: Vec<Bytes> = Vec::new();
        // Pages claimed earlier in this batch: later duplicates are
        // rejected here, in submission order, so the out-of-order sink
        // below can never race two occurrences of the same page.
        let mut claimed: BTreeSet<u64> = BTreeSet::new();
        for (i, (page, data)) in batch.iter().enumerate() {
            if data.len() != PAGE_SIZE {
                results.lock()[i] = Some(self.swap_out_for(tenant, *page, data));
            } else if self.contains(*page) || claimed.contains(&page.index()) {
                results.lock()[i] = Some(Err(Error::EntryExists { page: page.index() }));
            } else if same_filled(data).is_some() {
                let res = self.swap_out_for(tenant, *page, data);
                if res.is_ok() {
                    claimed.insert(page.index());
                }
                results.lock()[i] = Some(res);
            } else {
                claimed.insert(page.index());
                compress_idx.push(i);
                to_compress.push(data.clone());
            }
        }
        if !to_compress.is_empty() {
            let sink = |r: PageResult| {
                let bi = compress_idx[r.index];
                let (page, data) = &batch[bi];
                let res = self.store_compressed(tenant, *page, data, &r.compressed);
                results.lock()[bi] = Some(res);
            };
            let codec = &*self.codec;
            match &self.telemetry {
                Some(t) => {
                    compress_pages_streamed_traced(codec, &to_compress, threads, &t.registry, sink)?
                }
                None => compress_pages_streamed(codec, &to_compress, threads, sink)?,
            }
        }
        Ok(results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every page resolved"))
            .collect())
    }

    /// Store-back half of the batched pipeline: runs under the owning
    /// shard's lock only, with the compression already done.
    fn store_compressed(
        &self,
        tenant: TenantId,
        page: PageNumber,
        data: &[u8],
        compressed: &[u8],
    ) -> Result<SwapOutcome> {
        let si = self.shard_of(page);
        let mut guard = self.shards[si].lock();
        let s = &mut *guard;
        if s.table.contains(page) {
            return Err(Error::EntryExists { page: page.index() });
        }
        let sw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        self.store_page(si, s, tenant, page, data, Some(compressed), sw, 0)
    }

    /// Common post-compression store path. `compressed` is
    /// `Some(bytes)` for the batched pipeline (compressed off-lock) or
    /// `None` for the sequential path (compressed into `s.comp_buf`).
    #[allow(clippy::too_many_arguments)]
    fn store_page(
        &self,
        si: usize,
        s: &mut Shard,
        tenant: TenantId,
        page: PageNumber,
        data: &[u8],
        compressed: Option<&[u8]>,
        sw: Option<Stopwatch>,
        compress_ns: u64,
    ) -> Result<SwapOutcome> {
        let cycles = self.cost.compress_cycles(PAGE_SIZE as u64);
        let comp_len = compressed.map_or(s.comp_buf.len(), <[u8]>::len);
        let raw = comp_len > self.config.max_compressed_len();
        if raw {
            // zswap-style reject: store raw; compression cycles were
            // still spent discovering that.
            s.stats.stored_raw += 1;
        }
        // Self-describing auto blocks carry their chosen route in the
        // tag byte; attribute it without decompressing.
        let auto_route = if !raw && self.codec.kind() == CodecKind::Auto {
            block_route(compressed.unwrap_or(&s.comp_buf))
        } else {
            None
        };
        let ssw = self.telemetry.as_ref().map(|_| Stopwatch::start());
        let (handle, extra_ddr, stored_len, checksum) = {
            let Shard {
                pool,
                stats,
                host_pages,
                comp_buf,
                ..
            } = s;
            let bytes: &[u8] = if raw {
                data
            } else {
                compressed.unwrap_or(comp_buf)
            };
            match self.store_bytes(pool, stats, host_pages, bytes) {
                Ok((h, extra)) => (h, extra, bytes.len(), xfm_faults::checksum(bytes)),
                Err(e) => {
                    if let Some(t) = &self.telemetry {
                        let ns = ssw.map_or(0, |s| s.elapsed_ns());
                        t.swap.span(
                            SwapStage::ZpoolStore,
                            page.index(),
                            0,
                            ns,
                            Cause::RegionFull,
                        );
                        t.swap.lifecycle_event_for(
                            LifecycleStage::ZpoolStore,
                            Cause::RegionFull,
                            tenant,
                            page.index(),
                            si as u32,
                            bytes.len() as u64,
                            ns,
                        );
                    }
                    return Err(e);
                }
            }
        };
        let store_ns = ssw.map_or(0, |s| s.elapsed_ns());
        let codec_kind = if raw {
            CodecKind::Raw
        } else {
            self.codec.kind()
        };
        s.table.insert(
            page,
            SfmEntry {
                handle,
                compressed_len: stored_len as u32,
                codec: codec_kind,
                checksum,
                tenant,
            },
        )?;

        let outcome = SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: stored_len as u32,
            cpu_cycles: cycles,
            // Cold page read + compressed write, plus any compaction copies.
            ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64 + stored_len as u64) + extra_ddr,
        };
        s.stats.record(&outcome, true);
        if let (Some(t), Some(sw)) = (&self.telemetry, &sw) {
            let total = sw.elapsed_ns();
            let cause = if raw {
                t.swap.stored_raw.inc();
                Cause::StoredRaw
            } else {
                Cause::Ok
            };
            t.swap.swap_outs.inc();
            t.swap.cpu_executions.inc();
            match auto_route {
                Some(CodecKind::Raw) => t.swap.codec_route_raw.inc(),
                Some(CodecKind::Xlz) => t.swap.codec_route_xlz.inc(),
                Some(CodecKind::XDeflateFse) => t.swap.codec_route_fse.inc(),
                _ => {}
            }
            if let Some(route) = auto_route {
                t.swap.lifecycle_event_for(
                    LifecycleStage::CodecRoute,
                    Cause::Ok,
                    tenant,
                    page.index(),
                    si as u32,
                    u64::from(route.code()),
                    0,
                );
            }
            if compressed.is_none() {
                // The batched pipeline records compression latency from
                // inside the worker pool instead.
                t.swap.compress_ns.record(compress_ns);
                t.swap
                    .span(SwapStage::Compress, page.index(), 0, compress_ns, cause);
            }
            t.swap.lifecycle_event_for(
                LifecycleStage::Compress,
                cause,
                tenant,
                page.index(),
                si as u32,
                comp_len as u64,
                compress_ns,
            );
            t.swap.zpool_store_ns.record(store_ns);
            t.swap.swap_out_ns.record(total);
            t.swap.span(
                SwapStage::ZpoolStore,
                page.index(),
                compress_ns,
                store_ns,
                Cause::Ok,
            );
            t.swap.lifecycle_event_for(
                LifecycleStage::ZpoolStore,
                cause,
                tenant,
                page.index(),
                si as u32,
                stored_len as u64,
                store_ns,
            );
            let ts = t.tenants.series(tenant);
            ts.swap_outs.inc();
            ts.bytes_stored.add(stored_len as u64);
            t.shards.swap_outs[si].inc();
            t.shards.busy_ns[si].add(total);
            t.shards.entries[si].set(s.table.len() as f64);
        }
        Ok(outcome)
    }

    /// Allocates `bytes` in a shard's pool under the global capacity
    /// budget; on budget exhaustion, compacts *this shard* once and
    /// retries (mirroring the unsharded compact-once-retry), recording
    /// a rejection when still full.
    fn store_bytes(
        &self,
        pool: &mut Zpool,
        stats: &mut BackendStats,
        shard_pages: &mut u64,
        bytes: &[u8],
    ) -> Result<(Handle, ByteSize)> {
        let mut extra_ddr = ByteSize::ZERO;
        if self.store_would_overflow(pool, bytes.len()) {
            let report = pool.compact();
            self.sync_host_pages(pool, shard_pages);
            extra_ddr += report.moved_bytes * 2; // memcpy: read + write
            if self.store_would_overflow(pool, bytes.len()) {
                stats.rejected_full += 1;
                return Err(Error::SfmRegionFull);
            }
        }
        let handle = pool.alloc_faulted(bytes, self.faults.as_deref())?;
        self.sync_host_pages(pool, shard_pages);
        Ok((handle, extra_ddr))
    }

    /// Whether storing `len` bytes would grow this shard's pool past the
    /// *global* budget. Concurrent shards may overshoot the budget by up
    /// to `shards - 1` host pages (the check and the growth are not one
    /// atomic step); single-threaded use is exact.
    fn store_would_overflow(&self, pool: &Zpool, len: usize) -> bool {
        pool.would_grow(len)
            && (self.total_host_pages.load(Ordering::Relaxed) + 1) * PAGE_SIZE as u64
                > self.config.region_capacity.as_bytes()
    }

    /// Mirrors a shard pool's host-page count into the global budget.
    fn sync_host_pages(&self, pool: &Zpool, shard_pages: &mut u64) {
        let now = pool.stats().host_pages;
        let prev = std::mem::replace(shard_pages, now);
        if now >= prev {
            self.total_host_pages
                .fetch_add(now - prev, Ordering::Relaxed);
        } else {
            self.total_host_pages
                .fetch_sub(prev - now, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Control plane (sharded SfmController)
    // ------------------------------------------------------------------

    /// Records an application access to `page` at `now`. Returns `true`
    /// if the page was in far memory (a promotion / swap-in fault).
    pub fn touch(&self, page: PageNumber, now: Nanos) -> bool {
        self.roll_minute(now);
        let si = self.shard_of(page);
        let mut s = self.shards[si].lock();
        let was_far = s.far.remove(&page.index());
        if was_far {
            self.far_pages_total.fetch_sub(1, Ordering::Relaxed);
            self.promoted_this_minute.fetch_add(1, Ordering::Relaxed);
        }
        s.resident.insert(page.index(), now);
        was_far
    }

    /// Explicitly marks a page promoted out of far memory without an
    /// application access (controller-initiated prefetch).
    pub fn prefetch(&self, page: PageNumber, now: Nanos) -> bool {
        self.roll_minute(now);
        let si = self.shard_of(page);
        let mut s = self.shards[si].lock();
        let was_far = s.far.remove(&page.index());
        if was_far {
            self.far_pages_total.fetch_sub(1, Ordering::Relaxed);
            self.promoted_this_minute.fetch_add(1, Ordering::Relaxed);
            s.resident.insert(page.index(), now);
        }
        was_far
    }

    /// Scans every shard's resident set at `now`, merging cold
    /// candidates (idle ≥ threshold) across shards, rate-limiting to the
    /// globally oldest `scan_batch` pages, and moving the survivors to
    /// the far set. Locks are taken one shard at a time; candidates
    /// touched between collection and commit are skipped.
    pub fn scan(&self, now: Nanos) -> Vec<PageNumber> {
        self.roll_minute(now);
        let threshold = self.scan_config.cold_threshold;
        let mut cold: Vec<(Nanos, u64)> = Vec::new();
        let mut entry_counts: Vec<u64> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let s = shard.lock();
            cold.extend(
                s.resident
                    .iter()
                    .filter(|(_, &last)| now.saturating_sub(last) >= threshold)
                    .map(|(&p, &last)| (last, p)),
            );
            entry_counts.push(s.table.len() as u64);
        }
        select_cold_batch(&mut cold, self.scan_config.scan_batch);
        let mut pages = Vec::with_capacity(cold.len());
        for &(last, p) in &cold {
            let pn = PageNumber::new(p);
            let si = self.shard_of(pn);
            let mut s = self.shards[si].lock();
            // Re-check: the page may have been touched (or demoted by a
            // racing scanner) since the candidate was collected.
            if s.resident.get(&p) == Some(&last) {
                s.resident.remove(&p);
                s.far.insert(p);
                self.far_pages_total.fetch_add(1, Ordering::Relaxed);
                pages.push(pn);
                if let Some(t) = &self.telemetry {
                    t.swap.lifecycle_event(
                        LifecycleStage::ColdScanSelect,
                        Cause::Ok,
                        p,
                        si as u32,
                        now.saturating_sub(last).as_ns(),
                        0,
                    );
                }
            }
        }
        if let Some(t) = &self.telemetry {
            t.shards.update_imbalance(&entry_counts);
        }
        pages
    }

    /// One batched demotion round: scan for cold pages, fetch their
    /// contents from the caller, and push them through
    /// [`ShardedSfm::swap_out_batch`]. Returns the demoted pages and the
    /// per-page outcomes (in the same order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedSfm::swap_out_batch`].
    pub fn demote_cold(
        &self,
        now: Nanos,
        threads: usize,
        fetch: impl Fn(PageNumber) -> Bytes,
    ) -> Result<(Vec<PageNumber>, Vec<Result<SwapOutcome>>)> {
        let cold = self.scan(now);
        let batch: Vec<(PageNumber, Bytes)> = cold.iter().map(|&p| (p, fetch(p))).collect();
        let results = self.swap_out_batch(&batch, threads)?;
        Ok((cold, results))
    }

    fn roll_minute(&self, now: Nanos) {
        let minute = Nanos::from_secs(60);
        // Fast path: no roll due — one relaxed load, no locks.
        if now.as_ns()
            < self
                .minute_start_ns
                .load(Ordering::Relaxed)
                .saturating_add(minute.as_ns())
        {
            return;
        }
        let mut m = self.minute.lock();
        if now < m.start + minute {
            return; // another thread rolled first
        }
        let mut promoted_pages = self.promoted_this_minute.swap(0, Ordering::Relaxed);
        while now >= m.start + minute {
            let far_bytes = ByteSize::from_pages(self.far_pages_total.load(Ordering::Relaxed));
            let promoted = ByteSize::from_pages(promoted_pages);
            m.stats = PromotionStats {
                promoted_last_minute: promoted,
                far_bytes,
                promotion_rate: if far_bytes.is_zero() {
                    0.0
                } else {
                    promoted.as_bytes() as f64 / far_bytes.as_bytes() as f64
                },
                minutes: m.stats.minutes + 1,
            };
            promoted_pages = 0;
            m.start += minute;
        }
        self.minute_start_ns
            .store(m.start.as_ns(), Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Aggregated views
    // ------------------------------------------------------------------

    /// Number of resident pages across all shards.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident.len()).sum()
    }

    /// Number of far-memory pages across all shards.
    #[must_use]
    pub fn far_pages(&self) -> usize {
        self.far_pages_total.load(Ordering::Relaxed) as usize
    }

    /// Fraction of tracked pages currently classified cold (in far
    /// memory).
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        let resident = self.resident_pages();
        let far = self.far_pages();
        let total = resident + far;
        if total == 0 {
            0.0
        } else {
            far as f64 / total as f64
        }
    }

    /// Promotion statistics for the last completed minute.
    #[must_use]
    pub fn promotion_stats(&self) -> PromotionStats {
        self.minute.lock().stats
    }

    /// Merged backend statistics across shards.
    #[must_use]
    pub fn stats(&self) -> BackendStats {
        let mut total = BackendStats::default();
        for shard in &self.shards {
            let st = shard.lock().stats;
            total.swap_outs += st.swap_outs;
            total.swap_ins += st.swap_ins;
            total.nma_executions += st.nma_executions;
            total.cpu_executions += st.cpu_executions;
            total.cpu_cycles += st.cpu_cycles;
            total.ddr_bytes += st.ddr_bytes;
            total.rejected_full += st.rejected_full;
            total.stored_raw += st.stored_raw;
        }
        total
    }

    /// Merged zpool statistics across shards.
    #[must_use]
    pub fn pool_stats(&self) -> ZpoolStats {
        let mut total = ZpoolStats::default();
        for shard in &self.shards {
            let st = shard.lock().pool.stats();
            total.stored_bytes += st.stored_bytes;
            total.slot_overhead += st.slot_overhead;
            total.host_pages += st.host_pages;
            total.objects += st.objects;
        }
        total
    }

    /// Per-tenant compressed-byte usage merged across shards, sorted by
    /// tenant id. Derived from the resident entries (each billed to the
    /// tenant recorded at swap-out), so the accounting can neither leak
    /// nor double-count and the byte sum always equals
    /// `pool_stats().stored_bytes`.
    #[must_use]
    pub fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        let mut per: BTreeMap<TenantId, u64> = BTreeMap::new();
        for shard in &self.shards {
            for (t, b) in shard.lock().table.tenant_bytes() {
                *per.entry(t).or_insert(0) += b;
            }
        }
        per.into_iter().collect()
    }

    /// Live compressed entries per shard (for imbalance inspection).
    #[must_use]
    pub fn shard_entries(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().table.len() as u64)
            .collect()
    }

    /// Republishes per-shard entry gauges and the imbalance gauge.
    /// No-op when telemetry is detached.
    pub fn update_shard_gauges(&self) {
        if let Some(t) = &self.telemetry {
            t.shards.update_imbalance(&self.shard_entries());
        }
    }

    /// Compacts every shard's pool, returning the merged report.
    pub fn compact_all(&self) -> CompactReport {
        let mut total = CompactReport::default();
        for shard in &self.shards {
            let mut s = shard.lock();
            let r = s.pool.compact();
            let Shard {
                pool, host_pages, ..
            } = &mut *s;
            self.sync_host_pages(pool, host_pages);
            total.moved_objects += r.moved_objects;
            total.moved_bytes += r.moved_bytes;
            total.freed_pages += r.freed_pages;
        }
        total
    }
}

impl SwapPlane for ShardedSfm {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        ShardedSfm::swap_out(self, page, data).map_err(SwapError::from)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        ShardedSfm::swap_in_into(self, page, do_offload, out).map_err(SwapError::from)
    }

    fn swap_out_batch(
        &self,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        ShardedSfm::swap_out_batch(self, batch, threads)
            .map(|results| {
                results
                    .into_iter()
                    .map(|r| r.map_err(SwapError::from))
                    .collect()
            })
            .map_err(SwapError::from)
    }

    fn swap_in_batch_into(
        &self,
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
    ) -> Vec<SwapResult<SwapOutcome>> {
        ShardedSfm::swap_in_batch_into(self, pages, outs)
            .into_iter()
            .map(|r| r.map_err(SwapError::from))
            .collect()
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        ShardedSfm::swap_out_for(self, ctx.tenant, page, data).map_err(SwapError::from)
    }

    fn swap_out_batch_ctx(
        &self,
        ctx: &OpContext,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        ShardedSfm::swap_out_batch_for(self, ctx.tenant, batch, threads)
            .map(|results| {
                results
                    .into_iter()
                    .map(|r| r.map_err(SwapError::from))
                    .collect()
            })
            .map_err(SwapError::from)
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        ShardedSfm::tenant_usage(self)
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        self.shards[self.shard_of(page)]
            .lock()
            .table
            .get(page)
            .map(|e| e.tenant)
    }

    fn contains(&self, page: PageNumber) -> bool {
        ShardedSfm::contains(self, page)
    }

    fn compact(&self) -> CompactReport {
        self.compact_all()
    }

    fn stats(&self) -> BackendStats {
        ShardedSfm::stats(self)
    }

    fn pool_stats(&self) -> ZpoolStats {
        ShardedSfm::pool_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuBackend;
    use xfm_compress::Corpus;

    fn page_of(corpus: Corpus, seed: u64) -> Vec<u8> {
        corpus.generate(seed, PAGE_SIZE)
    }

    fn plane(shards: usize) -> ShardedSfm {
        ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(4),
                ..SfmConfig::default()
            },
            scan: ColdScanConfig::default(),
            shards,
        })
    }

    #[test]
    fn plane_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedSfm>();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = plane(3);
    }

    #[test]
    fn round_trip_across_shard_counts() {
        for shards in [1usize, 2, 4, 8] {
            let sfm = plane(shards);
            for (i, corpus) in Corpus::all().iter().enumerate() {
                let page = page_of(*corpus, i as u64);
                sfm.swap_out(PageNumber::new(i as u64), &page).unwrap();
                assert!(sfm.contains(PageNumber::new(i as u64)));
                let (restored, _) = sfm.swap_in(PageNumber::new(i as u64), false).unwrap();
                assert_eq!(restored, page, "{} shards, {}", shards, corpus.name());
            }
            assert_eq!(sfm.pool_stats().objects, 0);
        }
    }

    #[test]
    fn lifecycle_trail_reconstructs_page_story() {
        use xfm_compress::AutoCodec;

        let mut sfm = ShardedSfm::with_codec(
            ShardedSfmConfig {
                sfm: SfmConfig {
                    region_capacity: ByteSize::from_mib(4),
                    ..SfmConfig::default()
                },
                scan: ColdScanConfig::default(),
                shards: 2,
            },
            Arc::new(AutoCodec::default()),
            CostModel::paper_average(),
        );
        let registry = Registry::new();
        sfm.attach_telemetry(&registry);

        // Warm-up is recorded retroactively at attach time: 3 pages per
        // shard round-tripped through the codec during construction.
        let warmups: Vec<_> = registry
            .lifecycle()
            .snapshot()
            .into_iter()
            .filter(|e| e.stage == LifecycleStage::Warmup)
            .collect();
        assert_eq!(warmups.len(), 1);
        assert_eq!(warmups[0].aux, 6, "3 warm pages x 2 shards");

        let page = page_of(Corpus::EnglishText, 11);
        sfm.swap_out(PageNumber::new(11), &page).unwrap();
        sfm.touch(PageNumber::new(11), Nanos::ZERO);
        let cold = sfm.scan(Nanos::from_secs(600));
        assert_eq!(cold, vec![PageNumber::new(11)]);
        sfm.swap_in(PageNumber::new(11), false).unwrap();

        let story: Vec<LifecycleStage> = registry
            .lifecycle()
            .page_history(11)
            .into_iter()
            .map(|e| e.stage)
            .collect();
        for stage in [
            LifecycleStage::CodecRoute,
            LifecycleStage::Compress,
            LifecycleStage::ZpoolStore,
            LifecycleStage::ColdScanSelect,
            LifecycleStage::Fault,
            LifecycleStage::Fetch,
            LifecycleStage::Decompress,
        ] {
            assert!(story.contains(&stage), "missing {stage:?} in {story:?}");
        }
        // Events for one page all carry that page's owning shard.
        let si = sfm.shard_of(PageNumber::new(11)) as u32;
        for e in registry.lifecycle().page_history(11) {
            assert_eq!(e.shard, si);
        }
    }

    #[test]
    fn hash_routing_spreads_sequential_pages() {
        let sfm = plane(8);
        let mut counts = [0usize; 8];
        for p in 0..8000u64 {
            counts[sfm.shard_of(PageNumber::new(p))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {s} got {c} of 8000 sequential pages"
            );
        }
    }

    #[test]
    fn one_shard_matches_cpu_backend_outcomes() {
        let sfm = plane(1);
        let cpu = CpuBackend::new(SfmConfig {
            region_capacity: ByteSize::from_mib(4),
            ..SfmConfig::default()
        });
        for (i, corpus) in Corpus::all().iter().enumerate() {
            let page = page_of(*corpus, i as u64);
            let a = sfm.swap_out(PageNumber::new(i as u64), &page).unwrap();
            let b = cpu.swap_out(PageNumber::new(i as u64), &page).unwrap();
            assert_eq!(a, b, "{}", corpus.name());
        }
        assert_eq!(ShardedSfm::stats(&sfm), cpu.stats());
        assert_eq!(ShardedSfm::pool_stats(&sfm), cpu.pool_stats());
        for i in 0..Corpus::all().len() as u64 {
            let (da, oa) = sfm.swap_in(PageNumber::new(i), false).unwrap();
            let (db, ob) = cpu.swap_in(PageNumber::new(i), false).unwrap();
            assert_eq!(da, db);
            assert_eq!(oa, ob);
        }
        assert_eq!(ShardedSfm::stats(&sfm), cpu.stats());
    }

    #[test]
    fn capacity_budget_is_global_across_shards() {
        // Two raw pages fill the 2-page global budget no matter which
        // shards they land on.
        let sfm = ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_pages(2),
                ..SfmConfig::default()
            },
            scan: ColdScanConfig::default(),
            shards: 4,
        });
        let pages: Vec<Vec<u8>> = (0..3)
            .map(|i| page_of(Corpus::RandomBytes, 7 + i))
            .collect();
        sfm.swap_out(PageNumber::new(0), &pages[0]).unwrap();
        sfm.swap_out(PageNumber::new(1), &pages[1]).unwrap();
        assert!(matches!(
            sfm.swap_out(PageNumber::new(2), &pages[2]),
            Err(Error::SfmRegionFull)
        ));
        assert_eq!(ShardedSfm::stats(&sfm).rejected_full, 1);
        // Swapping one in frees global budget for any shard.
        sfm.swap_in(PageNumber::new(0), false).unwrap();
        sfm.swap_out(PageNumber::new(2), &pages[2]).unwrap();
    }

    #[test]
    fn batch_matches_sequential_swap_out() {
        let batch_plane = plane(4);
        let seq_plane = plane(4);
        let batch: Vec<(PageNumber, Bytes)> = (0..24u64)
            .map(|i| {
                let data = if i % 7 == 0 {
                    vec![0xAAu8; PAGE_SIZE]
                } else {
                    page_of(Corpus::all()[i as usize % Corpus::all().len()], i)
                };
                (PageNumber::new(i), Bytes::from(data))
            })
            .collect();
        let results = batch_plane.swap_out_batch(&batch, 4).unwrap();
        assert_eq!(results.len(), batch.len());
        for ((page, data), res) in batch.iter().zip(&results) {
            let seq = seq_plane.swap_out(*page, data).unwrap();
            assert_eq!(res.as_ref().unwrap(), &seq);
        }
        assert_eq!(
            ShardedSfm::stats(&batch_plane),
            ShardedSfm::stats(&seq_plane)
        );
        assert_eq!(
            ShardedSfm::pool_stats(&batch_plane),
            ShardedSfm::pool_stats(&seq_plane)
        );
        // Every page faults back identical on both planes.
        for (page, data) in &batch {
            let (a, _) = batch_plane.swap_in(*page, false).unwrap();
            let (b, _) = seq_plane.swap_in(*page, false).unwrap();
            assert_eq!(&a[..], &data[..]);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn batch_reports_per_page_errors() {
        let sfm = plane(2);
        let good = page_of(Corpus::Json, 1);
        sfm.swap_out(PageNumber::new(5), &good).unwrap();
        let batch = vec![
            (PageNumber::new(5), Bytes::from(good.clone())), // duplicate
            (PageNumber::new(6), Bytes::from(vec![1u8; 10])), // wrong size
            (PageNumber::new(7), Bytes::from(good.clone())), // fine
        ];
        let results = sfm.swap_out_batch(&batch, 2).unwrap();
        assert!(matches!(results[0], Err(Error::EntryExists { page: 5 })));
        assert!(matches!(results[1], Err(Error::InvalidConfig(_))));
        assert!(results[2].is_ok());
        assert!(sfm.contains(PageNumber::new(7)));
    }

    #[test]
    fn touch_scan_prefetch_mirror_controller() {
        use crate::SfmController;
        let scan = ColdScanConfig {
            cold_threshold: Nanos::from_secs(1),
            scan_batch: 3,
        };
        let sfm = ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig::default(),
            scan,
            shards: 4,
        });
        let mut ctl = SfmController::new(scan);
        for p in 0..10u64 {
            let now = Nanos::from_ms(p);
            assert_eq!(
                sfm.touch(PageNumber::new(p), now),
                ctl.touch(PageNumber::new(p), now)
            );
        }
        // Rate-limited scans drain in the same global age order.
        for _ in 0..4 {
            assert_eq!(sfm.scan(Nanos::from_secs(2)), ctl.scan(Nanos::from_secs(2)));
            assert_eq!(sfm.far_pages(), ctl.far_pages());
            assert_eq!(sfm.resident_pages(), ctl.resident_pages());
        }
        // Promotions on fault and on prefetch.
        assert_eq!(
            sfm.touch(PageNumber::new(0), Nanos::from_secs(3)),
            ctl.touch(PageNumber::new(0), Nanos::from_secs(3))
        );
        assert_eq!(
            sfm.prefetch(PageNumber::new(1), Nanos::from_secs(4)),
            ctl.prefetch(PageNumber::new(1), Nanos::from_secs(4))
        );
        assert!((sfm.cold_fraction() - ctl.cold_fraction()).abs() < 1e-12);
        // Minute roll produces the same promotion stats.
        sfm.touch(PageNumber::new(0), Nanos::from_secs(61));
        ctl.touch(PageNumber::new(0), Nanos::from_secs(61));
        assert_eq!(sfm.promotion_stats(), ctl.promotion_stats());
    }

    #[test]
    fn demote_cold_scans_and_stores() {
        let sfm = ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(4),
                ..SfmConfig::default()
            },
            scan: ColdScanConfig {
                cold_threshold: Nanos::from_secs(1),
                scan_batch: 0,
            },
            shards: 4,
        });
        let contents: Vec<Bytes> = (0..16u64)
            .map(|i| Bytes::from(page_of(Corpus::Json, i)))
            .collect();
        for p in 0..16u64 {
            sfm.touch(PageNumber::new(p), Nanos::ZERO);
        }
        let (cold, results) = sfm
            .demote_cold(Nanos::from_secs(2), 4, |p| {
                contents[p.index() as usize].clone()
            })
            .unwrap();
        assert_eq!(cold.len(), 16);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(sfm.far_pages(), 16);
        for p in 0..16u64 {
            let (restored, _) = sfm.swap_in(PageNumber::new(p), false).unwrap();
            assert_eq!(&restored[..], &contents[p as usize][..]);
        }
    }

    #[test]
    fn concurrent_disjoint_traffic_is_safe() {
        // 4 threads × disjoint page ranges, mixed fault/swap-out traffic.
        let sfm = Arc::new(plane(4));
        const PER_THREAD: u64 = 40;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sfm = Arc::clone(&sfm);
                scope.spawn(move || {
                    let base = t * PER_THREAD;
                    let mut buf = Vec::with_capacity(PAGE_SIZE);
                    for i in 0..PER_THREAD {
                        let p = PageNumber::new(base + i);
                        let data = page_of(Corpus::Csv, base + i);
                        sfm.swap_out(p, &data).unwrap();
                        sfm.swap_in_into(p, false, &mut buf).unwrap();
                        assert_eq!(buf, data);
                    }
                });
            }
        });
        let stats = ShardedSfm::stats(&sfm);
        assert_eq!(stats.swap_outs, 4 * PER_THREAD);
        assert_eq!(stats.swap_ins, 4 * PER_THREAD);
        assert_eq!(ShardedSfm::pool_stats(&sfm).objects, 0);
    }

    #[test]
    fn telemetry_records_per_shard_series() {
        let registry = Registry::new();
        let mut sfm = plane(2);
        sfm.attach_telemetry(&registry);
        for i in 0..8u64 {
            sfm.swap_out(PageNumber::new(i), &page_of(Corpus::Json, i))
                .unwrap();
        }
        sfm.update_shard_gauges();
        let s = registry.snapshot();
        assert_eq!(s.counters["xfm_swap_outs_total"], 8);
        let per_shard: u64 = (0..2)
            .map(|i| s.counters[&format!("xfm_shard_swap_outs_total{{shard=\"{i}\"}}")])
            .sum();
        assert_eq!(per_shard, 8);
        assert!(s.gauges["xfm_shard_imbalance"] >= 1.0);
        for i in 0..8u64 {
            sfm.swap_in(PageNumber::new(i), false).unwrap();
        }
        let s = registry.snapshot();
        let busy: u64 = (0..2)
            .map(|i| s.counters[&format!("xfm_shard_busy_ns_total{{shard=\"{i}\"}}")])
            .sum();
        assert!(busy > 0, "shard busy time must accumulate");
    }

    #[test]
    fn auto_codec_routes_are_attributed_and_round_trip() {
        let registry = Registry::new();
        let mut sfm = ShardedSfm::with_codec(
            ShardedSfmConfig {
                sfm: SfmConfig {
                    region_capacity: ByteSize::from_mib(4),
                    ..SfmConfig::default()
                },
                scan: ColdScanConfig::default(),
                shards: 2,
            },
            Arc::new(xfm_compress::AutoCodec::default()),
            CostModel::paper_average(),
        );
        sfm.attach_telemetry(&registry);
        // Two runs of different bytes: low-entropy (xlz route) without
        // tripping the same-filled short-circuit ahead of the codec.
        let mut runs = vec![0u8; PAGE_SIZE];
        runs[PAGE_SIZE / 2..].fill(0xFF);
        let pages: Vec<(u64, Vec<u8>)> = [
            page_of(Corpus::Json, 1),
            page_of(Corpus::Json, 2),
            page_of(Corpus::RandomBytes, 3),
            runs,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, data)| (i as u64, data))
        .collect();
        for (p, data) in &pages {
            sfm.swap_out(PageNumber::new(*p), data).unwrap();
        }
        let s = registry.snapshot();
        assert_eq!(s.counters["xfm_codec_route_fse_total"], 2);
        assert_eq!(s.counters["xfm_codec_route_xlz_total"], 1);
        // The random page is either attributed to the probe's raw route
        // or rejected by the zswap-style threshold before attribution.
        assert_eq!(
            s.counters["xfm_codec_route_raw_total"] + s.counters["xfm_stored_raw_total"],
            1
        );
        for (p, data) in &pages {
            let (restored, _) = sfm.swap_in(PageNumber::new(*p), false).unwrap();
            assert_eq!(&restored, data, "page {p}");
        }
    }
}
