//! Latency/bandwidth-modeled swap planes: SSD and remote-node media.
//!
//! The DRAM-resident planes ([`crate::sharded::ShardedSfm`], the CPU
//! baseline) model *compression* cost; the media planes here model
//! *transport* cost. A [`ModeledPlane`] stores raw 4 KiB pages and
//! charges each operation a service time of `base + bytes / bandwidth`
//! against a single-server queue (`busy_until`), publishing completion
//! times to a shared [`ClockMirror`] from the `xfm-event` core — so a
//! tiered composition of DRAM, SSD, and remote planes advances one
//! coherent virtual timeline and replays deterministically under a
//! fixed op sequence.
//!
//! [`ReplicatedPlane`] spans two remote [`ModeledPlane`]s with
//! write-both / read-any semantics and checksum-verified read repair:
//! a write that silently loses one replica (the
//! [`FaultSite::ReplicaLoss`] hook) or a whole replica kill leaves
//! every stored page recoverable from the surviving copy, which the
//! chaos gate exercises end to end.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use xfm_event::ClockMirror;
use xfm_faults::{checksum, FaultInjector, FaultSite};
use xfm_telemetry::{Histogram, Registry};
use xfm_types::{
    ByteSize, Cycles, Error, Nanos, OpContext, PageNumber, SwapError, SwapResult, SwapSite,
    TenantId, PAGE_SIZE,
};

use crate::backend::{BackendStats, ExecutedOn, SwapOutcome, SwapPlane};
use crate::zpool::{CompactReport, ZpoolStats};

/// Latency/bandwidth parameters of one storage or network medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaModel {
    /// Fixed cost of a read (seek / request round-trip).
    pub read_base: Nanos,
    /// Fixed cost of a write.
    pub write_base: Nanos,
    /// Sustained transfer bandwidth in bytes per nanosecond
    /// (1 byte/ns = 1 GB/s).
    pub bytes_per_ns: u64,
}

impl MediaModel {
    /// A local NVMe-class SSD: ~20 µs reads, ~50 µs writes, 2 GB/s.
    #[must_use]
    pub fn ssd() -> Self {
        Self {
            read_base: Nanos::from_ns(20_000),
            write_base: Nanos::from_ns(50_000),
            bytes_per_ns: 2,
        }
    }

    /// RDMA-reachable remote memory: ~3 µs either way, 5 GB/s.
    #[must_use]
    pub fn remote() -> Self {
        Self {
            read_base: Nanos::from_ns(3_000),
            write_base: Nanos::from_ns(3_000),
            bytes_per_ns: 5,
        }
    }

    /// Service time for moving `bytes` once, excluding queueing.
    #[must_use]
    pub fn service_ns(&self, base: Nanos, bytes: u64) -> u64 {
        base.as_ns() + bytes / self.bytes_per_ns.max(1)
    }
}

/// One stored page with its integrity checksum.
#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    sum: u64,
}

#[derive(Debug, Default)]
struct MediaState {
    pages: BTreeMap<u64, Block>,
    stats: BackendStats,
    /// Virtual time at which the device finishes its current request
    /// (single-server queue).
    busy_until: u64,
}

/// A raw-page swap plane over latency/bandwidth-modeled media.
///
/// Pages are stored uncompressed (the compression tier sits above);
/// every operation advances the shared virtual clock by its modeled
/// completion time and records the end-to-end latency (service +
/// queueing) into a [`Histogram`] in deterministic simulated
/// nanoseconds.
#[derive(Debug)]
pub struct ModeledPlane {
    name: String,
    model: MediaModel,
    capacity_pages: u64,
    clock: ClockMirror,
    state: Mutex<MediaState>,
    alive: AtomicBool,
    read_hist: Arc<Histogram>,
    write_hist: Arc<Histogram>,
    faults: Option<Arc<FaultInjector>>,
    corrupted_reads: AtomicU64,
    /// page index -> billed tenant, maintained at the [`SwapPlane`]
    /// surface only (the replication layer goes through the private
    /// `store`/`load_into` and keeps its own replica-count-independent
    /// ledger instead).
    owners: Mutex<BTreeMap<u64, TenantId>>,
}

impl ModeledPlane {
    /// Builds a plane over `model` media. `capacity_pages == 0` means
    /// unbounded. All planes sharing `clock` advance one timeline.
    #[must_use]
    pub fn new(name: &str, model: MediaModel, capacity_pages: u64, clock: ClockMirror) -> Self {
        Self {
            name: name.to_owned(),
            model,
            capacity_pages,
            clock,
            state: Mutex::new(MediaState::default()),
            alive: AtomicBool::new(true),
            read_hist: Arc::new(Histogram::new()),
            write_hist: Arc::new(Histogram::new()),
            faults: None,
            corrupted_reads: AtomicU64::new(0),
            owners: Mutex::new(BTreeMap::new()),
        }
    }

    /// Re-homes the latency histograms into `registry` under
    /// `<name>.read_ns` / `<name>.write_ns`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.read_hist = registry.histogram(&format!("{}.read_ns", self.name));
        self.write_hist = registry.histogram(&format!("{}.write_ns", self.name));
    }

    /// Arms fault injection ([`FaultSite::BitCorruption`] flips a
    /// fetched block's checksum; the stored copy stays intact).
    pub fn attach_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// The plane's name (used as the telemetry metric prefix).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulated end-to-end read latencies (ns).
    #[must_use]
    pub fn read_latency(&self) -> &Histogram {
        &self.read_hist
    }

    /// Simulated end-to-end write latencies (ns).
    #[must_use]
    pub fn write_latency(&self) -> &Histogram {
        &self.write_hist
    }

    /// Reads the plane detected as corrupted in transit (and retried).
    #[must_use]
    pub fn corrupted_reads(&self) -> u64 {
        self.corrupted_reads.load(Ordering::Relaxed)
    }

    /// Models a device/node crash: every subsequent operation fails
    /// with a permanent `Device` error until [`ModeledPlane::revive`].
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Brings a killed plane back (its stored pages survive).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Whether the plane is accepting operations.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn check_alive(&self) -> SwapResult<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(SwapError::new(
                SwapSite::Media,
                Error::Device(format!("{} is down", self.name)),
            ))
        }
    }

    /// Charges one request to the single-server queue and returns the
    /// end-to-end latency (queue wait + service) in simulated ns.
    fn charge(&self, state: &mut MediaState, base: Nanos, bytes: u64) -> u64 {
        let now = self.clock.now_ns();
        let start = state.busy_until.max(now);
        let finish = start + self.model.service_ns(base, bytes);
        state.busy_until = finish;
        self.clock.publish(Nanos::from_ns(finish));
        finish - now
    }

    /// Stores `data` under `page` without consuming semantics (the
    /// replication layer writes both replicas through this).
    fn store(&self, page: PageNumber, data: &[u8]) -> SwapResult<u64> {
        self.check_alive()?;
        if data.len() != PAGE_SIZE {
            return Err(SwapError::new(
                SwapSite::Media,
                Error::InvalidConfig(format!(
                    "page must be {PAGE_SIZE} bytes, got {}",
                    data.len()
                )),
            ));
        }
        let mut state = self.state.lock();
        if state.pages.contains_key(&page.index()) {
            return Err(SwapError::new(
                SwapSite::Media,
                Error::EntryExists { page: page.index() },
            ));
        }
        if self.capacity_pages != 0 && state.pages.len() as u64 >= self.capacity_pages {
            return Err(SwapError::new(SwapSite::Media, Error::SfmRegionFull));
        }
        let latency = self.charge(&mut state, self.model.write_base, data.len() as u64);
        state.pages.insert(
            page.index(),
            Block {
                data: Bytes::copy_from_slice(data),
                sum: checksum(data),
            },
        );
        self.write_hist.record(latency);
        Ok(latency)
    }

    /// Copies `page` into `out` without removing it. The in-transit
    /// [`FaultSite::BitCorruption`] hook fires here: the *fetched*
    /// bytes fail verification while the stored block stays intact, so
    /// a retry succeeds.
    fn load_into(&self, page: PageNumber, out: &mut Vec<u8>) -> SwapResult<u64> {
        self.check_alive()?;
        let mut state = self.state.lock();
        let block = state.pages.get(&page.index()).cloned().ok_or_else(|| {
            SwapError::new(SwapSite::Media, Error::EntryNotFound { page: page.index() })
        })?;
        let latency = self.charge(&mut state, self.model.read_base, block.data.len() as u64);
        drop(state);
        let mut got = checksum(&block.data);
        if let Some(f) = &self.faults {
            if f.should_fire(FaultSite::BitCorruption) {
                got ^= 1;
            }
        }
        if got != block.sum {
            self.corrupted_reads.fetch_add(1, Ordering::Relaxed);
            return Err(SwapError::new(
                SwapSite::Media,
                Error::ChecksumMismatch {
                    page: page.index(),
                    expected: block.sum,
                    got,
                },
            ));
        }
        out.clear();
        out.extend_from_slice(&block.data);
        self.read_hist.record(latency);
        Ok(latency)
    }

    /// The stored checksum of `page`, if present (scrub support).
    fn peek_sum(&self, page: PageNumber) -> Option<u64> {
        self.state.lock().pages.get(&page.index()).map(|b| b.sum)
    }

    /// Drops `page` from the medium (no latency charge: trim is free).
    fn remove(&self, page: PageNumber) -> bool {
        self.state.lock().pages.remove(&page.index()).is_some()
    }

    /// Live page count.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.state.lock().pages.len() as u64
    }

    /// Whether the plane stores no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn outcome(&self) -> SwapOutcome {
        SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: PAGE_SIZE as u32,
            cpu_cycles: Cycles::ZERO,
            ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64),
        }
    }
}

impl SwapPlane for ModeledPlane {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        self.swap_out_ctx(&OpContext::SYSTEM, page, data)
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        self.store(page, data)?;
        self.owners.lock().insert(page.index(), ctx.tenant);
        let outcome = self.outcome();
        self.state.lock().stats.record(&outcome, true);
        Ok(outcome)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        _do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        self.load_into(page, out)?;
        self.remove(page);
        self.owners.lock().remove(&page.index());
        let outcome = self.outcome();
        self.state.lock().stats.record(&outcome, false);
        Ok(outcome)
    }

    fn contains(&self, page: PageNumber) -> bool {
        self.state.lock().pages.contains_key(&page.index())
    }

    fn compact(&self) -> CompactReport {
        // Raw-page media have no slab fragmentation to compact.
        CompactReport::default()
    }

    fn stats(&self) -> BackendStats {
        self.state.lock().stats
    }

    fn pool_stats(&self) -> ZpoolStats {
        let state = self.state.lock();
        let pages = state.pages.len() as u64;
        ZpoolStats {
            stored_bytes: ByteSize::from_bytes(pages * PAGE_SIZE as u64),
            slot_overhead: ByteSize::ZERO,
            host_pages: pages,
            objects: pages,
        }
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        let mut merged: BTreeMap<u16, u64> = BTreeMap::new();
        for tenant in self.owners.lock().values() {
            *merged.entry(tenant.as_u16()).or_default() += PAGE_SIZE as u64;
        }
        merged
            .into_iter()
            .map(|(t, b)| (TenantId::new(t), b))
            .collect()
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        self.owners.lock().get(&page.index()).copied()
    }
}

/// Write-both / read-any replication across two remote planes.
///
/// Every swap-out is written to both replicas (a write that reaches
/// only one — replica down, or a [`FaultSite::ReplicaLoss`] drop — is
/// still accepted and counted as degraded). Every swap-in reads from
/// the first replica holding a checksum-valid copy, repairing the
/// other replica from the good copy before the entry is consumed.
/// With at most one replica lost at a time, no stored page is ever
/// lost — the invariant the `ci.sh --chaos` replica-kill scenario
/// proves.
#[derive(Debug)]
pub struct ReplicatedPlane {
    replicas: [ModeledPlane; 2],
    stats: Mutex<BackendStats>,
    faults: Option<Arc<FaultInjector>>,
    dropped_writes: AtomicU64,
    degraded_reads: AtomicU64,
    repairs: AtomicU64,
    /// page index -> billed tenant. One entry per logical page, so
    /// usage is independent of how many replicas currently hold a copy
    /// (dropped writes and repairs never change a tenant's bill).
    owners: Mutex<BTreeMap<u64, TenantId>>,
}

impl ReplicatedPlane {
    /// Builds a replica pair over `model` media sharing `clock`.
    /// Each replica independently holds `capacity_pages`.
    #[must_use]
    pub fn new(name: &str, model: MediaModel, capacity_pages: u64, clock: ClockMirror) -> Self {
        Self {
            replicas: [
                ModeledPlane::new(&format!("{name}.r0"), model, capacity_pages, clock.clone()),
                ModeledPlane::new(&format!("{name}.r1"), model, capacity_pages, clock),
            ],
            stats: Mutex::new(BackendStats::default()),
            faults: None,
            dropped_writes: AtomicU64::new(0),
            degraded_reads: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            owners: Mutex::new(BTreeMap::new()),
        }
    }

    /// Re-homes both replicas' latency histograms into `registry`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        for r in &mut self.replicas {
            r.attach_telemetry(registry);
        }
    }

    /// Arms fault injection: [`FaultSite::ReplicaLoss`] silently drops
    /// one replica's copy of a write; [`FaultSite::BitCorruption`]
    /// corrupts fetched blocks inside each replica.
    pub fn attach_faults(&mut self, faults: Arc<FaultInjector>) {
        for r in &mut self.replicas {
            r.attach_faults(Arc::clone(&faults));
        }
        self.faults = Some(faults);
    }

    /// Kills replica `idx` (0 or 1): its operations fail until revived.
    pub fn kill(&self, idx: usize) {
        self.replicas[idx].kill();
    }

    /// Revives replica `idx`; stored pages survive the outage.
    pub fn revive(&self, idx: usize) {
        self.replicas[idx].revive();
    }

    /// Access to one replica (inspection in tests and benches).
    #[must_use]
    pub fn replica(&self, idx: usize) -> &ModeledPlane {
        &self.replicas[idx]
    }

    /// Writes accepted with only one replica reached.
    #[must_use]
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes.load(Ordering::Relaxed)
    }

    /// Reads served with one replica unavailable or invalid.
    #[must_use]
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
    }

    /// Replica copies restored from the surviving good copy.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }

    /// Full-sweep anti-entropy pass: restores every page that one
    /// (alive) replica holds and the other lost or corrupted. Returns
    /// the number of copies restored.
    pub fn scrub(&self) -> u64 {
        let mut restored = 0;
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        for (src, dst) in [(0usize, 1usize), (1, 0)] {
            if !self.replicas[src].is_alive() || !self.replicas[dst].is_alive() {
                continue;
            }
            let pages: Vec<u64> = {
                let state = self.replicas[src].state.lock();
                state.pages.keys().copied().collect()
            };
            for idx in pages {
                let page = PageNumber::new(idx);
                let needs_copy = match (
                    self.replicas[src].peek_sum(page),
                    self.replicas[dst].peek_sum(page),
                ) {
                    (Some(s), Some(d)) => s != d,
                    (Some(_), None) => true,
                    _ => false,
                };
                if needs_copy && self.replicas[src].load_into(page, &mut buf).is_ok() {
                    self.replicas[dst].remove(page);
                    if self.replicas[dst].store(page, &buf).is_ok() {
                        restored += 1;
                    }
                }
            }
        }
        self.repairs.fetch_add(restored, Ordering::Relaxed);
        restored
    }

    fn outcome(&self) -> SwapOutcome {
        SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: PAGE_SIZE as u32,
            cpu_cycles: Cycles::ZERO,
            ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64),
        }
    }
}

impl SwapPlane for ReplicatedPlane {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        self.swap_out_ctx(&OpContext::SYSTEM, page, data)
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        if self.contains(page) {
            return Err(SwapError::new(
                SwapSite::Replica,
                Error::EntryExists { page: page.index() },
            ));
        }
        let mut reached = 0;
        let mut last_err = None;
        for (idx, replica) in self.replicas.iter().enumerate() {
            // The fault hook models a fabric drop on the way to this
            // replica: the write vanishes without an error.
            let dropped = idx == 1
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.should_fire(FaultSite::ReplicaLoss));
            if dropped {
                self.dropped_writes.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match replica.store(page, data) {
                Ok(_) => reached += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if reached == 0 {
            let e = last_err.unwrap_or_else(|| {
                SwapError::new(
                    SwapSite::Replica,
                    Error::Device("no replica reachable".into()),
                )
            });
            return Err(SwapError::new(SwapSite::Replica, e.cause().clone())
                .with_retryable(e.is_retryable()));
        }
        self.owners.lock().insert(page.index(), ctx.tenant);
        let outcome = self.outcome();
        self.stats.lock().record(&outcome, true);
        Ok(outcome)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        _do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        let mut last_err: Option<SwapError> = None;
        let mut served: Option<usize> = None;
        for (idx, replica) in self.replicas.iter().enumerate() {
            match replica.load_into(page, out) {
                Ok(_) => {
                    served = Some(idx);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(good) = served else {
            let e = last_err.unwrap_or_else(|| {
                SwapError::new(
                    SwapSite::Replica,
                    Error::EntryNotFound { page: page.index() },
                )
            });
            return Err(SwapError::new(SwapSite::Replica, e.cause().clone())
                .with_retryable(e.is_retryable()));
        };
        if good != 0 {
            self.degraded_reads.fetch_add(1, Ordering::Relaxed);
        }
        // Read repair before consuming: if the other replica lost or
        // corrupted its copy while alive, restore it so accounting
        // stays symmetric, then consume both.
        let other = 1 - good;
        if self.replicas[other].is_alive() {
            let stale = match self.replicas[other].peek_sum(page) {
                Some(sum) => sum != checksum(out),
                None => true,
            };
            if stale {
                self.replicas[other].remove(page);
                if self.replicas[other].store(page, out).is_ok() {
                    self.repairs.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for replica in &self.replicas {
            replica.remove(page);
        }
        self.owners.lock().remove(&page.index());
        let outcome = self.outcome();
        self.stats.lock().record(&outcome, false);
        Ok(outcome)
    }

    fn contains(&self, page: PageNumber) -> bool {
        self.replicas.iter().any(|r| r.contains(page))
    }

    fn compact(&self) -> CompactReport {
        CompactReport::default()
    }

    fn stats(&self) -> BackendStats {
        *self.stats.lock()
    }

    fn pool_stats(&self) -> ZpoolStats {
        // Report the fuller replica: with both healthy they agree, and
        // during an outage the survivor is the authoritative view.
        self.replicas
            .iter()
            .map(|r| r.pool_stats())
            .max_by_key(|s| s.objects)
            .unwrap_or_default()
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        let mut merged: BTreeMap<u16, u64> = BTreeMap::new();
        for tenant in self.owners.lock().values() {
            *merged.entry(tenant.as_u16()).or_default() += PAGE_SIZE as u64;
        }
        merged
            .into_iter()
            .map(|(t, b)| (TenantId::new(t), b))
            .collect()
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        self.owners.lock().get(&page.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfm_faults::{FaultPlan, SiteSpec};

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn modeled_round_trip_charges_latency() {
        let plane = ModeledPlane::new("ssd", MediaModel::ssd(), 0, ClockMirror::new());
        let data = page_of(7);
        plane.swap_out(PageNumber::new(1), &data).unwrap();
        assert!(plane.contains(PageNumber::new(1)));
        let (back, _) = plane.swap_in(PageNumber::new(1), false).unwrap();
        assert_eq!(back, data);
        assert!(!plane.contains(PageNumber::new(1)));
        assert_eq!(plane.write_latency().count(), 1);
        assert_eq!(plane.read_latency().count(), 1);
        // 50 µs base + 4096 B / 2 B-per-ns = 52_048 ns, queue empty.
        assert_eq!(plane.write_latency().quantile(0.5), 52_048);
    }

    #[test]
    fn queueing_delays_back_to_back_ops() {
        let clock = ClockMirror::new();
        let plane = ModeledPlane::new("ssd", MediaModel::ssd(), 0, clock.clone());
        let t0 = clock.now_ns();
        plane.swap_out(PageNumber::new(1), &page_of(1)).unwrap();
        let t1 = clock.now_ns();
        plane.swap_out(PageNumber::new(2), &page_of(2)).unwrap();
        let t2 = clock.now_ns();
        assert!(t1 > t0 && t2 > t1, "completion times advance the clock");
        assert_eq!(t2 - t1, t1 - t0, "identical ops take identical service");
    }

    #[test]
    fn capacity_rejects_with_region_full() {
        let plane = ModeledPlane::new("ssd", MediaModel::ssd(), 1, ClockMirror::new());
        plane.swap_out(PageNumber::new(1), &page_of(1)).unwrap();
        let err = plane.swap_out(PageNumber::new(2), &page_of(2)).unwrap_err();
        assert!(err.is_capacity());
        assert!(err.is_retryable_on_other_tier());
        assert_eq!(err.site(), SwapSite::Media);
    }

    #[test]
    fn killed_plane_fails_permanent_until_revived() {
        let plane = ModeledPlane::new("node", MediaModel::remote(), 0, ClockMirror::new());
        plane.swap_out(PageNumber::new(1), &page_of(1)).unwrap();
        plane.kill();
        let err = plane.swap_in(PageNumber::new(1), false).unwrap_err();
        assert!(!err.is_retryable());
        assert!(err.is_retryable_on_other_tier(), "another tier may serve");
        plane.revive();
        let (back, _) = plane.swap_in(PageNumber::new(1), false).unwrap();
        assert_eq!(back, page_of(1));
    }

    #[test]
    fn bit_corruption_is_retryable_and_nonconsuming() {
        let mut plane = ModeledPlane::new("node", MediaModel::remote(), 0, ClockMirror::new());
        let plan = FaultPlan::new(9).with_site(
            FaultSite::BitCorruption,
            SiteSpec::with_probability(1.0).max_fires(1),
        );
        plane.attach_faults(Arc::new(FaultInjector::new(&plan)));
        plane.swap_out(PageNumber::new(3), &page_of(3)).unwrap();
        let err = plane.swap_in(PageNumber::new(3), false).unwrap_err();
        assert!(err.is_corruption() && err.is_retryable());
        assert_eq!(plane.corrupted_reads(), 1);
        // The stored block is intact; the retry succeeds.
        let (back, _) = plane.swap_in(PageNumber::new(3), false).unwrap();
        assert_eq!(back, page_of(3));
    }

    #[test]
    fn replica_write_both_read_any() {
        let rep = ReplicatedPlane::new("rem", MediaModel::remote(), 0, ClockMirror::new());
        rep.swap_out(PageNumber::new(1), &page_of(9)).unwrap();
        assert_eq!(rep.replica(0).len(), 1);
        assert_eq!(rep.replica(1).len(), 1);
        let (back, _) = rep.swap_in(PageNumber::new(1), false).unwrap();
        assert_eq!(back, page_of(9));
        assert_eq!(rep.replica(0).len(), 0);
        assert_eq!(rep.replica(1).len(), 0);
    }

    #[test]
    fn replica_kill_loses_no_pages() {
        let rep = ReplicatedPlane::new("rem", MediaModel::remote(), 0, ClockMirror::new());
        for i in 0..32u64 {
            rep.swap_out(PageNumber::new(i), &page_of(i as u8)).unwrap();
        }
        rep.kill(0);
        for i in 0..32u64 {
            let (back, _) = rep.swap_in(PageNumber::new(i), false).unwrap();
            assert_eq!(back, page_of(i as u8), "page {i} after replica-0 kill");
        }
        assert_eq!(rep.degraded_reads(), 32);
    }

    #[test]
    fn dropped_write_is_repaired_on_read() {
        let mut rep = ReplicatedPlane::new("rem", MediaModel::remote(), 0, ClockMirror::new());
        let plan = FaultPlan::new(5).with_site(
            FaultSite::ReplicaLoss,
            SiteSpec::with_probability(1.0).max_fires(1),
        );
        rep.attach_faults(Arc::new(FaultInjector::new(&plan)));
        rep.swap_out(PageNumber::new(1), &page_of(1)).unwrap();
        assert_eq!(rep.dropped_writes(), 1);
        assert_eq!(rep.replica(1).len(), 0, "replica 1 lost the write");
        // A second page (fault budget spent) lands on both.
        rep.swap_out(PageNumber::new(2), &page_of(2)).unwrap();
        // Reading page 1 repairs replica 1 before consuming.
        let (back, _) = rep.swap_in(PageNumber::new(1), false).unwrap();
        assert_eq!(back, page_of(1));
        assert_eq!(rep.repairs(), 1);
    }

    #[test]
    fn scrub_restores_missing_copies() {
        let mut rep = ReplicatedPlane::new("rem", MediaModel::remote(), 0, ClockMirror::new());
        let plan = FaultPlan::new(5).with_site(
            FaultSite::ReplicaLoss,
            SiteSpec::with_probability(1.0).max_fires(3),
        );
        rep.attach_faults(Arc::new(FaultInjector::new(&plan)));
        for i in 0..3u64 {
            rep.swap_out(PageNumber::new(i), &page_of(i as u8)).unwrap();
        }
        assert_eq!(rep.dropped_writes(), 3);
        assert_eq!(rep.scrub(), 3);
        assert_eq!(rep.replica(1).len(), 3);
        assert_eq!(rep.scrub(), 0, "second pass finds nothing to do");
    }
}
