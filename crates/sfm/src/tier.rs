//! The [`TieredPlane`]: multiple swap planes composed into a demotion
//! hierarchy.
//!
//! Tier 0 is the hottest far-memory tier (conventionally the
//! compressed local zpool); higher indices are progressively colder
//! media ([`crate::modeled::ModeledPlane`] SSD, replicated remote
//! nodes). The composition keeps tiers first-class:
//!
//! - **Placement verdicts** — a swap-out lands on the hottest tier
//!   that accepts it; a tier-local rejection
//!   ([`SwapError::is_retryable_on_other_tier`]) spills the page to
//!   the next tier instead of failing the caller.
//! - **Capacity budgets** — each [`TierSpec`] carries a resident-page
//!   budget (scaled by the [`TierBias`] knob); after every store the
//!   plane demotes the *oldest* resident pages down-tier until all
//!   budgets hold, recording a [`LifecycleStage::Demote`] event per
//!   move.
//! - **Promotion on fault** — a swap-in resolves the owning tier from
//!   the directory, consumes the page there, and records
//!   [`LifecycleStage::PromoteTier`] when it came from a cold tier.
//! - **Structured errors** — every error is annotated with the
//!   originating [`PlaneId`] via [`SwapError::with_plane`].
//!
//! Configured with a single tier, the composition is observably
//! identical to the inner plane — same results, same telemetry, no
//! extra lifecycle events — which `tests/tier_diff.rs` pins down.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use xfm_telemetry::lifecycle::NO_SHARD;
use xfm_telemetry::{Cause, LifecycleStage, Registry};
use xfm_types::{
    ByteSize, Cycles, Error, OpContext, PageNumber, PlacementClass, PlaneId, SwapResult, TenantId,
    PAGE_SIZE,
};

use crate::autotune::TierBias;
use crate::backend::{BackendStats, ExecutedOn, SwapOutcome, SwapPlane};
use crate::zpool::{CompactReport, ZpoolStats};

/// One tier in a [`TieredPlane`] composition.
pub struct TierSpec {
    /// The plane storing this tier's pages.
    pub plane: Arc<dyn SwapPlane>,
    /// Stable identity, threaded through errors and telemetry.
    pub id: PlaneId,
    /// The media class (drives demotion direction and reporting).
    pub class: PlacementClass,
    /// Resident-page budget enforced by background demotion
    /// (`0` = unbounded; the plane's own capacity still applies).
    pub capacity_pages: u64,
}

impl TierSpec {
    /// Builds a tier over `plane`.
    #[must_use]
    pub fn new(plane: Arc<dyn SwapPlane>, id: PlaneId, class: PlacementClass) -> Self {
        Self {
            plane,
            id,
            class,
            capacity_pages: 0,
        }
    }

    /// Sets the resident-page budget.
    #[must_use]
    pub fn with_capacity_pages(mut self, pages: u64) -> Self {
        self.capacity_pages = pages;
        self
    }
}

/// Where a page currently resides inside a tiered composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The owning tier's plane id.
    pub plane: PlaneId,
    /// The owning tier's media class.
    pub class: PlacementClass,
}

/// Per-tier accounting snapshot.
#[derive(Debug, Clone)]
pub struct TierStats {
    /// The tier's plane id.
    pub id: PlaneId,
    /// The tier's media class.
    pub class: PlacementClass,
    /// Pages the directory currently attributes to this tier.
    pub resident_pages: u64,
    /// Configured resident-page budget (`0` = unbounded).
    pub capacity_pages: u64,
    /// Pages demoted out of this tier to a colder one.
    pub demoted_out: u64,
    /// Pages demoted into this tier from a hotter one.
    pub demoted_in: u64,
    /// Pages promoted out of this tier by a fault (tiers > 0).
    pub promoted: u64,
    /// The inner plane's aggregate statistics.
    pub backend: BackendStats,
    /// The inner plane's pool occupancy.
    pub pool: ZpoolStats,
}

#[derive(Debug, Clone, Copy)]
struct PageLoc {
    tier: usize,
    seq: u64,
    /// The account billed for the page — demotions and promotions
    /// re-issue inner-plane ops under this identity, so a page keeps
    /// its owner no matter how many tiers it crosses.
    tenant: TenantId,
}

#[derive(Debug, Default, Clone, Copy)]
struct TierCounts {
    demoted_out: u64,
    demoted_in: u64,
    promoted: u64,
}

#[derive(Debug, Default)]
struct Directory {
    /// page index -> owning tier + LRU sequence.
    owner: BTreeMap<u64, PageLoc>,
    /// Per-tier LRU: sequence -> page index (oldest first).
    lru: Vec<BTreeMap<u64, u64>>,
    /// Pages stranded in DRAM when no tier would hold them (never
    /// lost: the fault path serves them by memcpy). Each parked page
    /// keeps its owning tenant so a later re-store stays attributed.
    parked: BTreeMap<u64, (Vec<u8>, TenantId)>,
    counts: Vec<TierCounts>,
    next_seq: u64,
}

impl Directory {
    fn insert(&mut self, page: u64, tier: usize, tenant: TenantId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.owner.insert(page, PageLoc { tier, seq, tenant });
        self.lru[tier].insert(seq, page);
    }

    fn remove(&mut self, page: u64) -> Option<PageLoc> {
        let loc = self.owner.remove(&page)?;
        self.lru[loc.tier].remove(&loc.seq);
        Some(loc)
    }
}

/// A demotion hierarchy of [`SwapPlane`]s behind one plane surface.
///
/// See the [module docs](self) for semantics. All methods take
/// `&self`; the directory sits behind one mutex that is never held
/// across an inner-plane call.
pub struct TieredPlane {
    tiers: Vec<TierSpec>,
    dir: Mutex<Directory>,
    registry: Mutex<Option<Registry>>,
    bias: Mutex<TierBias>,
}

impl TieredPlane {
    /// Composes `tiers` (hottest first) into one plane.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `tiers` is empty or two tiers
    /// share a [`PlaneId`].
    pub fn new(tiers: Vec<TierSpec>) -> Result<Self, Error> {
        if tiers.is_empty() {
            return Err(Error::InvalidConfig("TieredPlane needs >= 1 tier".into()));
        }
        for (i, a) in tiers.iter().enumerate() {
            if tiers.iter().skip(i + 1).any(|b| b.id == a.id) {
                return Err(Error::InvalidConfig(format!("duplicate tier id {}", a.id)));
            }
        }
        let dir = Directory {
            lru: tiers.iter().map(|_| BTreeMap::new()).collect(),
            counts: vec![TierCounts::default(); tiers.len()],
            ..Directory::default()
        };
        Ok(Self {
            tiers,
            dir: Mutex::new(dir),
            registry: Mutex::new(None),
            bias: Mutex::new(TierBias::Balanced),
        })
    }

    /// Routes lifecycle events (Demote / PromoteTier) into `registry`.
    pub fn attach_telemetry(&self, registry: &Registry) {
        *self.registry.lock() = Some(registry.clone());
    }

    /// Sets the demotion-aggressiveness knob (applies from the next
    /// store onward).
    pub fn set_tier_bias(&self, bias: TierBias) {
        *self.bias.lock() = bias;
    }

    /// The current demotion-aggressiveness knob.
    #[must_use]
    pub fn tier_bias(&self) -> TierBias {
        *self.bias.lock()
    }

    /// The number of composed tiers.
    #[must_use]
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Where `page` currently resides, if the composition holds it.
    #[must_use]
    pub fn placement_of(&self, page: PageNumber) -> Option<Placement> {
        let dir = self.dir.lock();
        if dir.parked.contains_key(&page.index()) {
            // Parked pages are effectively hottest: resident in DRAM.
            let spec = &self.tiers[0];
            return Some(Placement {
                plane: spec.id,
                class: spec.class,
            });
        }
        dir.owner.get(&page.index()).map(|loc| {
            let spec = &self.tiers[loc.tier];
            Placement {
                plane: spec.id,
                class: spec.class,
            }
        })
    }

    /// Per-tier accounting snapshots, hottest first.
    #[must_use]
    pub fn tier_stats(&self) -> Vec<TierStats> {
        let dir = self.dir.lock();
        self.tiers
            .iter()
            .enumerate()
            .map(|(k, spec)| TierStats {
                id: spec.id,
                class: spec.class,
                resident_pages: dir.lru[k].len() as u64,
                capacity_pages: spec.capacity_pages,
                demoted_out: dir.counts[k].demoted_out,
                demoted_in: dir.counts[k].demoted_in,
                promoted: dir.counts[k].promoted,
                backend: spec.plane.stats(),
                pool: spec.plane.pool_stats(),
            })
            .collect()
    }

    /// Packs a tier's identity for the lifecycle `aux` word.
    fn tier_aux(spec: &TierSpec) -> u64 {
        (u64::from(spec.id.as_u32()) << 8) | u64::from(spec.class.code())
    }

    fn record(&self, stage: LifecycleStage, cause: Cause, tenant: TenantId, page: u64, aux: u64) {
        if let Some(registry) = self.registry.lock().as_ref() {
            registry
                .lifecycle()
                .record_for(stage, cause, tenant, page, NO_SHARD, aux, 0);
        }
    }

    /// A memcpy-served outcome (parked pages never touch a plane).
    fn memcpy_outcome() -> SwapOutcome {
        SwapOutcome {
            executed_on: ExecutedOn::Cpu,
            compressed_len: PAGE_SIZE as u32,
            cpu_cycles: Cycles::ZERO,
            ddr_bytes: ByteSize::from_bytes(PAGE_SIZE as u64),
        }
    }

    /// Stores `data` on the hottest tier that accepts it, carrying the
    /// caller's context down to the accepting plane.
    fn place(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<(usize, SwapOutcome)> {
        let mut last = None;
        for (k, tier) in self.tiers.iter().enumerate() {
            match tier.plane.swap_out_ctx(ctx, page, data) {
                Ok(outcome) => return Ok((k, outcome)),
                Err(e) if e.is_retryable_on_other_tier() && k + 1 < self.tiers.len() => {
                    last = Some(e.with_plane(tier.id));
                }
                Err(e) => return Err(e.with_plane(tier.id)),
            }
        }
        Err(last.expect("place() loop ran at least once"))
    }

    /// Demotes oldest pages down-tier until every budget holds.
    fn rebalance(&self) {
        let scale = self.bias.lock().scale();
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        loop {
            let victim = {
                let mut dir = self.dir.lock();
                let mut found = None;
                for (k, spec) in self.tiers.iter().enumerate() {
                    if spec.capacity_pages == 0 {
                        continue;
                    }
                    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                    let effective = ((spec.capacity_pages as f64) * scale).max(1.0) as u64;
                    if dir.lru[k].len() as u64 > effective {
                        let (&seq, &pg) = dir.lru[k].iter().next().expect("tier is over budget");
                        dir.lru[k].remove(&seq);
                        let loc = dir.owner.remove(&pg).expect("owner tracks every LRU page");
                        found = Some((k, pg, loc.tenant));
                        break;
                    }
                }
                found
            };
            let Some((k, pg, tenant)) = victim else { break };
            let page = PageNumber::new(pg);
            let ctx = OpContext::for_tenant(tenant);
            if self.tiers[k]
                .plane
                .swap_in_into_ctx(&ctx, page, true, &mut buf)
                .is_err()
            {
                // Could not read the victim out (transient fault);
                // re-list it as freshest and stop this pass.
                self.dir.lock().insert(pg, k, tenant);
                break;
            }
            let mut placed = None;
            for (j, tier) in self.tiers.iter().enumerate().skip(k + 1) {
                if tier.plane.swap_out_ctx(&ctx, page, &buf).is_ok() {
                    placed = Some(j);
                    break;
                }
            }
            match placed {
                Some(j) => {
                    {
                        let mut dir = self.dir.lock();
                        dir.insert(pg, j, tenant);
                        dir.counts[k].demoted_out += 1;
                        dir.counts[j].demoted_in += 1;
                    }
                    self.record(
                        LifecycleStage::Demote,
                        Cause::Ok,
                        tenant,
                        pg,
                        Self::tier_aux(&self.tiers[j]),
                    );
                }
                None => {
                    // No colder tier accepts. Put it back where it was
                    // (its slot just freed); park in DRAM as the
                    // no-page-lost backstop if even that fails.
                    if self.tiers[k].plane.swap_out_ctx(&ctx, page, &buf).is_ok() {
                        self.dir.lock().insert(pg, k, tenant);
                    } else {
                        self.dir.lock().parked.insert(pg, (buf.clone(), tenant));
                    }
                    break;
                }
            }
        }
    }
}

impl TieredPlane {
    /// The shared swap-out body: `ctx.tenant` is recorded in the
    /// directory and travels with the page through every later
    /// demotion or promotion.
    fn swap_out_with(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        // Duplicate stores route to the owning tier so it reports
        // `EntryExists` itself (identical telemetry to a bare plane).
        let owner_tier = {
            let dir = self.dir.lock();
            if dir.parked.contains_key(&page.index()) {
                return Err(
                    xfm_types::SwapError::from(Error::EntryExists { page: page.index() })
                        .with_plane(self.tiers[0].id),
                );
            }
            dir.owner.get(&page.index()).map(|loc| loc.tier)
        };
        if let Some(j) = owner_tier {
            return self.tiers[j]
                .plane
                .swap_out_ctx(ctx, page, data)
                .map_err(|e| e.with_plane(self.tiers[j].id));
        }
        let (k, outcome) = self.place(ctx, page, data)?;
        self.dir.lock().insert(page.index(), k, ctx.tenant);
        if k > 0 {
            // A spill placement is a demotion relative to the hot tier.
            self.record(
                LifecycleStage::Demote,
                Cause::RegionFull,
                ctx.tenant,
                page.index(),
                Self::tier_aux(&self.tiers[k]),
            );
        }
        self.rebalance();
        Ok(outcome)
    }
}

impl SwapPlane for TieredPlane {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        self.swap_out_with(&OpContext::SYSTEM, page, data)
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        self.swap_out_with(ctx, page, data)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        {
            let mut dir = self.dir.lock();
            if let Some((data, _)) = dir.parked.remove(&page.index()) {
                out.clear();
                out.extend_from_slice(&data);
                return Ok(Self::memcpy_outcome());
            }
        }
        let (k, tenant) = {
            let dir = self.dir.lock();
            dir.owner
                .get(&page.index())
                .map_or((0, TenantId::SYSTEM), |loc| (loc.tier, loc.tenant))
        };
        match self.tiers[k].plane.swap_in_into(page, do_offload, out) {
            Ok(outcome) => {
                self.dir.lock().remove(page.index());
                if k > 0 {
                    self.dir.lock().counts[k].promoted += 1;
                    self.record(
                        LifecycleStage::PromoteTier,
                        Cause::Ok,
                        tenant,
                        page.index(),
                        Self::tier_aux(&self.tiers[k]),
                    );
                }
                Ok(outcome)
            }
            Err(e) => {
                if matches!(e.cause(), Error::EntryNotFound { .. }) {
                    // Stale directory entry: drop it.
                    self.dir.lock().remove(page.index());
                }
                Err(e.with_plane(self.tiers[k].id))
            }
        }
    }

    fn swap_out_batch(
        &self,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        self.swap_out_batch_ctx(&OpContext::SYSTEM, batch, threads)
    }

    fn swap_out_batch_ctx(
        &self,
        ctx: &OpContext,
        batch: &[(PageNumber, Bytes)],
        threads: usize,
    ) -> SwapResult<Vec<SwapResult<SwapOutcome>>> {
        if self.tiers.len() == 1 {
            // Single tier: delegate wholesale so the inner plane's
            // batched pipeline (and its telemetry) runs unchanged.
            let results = self.tiers[0]
                .plane
                .swap_out_batch_ctx(ctx, batch, threads)
                .map_err(|e| e.with_plane(self.tiers[0].id))?;
            let mut dir = self.dir.lock();
            for ((page, _), result) in batch.iter().zip(&results) {
                if result.is_ok() {
                    dir.insert(page.index(), 0, ctx.tenant);
                }
            }
            return Ok(results);
        }
        // Multi-tier: per-page placement (each page may land on a
        // different tier, then trigger cascading demotion).
        Ok(batch
            .iter()
            .map(|(page, data)| self.swap_out_with(ctx, *page, data))
            .collect())
    }

    fn swap_in_batch_into(
        &self,
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
    ) -> Vec<SwapResult<SwapOutcome>> {
        // Group the batch by owning tier, preserving submission order
        // inside each group, and issue one batched call per tier.
        let mut groups: Vec<Vec<usize>> = self.tiers.iter().map(|_| Vec::new()).collect();
        let mut parked_idx: Vec<usize> = Vec::new();
        {
            let dir = self.dir.lock();
            for (i, page) in pages.iter().enumerate() {
                if dir.parked.contains_key(&page.index()) {
                    parked_idx.push(i);
                } else {
                    let k = dir.owner.get(&page.index()).map_or(0, |loc| loc.tier);
                    groups[k].push(i);
                }
            }
        }
        let mut results: Vec<Option<SwapResult<SwapOutcome>>> =
            pages.iter().map(|_| None).collect();
        for i in parked_idx {
            let mut dir = self.dir.lock();
            let (data, _) = dir.parked.remove(&pages[i].index()).expect("indexed above");
            outs[i].clear();
            outs[i].extend_from_slice(&data);
            results[i] = Some(Ok(Self::memcpy_outcome()));
        }
        for (k, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let tier_pages: Vec<PageNumber> = group.iter().map(|&i| pages[i]).collect();
            let mut tier_outs: Vec<Vec<u8>> = group
                .iter()
                .map(|&i| std::mem::take(&mut outs[i]))
                .collect();
            let tier_results = self.tiers[k]
                .plane
                .swap_in_batch_into(&tier_pages, &mut tier_outs);
            for ((&i, out), result) in group.iter().zip(tier_outs).zip(tier_results) {
                outs[i] = out;
                match result {
                    Ok(outcome) => {
                        let removed = {
                            let mut dir = self.dir.lock();
                            let removed = dir.remove(pages[i].index());
                            if k > 0 {
                                dir.counts[k].promoted += 1;
                            }
                            removed
                        };
                        if k > 0 {
                            self.record(
                                LifecycleStage::PromoteTier,
                                Cause::Ok,
                                removed.map_or(TenantId::SYSTEM, |loc| loc.tenant),
                                pages[i].index(),
                                Self::tier_aux(&self.tiers[k]),
                            );
                        }
                        results[i] = Some(Ok(outcome));
                    }
                    Err(e) => {
                        if matches!(e.cause(), Error::EntryNotFound { .. }) {
                            self.dir.lock().remove(pages[i].index());
                        }
                        results[i] = Some(Err(e.with_plane(self.tiers[k].id)));
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every index grouped exactly once"))
            .collect()
    }

    fn contains(&self, page: PageNumber) -> bool {
        if self.dir.lock().parked.contains_key(&page.index()) {
            return true;
        }
        self.tiers.iter().any(|t| t.plane.contains(page))
    }

    fn compact(&self) -> CompactReport {
        let mut total = CompactReport::default();
        for tier in &self.tiers {
            let report = tier.plane.compact();
            total.moved_objects += report.moved_objects;
            total.moved_bytes += report.moved_bytes;
            total.freed_pages += report.freed_pages;
        }
        total
    }

    fn stats(&self) -> BackendStats {
        let mut total = BackendStats::default();
        for tier in &self.tiers {
            let s = tier.plane.stats();
            total.swap_outs += s.swap_outs;
            total.swap_ins += s.swap_ins;
            total.nma_executions += s.nma_executions;
            total.cpu_executions += s.cpu_executions;
            total.cpu_cycles += s.cpu_cycles;
            total.ddr_bytes += s.ddr_bytes;
            total.rejected_full += s.rejected_full;
            total.stored_raw += s.stored_raw;
        }
        total
    }

    fn pool_stats(&self) -> ZpoolStats {
        let mut total = ZpoolStats::default();
        for tier in &self.tiers {
            let s = tier.plane.pool_stats();
            total.stored_bytes += s.stored_bytes;
            total.slot_overhead += s.slot_overhead;
            total.host_pages += s.host_pages;
            total.objects += s.objects;
        }
        total
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        let mut merged: BTreeMap<u16, u64> = BTreeMap::new();
        for tier in &self.tiers {
            for (tenant, bytes) in tier.plane.tenant_usage() {
                *merged.entry(tenant.as_u16()).or_default() += bytes;
            }
        }
        merged
            .into_iter()
            .map(|(t, b)| (TenantId::new(t), b))
            .collect()
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        let dir = self.dir.lock();
        if let Some((_, tenant)) = dir.parked.get(&page.index()) {
            return Some(*tenant);
        }
        dir.owner.get(&page.index()).map(|loc| loc.tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modeled::{MediaModel, ModeledPlane};
    use xfm_event::ClockMirror;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    /// local (budget 2) -> ssd (budget 4) -> remote (unbounded).
    fn three_tiers() -> TieredPlane {
        let clock = ClockMirror::new();
        let local = ModeledPlane::new("local", MediaModel::remote(), 0, clock.clone());
        let ssd = ModeledPlane::new("ssd", MediaModel::ssd(), 0, clock.clone());
        let remote = ModeledPlane::new("remote", MediaModel::remote(), 0, clock);
        TieredPlane::new(vec![
            TierSpec::new(
                Arc::new(local),
                PlaneId::new(0),
                PlacementClass::CompressedLocal,
            )
            .with_capacity_pages(2),
            TierSpec::new(Arc::new(ssd), PlaneId::new(1), PlacementClass::Ssd)
                .with_capacity_pages(4),
            TierSpec::new(Arc::new(remote), PlaneId::new(2), PlacementClass::Remote),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_duplicate_ids() {
        assert!(TieredPlane::new(vec![]).is_err());
        let clock = ClockMirror::new();
        let a = ModeledPlane::new("a", MediaModel::ssd(), 0, clock.clone());
        let b = ModeledPlane::new("b", MediaModel::ssd(), 0, clock);
        assert!(TieredPlane::new(vec![
            TierSpec::new(Arc::new(a), PlaneId::new(0), PlacementClass::Ssd),
            TierSpec::new(Arc::new(b), PlaneId::new(0), PlacementClass::Remote),
        ])
        .is_err());
    }

    #[test]
    fn budget_overflow_demotes_oldest() {
        let plane = three_tiers();
        for i in 0..3u64 {
            plane
                .swap_out(PageNumber::new(i), &page_of(i as u8))
                .unwrap();
        }
        // Budget 2 on tier 0: page 0 (oldest) demoted to tier 1.
        assert_eq!(
            plane.placement_of(PageNumber::new(0)).unwrap().class,
            PlacementClass::Ssd
        );
        assert_eq!(
            plane.placement_of(PageNumber::new(2)).unwrap().class,
            PlacementClass::CompressedLocal
        );
        let stats = plane.tier_stats();
        assert_eq!(stats[0].demoted_out, 1);
        assert_eq!(stats[1].demoted_in, 1);
        // Contents survive the demotion.
        let (back, _) = plane.swap_in(PageNumber::new(0), false).unwrap();
        assert_eq!(back, page_of(0));
    }

    #[test]
    fn deep_fill_cascades_to_remote() {
        let plane = three_tiers();
        for i in 0..12u64 {
            plane
                .swap_out(PageNumber::new(i), &page_of(i as u8))
                .unwrap();
        }
        let stats = plane.tier_stats();
        assert_eq!(stats[0].resident_pages, 2);
        assert_eq!(stats[1].resident_pages, 4);
        assert_eq!(stats[2].resident_pages, 6);
        // Every page still round-trips byte-exact from wherever it sits.
        for i in 0..12u64 {
            let (back, _) = plane.swap_in(PageNumber::new(i), false).unwrap();
            assert_eq!(back, page_of(i as u8), "page {i}");
        }
    }

    #[test]
    fn promotion_counts_cold_tier_faults() {
        let plane = three_tiers();
        for i in 0..6u64 {
            plane
                .swap_out(PageNumber::new(i), &page_of(i as u8))
                .unwrap();
        }
        // Pages 0..4 were demoted off tier 0; faulting one counts as a
        // tier promotion.
        let victim = plane
            .placement_of(PageNumber::new(0))
            .expect("page 0 resident");
        assert!(victim.class > PlacementClass::CompressedLocal);
        plane.swap_in(PageNumber::new(0), false).unwrap();
        let promoted: u64 = plane.tier_stats().iter().map(|t| t.promoted).sum();
        assert_eq!(promoted, 1);
    }

    #[test]
    fn capacity_spill_places_on_next_tier() {
        let clock = ClockMirror::new();
        // Tier 0's *plane* holds only 1 page (hard capacity, not budget).
        let tiny = ModeledPlane::new("tiny", MediaModel::remote(), 1, clock.clone());
        let big = ModeledPlane::new("big", MediaModel::ssd(), 0, clock);
        let plane = TieredPlane::new(vec![
            TierSpec::new(
                Arc::new(tiny),
                PlaneId::new(0),
                PlacementClass::CompressedLocal,
            ),
            TierSpec::new(Arc::new(big), PlaneId::new(1), PlacementClass::Ssd),
        ])
        .unwrap();
        plane.swap_out(PageNumber::new(1), &page_of(1)).unwrap();
        plane.swap_out(PageNumber::new(2), &page_of(2)).unwrap();
        assert_eq!(
            plane.placement_of(PageNumber::new(2)).unwrap().class,
            PlacementClass::Ssd,
            "second store spilled past the full tier 0"
        );
    }

    #[test]
    fn errors_carry_plane_ids() {
        let plane = three_tiers();
        let err = plane.swap_in(PageNumber::new(99), false).unwrap_err();
        assert_eq!(err.plane(), Some(PlaneId::new(0)));
        plane.swap_out(PageNumber::new(7), &page_of(7)).unwrap();
        let err = plane.swap_out(PageNumber::new(7), &page_of(7)).unwrap_err();
        assert!(matches!(err.cause(), Error::EntryExists { .. }));
        assert!(err.plane().is_some());
    }

    #[test]
    fn batched_swap_in_spans_tiers() {
        let plane = three_tiers();
        for i in 0..8u64 {
            plane
                .swap_out(PageNumber::new(i), &page_of(i as u8))
                .unwrap();
        }
        let pages: Vec<PageNumber> = (0..8).map(PageNumber::new).collect();
        let mut outs: Vec<Vec<u8>> = (0..8).map(|_| Vec::new()).collect();
        let results = plane.swap_in_batch_into(&pages, &mut outs);
        for (i, result) in results.iter().enumerate() {
            assert!(result.is_ok(), "page {i}: {result:?}");
            assert_eq!(outs[i], page_of(i as u8), "page {i}");
        }
        assert!(!plane.contains(PageNumber::new(0)));
    }

    #[test]
    fn tier_bias_scales_budgets() {
        let plane = three_tiers();
        plane.set_tier_bias(TierBias::DemoteEager);
        assert_eq!(plane.tier_bias(), TierBias::DemoteEager);
        for i in 0..3u64 {
            plane
                .swap_out(PageNumber::new(i), &page_of(i as u8))
                .unwrap();
        }
        // Eager bias scales tier 0's budget of 2 down to 1.
        assert_eq!(plane.tier_stats()[0].resident_pages, 1);
    }
}
