//! The speculative prefetch data plane.
//!
//! The paper's conclusion points at predicting application access
//! patterns as the next lever on far-memory cost; this module is that
//! lever's data plane. A [`PrefetchEngine`] wraps the sharded swap
//! plane and feeds a [`Predictor`] with the demand-fault stream. On
//! every [`PrefetchEngine::pump`] it turns fresh predictions into
//! *batched speculative swap-ins* through
//! [`ShardedSfm::swap_in_batch_into`] (per-shard claim batching, shared
//! decode tables) and lands the pages in a bounded hot-side **staging
//! cache**. A later demand fault for a staged page is served by memcpy —
//! no shard lock, no checksum, no codec work — which is where the p99
//! fault-latency reduction comes from.
//!
//! Invariants the staging cache maintains:
//!
//! - **Bounded**: at most `staging_capacity` pages are staged; beyond
//!   that predictions are throttled (back-pressure), never evicted —
//!   speculation can never displace a demand page, and a staged page is
//!   never silently dropped (it is the page's only copy: the swap-in
//!   consumed the pool entry).
//! - **Write-back, not drop**: pages staged longer than
//!   `stale_after_pumps` pump rounds are compressed back into the pool
//!   (a mispredicted page returns to far memory; its contents survive).
//! - **Precision-gated**: when the rolling `hits / issued` precision
//!   falls below `min_precision`, issuing pauses except for a periodic
//!   probe pump, so a predictor gone cold cannot burn decompress
//!   bandwidth indefinitely.
//! - **Observably equivalent**: a fault served from staging returns
//!   byte-identical contents to the fault the un-prefetched plane would
//!   have served (pinned by a differential proptest).
//!
//! The demand hit path performs zero steady-state heap allocations:
//! fault observations are queued into a fixed ring consumed by `pump`
//! (the allocating prediction/issue work happens off the fault path,
//! as a background prefetcher thread would), staging buffers recycle
//! through a free list, and telemetry records through pre-registered
//! handles.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xfm_telemetry::lifecycle::NO_SHARD;
use xfm_telemetry::{Cause, LifecycleStage, PrefetchMetrics, Registry};
use xfm_types::{Error, OpContext, PageNumber, SwapError, SwapResult, TenantId};

use crate::backend::{BackendStats, SwapOutcome, SwapPlane};
use crate::predictor::{
    HybridPredictor, LearnedPredictor, Predictor, PredictorStats, StridePredictor,
};
use crate::sharded::ShardedSfm;
use crate::zpool::{CompactReport, ZpoolStats};

/// Fault observations buffered between pumps. Oldest are overwritten
/// when the prefetcher falls this far behind the fault stream.
const OBSERVE_RING: usize = 4096;

/// Which predictor drives the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Region-tagged stride heuristic.
    Stride,
    /// Online logistic delta model.
    Learned,
    /// Learned when confident, stride fallback.
    Hybrid,
}

/// Configuration for [`PrefetchEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchConfig {
    /// Predictor implementation.
    pub predictor: PredictorKind,
    /// Seed for the learned model's deterministic weight init.
    pub seed: u64,
    /// Prefetch depth (pages predicted ahead per confident stream).
    pub depth: u32,
    /// Learned-model confidence threshold (and hybrid selector bar).
    pub confidence_threshold: f64,
    /// Bound on staged pages; beyond it predictions are throttled.
    pub staging_capacity: usize,
    /// Precision floor: below this rolling `hits / issued`, issuing is
    /// gated to probe pumps only.
    pub min_precision: f64,
    /// Pages issued per precision-gate evaluation window.
    pub precision_window: u64,
    /// While gated, one pump in this many still issues (probing for the
    /// pattern to come back).
    pub probe_interval: u64,
    /// Write a staged page back to the pool after this many pump rounds
    /// without a hit (0 disables write-back).
    pub stale_after_pumps: u64,
    /// Cap on pages issued per pump.
    pub batch_limit: usize,
    /// Run a pump inline after every fault. Convenient for tests; the
    /// bench disables it and pumps explicitly between timed sections,
    /// modeling a background prefetch thread.
    pub auto_pump: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            predictor: PredictorKind::Hybrid,
            seed: 0x5EED,
            depth: 8,
            confidence_threshold: LearnedPredictor::DEFAULT_THRESHOLD,
            staging_capacity: 256,
            min_precision: 0.6,
            precision_window: 64,
            probe_interval: 8,
            stale_after_pumps: 64,
            batch_limit: 64,
            auto_pump: true,
        }
    }
}

/// One page parked in the staging cache. Holds the page's only copy:
/// the speculative swap-in already consumed the pool entry.
struct StagedPage {
    data: Vec<u8>,
    outcome: SwapOutcome,
    staged_round: u64,
    /// The account the page was billed to before the speculative
    /// swap-in consumed its entry — a stale write-back re-stores it
    /// under the same identity, so speculation never shifts bytes
    /// between tenants.
    tenant: TenantId,
}

/// Everything behind the engine's single mutex. Lock ordering: this
/// lock may be held across inner-plane calls (engine -> shard), never
/// the reverse.
struct PrefetchState {
    predictor: Box<dyn Predictor>,
    staging: BTreeMap<u64, StagedPage>,
    /// Recycled staging buffers (capacity-bounded, pre-reserved).
    free: Vec<Vec<u8>>,
    /// Fault observations awaiting the next pump.
    ring: VecDeque<u64>,
    pump_round: u64,
    /// Precision-gate window accounting.
    window_issued: u64,
    window_hits: u64,
    gated: bool,
    issued_total: u64,
    hits_total: u64,
    throttled_total: u64,
    writebacks_total: u64,
}

/// What one [`PrefetchEngine::pump`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Pages speculatively staged this pump.
    pub issued: usize,
    /// Predictions dropped by the precision gate or back-pressure.
    pub throttled: usize,
    /// Stale staged pages written back into the pool.
    pub written_back: usize,
}

/// The prefetch front: same [`SwapPlane`] surface as the wrapped
/// plane, plus speculation.
///
/// Generic over the wrapped plane (default [`ShardedSfm`], the
/// classic configuration): staging works identically over a
/// [`TieredPlane`](crate::tier::TieredPlane), where the batched
/// speculative swap-ins fan out per owning tier.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xfm_sfm::{PrefetchConfig, PrefetchEngine, ShardedSfm, ShardedSfmConfig};
/// use xfm_types::PageNumber;
///
/// let inner = Arc::new(ShardedSfm::new(ShardedSfmConfig::default()));
/// let engine = PrefetchEngine::new(inner, PrefetchConfig::default());
/// let page = b"16-byte pattern!".repeat(256);
/// engine.swap_out(PageNumber::new(7), &page)?;
/// let mut out = Vec::new();
/// engine.swap_in_into(PageNumber::new(7), false, &mut out)?;
/// assert_eq!(out, page);
/// # Ok::<(), xfm_types::Error>(())
/// ```
pub struct PrefetchEngine<P: SwapPlane = ShardedSfm> {
    inner: Arc<P>,
    config: PrefetchConfig,
    state: parking_lot::Mutex<PrefetchState>,
    /// Speculation toggle; off = transparent pass-through (the bench's
    /// "prefetch disabled" arm, and the degrade path's kill switch).
    enabled: AtomicBool,
    metrics: Option<PrefetchMetrics>,
    registry: Option<Registry>,
}

impl<P: SwapPlane> std::fmt::Debug for PrefetchEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchEngine")
            .field("staged", &self.staged_pages())
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

fn build_predictor(config: &PrefetchConfig) -> Box<dyn Predictor> {
    let depth = config.depth.max(1);
    let mut p: Box<dyn Predictor> = match config.predictor {
        PredictorKind::Stride => Box::new(StridePredictor::new(depth)),
        PredictorKind::Learned => Box::new(LearnedPredictor::new(depth, config.seed)),
        PredictorKind::Hybrid => Box::new(HybridPredictor::new(depth, config.seed)),
    };
    p.set_confidence_threshold(config.confidence_threshold);
    p
}

impl<P: SwapPlane> PrefetchEngine<P> {
    /// Wraps `inner` with speculation configured by `config`.
    #[must_use]
    pub fn new(inner: Arc<P>, config: PrefetchConfig) -> Self {
        let predictor = build_predictor(&config);
        Self {
            inner,
            config,
            state: parking_lot::Mutex::new(PrefetchState {
                predictor,
                staging: BTreeMap::new(),
                free: Vec::with_capacity(config.staging_capacity),
                ring: VecDeque::with_capacity(OBSERVE_RING),
                pump_round: 0,
                window_issued: 0,
                window_hits: 0,
                gated: false,
                issued_total: 0,
                hits_total: 0,
                throttled_total: 0,
                writebacks_total: 0,
            }),
            enabled: AtomicBool::new(true),
            metrics: None,
            registry: None,
        }
    }

    /// Attaches the prefetch metric bundle and the lifecycle trail.
    /// Call before sharing the engine; recording afterwards is
    /// allocation-free (pre-registered handles).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(PrefetchMetrics::register(registry));
        self.registry = Some(registry.clone());
    }

    /// The wrapped plane.
    #[must_use]
    pub fn inner(&self) -> &Arc<P> {
        &self.inner
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PrefetchConfig {
        &self.config
    }

    /// Turns speculation on or off. Off, the engine is a pass-through
    /// (already-staged pages are still served until drained).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether speculation is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Pages currently staged.
    #[must_use]
    pub fn staged_pages(&self) -> usize {
        self.state.lock().staging.len()
    }

    /// Whether the precision gate is currently throttling issues.
    #[must_use]
    pub fn is_gated(&self) -> bool {
        self.state.lock().gated
    }

    /// Predictor accuracy statistics.
    #[must_use]
    pub fn predictor_stats(&self) -> PredictorStats {
        self.state.lock().predictor.stats()
    }

    /// Rolling engine precision: staged pages later hit by a demand
    /// fault, over pages staged.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let st = self.state.lock();
        if st.issued_total == 0 {
            0.0
        } else {
            st.hits_total as f64 / st.issued_total as f64
        }
    }

    /// Retunes the live predictor (autotuner entry point).
    pub fn set_knobs(&self, depth: u32, confidence_threshold: f64) {
        let mut st = self.state.lock();
        st.predictor.set_depth(depth);
        st.predictor.set_confidence_threshold(confidence_threshold);
    }

    /// Queues a fault observation; `st.ring` never grows past its
    /// pre-reserved capacity (oldest observations are dropped first).
    fn push_ring(st: &mut PrefetchState, page: u64) {
        if st.ring.len() == OBSERVE_RING {
            st.ring.pop_front();
        }
        st.ring.push_back(page);
    }

    /// Compresses `data` into the wrapped plane under `page`.
    ///
    /// # Errors
    ///
    /// [`Error::EntryExists`] when the page is staged (it is in the SFM,
    /// just pre-decompressed), plus the wrapped plane's conditions.
    pub fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        self.swap_out_with(&OpContext::SYSTEM, page, data)
    }

    /// Context-carrying form of [`PrefetchEngine::swap_out`]: the
    /// wrapped plane bills `ctx.tenant`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrefetchEngine::swap_out`].
    pub fn swap_out_with(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        let st = self.state.lock();
        if st.staging.contains_key(&page.index()) {
            return Err(SwapError::from(Error::EntryExists { page: page.index() }));
        }
        self.inner.swap_out_ctx(ctx, page, data)
    }

    /// Fault path: consults the staging cache before the wrapped
    /// plane's decompress path. A staged hit is a memcpy — no shard
    /// lock, no checksum, no codec work, no heap allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as the wrapped plane's
    /// [`SwapPlane::swap_in_into`].
    pub fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        let mut st = self.state.lock();
        if let Some(staged) = st.staging.remove(&page.index()) {
            out.clear();
            out.extend_from_slice(&staged.data);
            let age = st.pump_round.saturating_sub(staged.staged_round);
            st.hits_total += 1;
            st.window_hits += 1;
            Self::push_ring(&mut st, page.index());
            let mut buf = staged.data;
            buf.clear();
            if st.free.len() < self.config.staging_capacity {
                st.free.push(buf);
            }
            if let Some(m) = &self.metrics {
                m.hits.inc();
                m.staged_pages.set(st.staging.len() as f64);
            }
            if let Some(r) = &self.registry {
                r.lifecycle().record_for(
                    LifecycleStage::PrefetchHit,
                    Cause::Ok,
                    staged.tenant,
                    page.index(),
                    NO_SHARD,
                    age,
                    0,
                );
            }
            drop(st);
            if self.config.auto_pump && self.enabled() {
                self.pump();
            }
            return Ok(staged.outcome);
        }
        Self::push_ring(&mut st, page.index());
        let res = self.inner.swap_in_into(page, do_offload, out);
        drop(st);
        if self.config.auto_pump && self.enabled() {
            self.pump();
        }
        res
    }

    /// Allocating convenience form of [`PrefetchEngine::swap_in_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrefetchEngine::swap_in_into`].
    pub fn swap_in(
        &self,
        page: PageNumber,
        do_offload: bool,
    ) -> SwapResult<(Vec<u8>, SwapOutcome)> {
        let mut out = Vec::new();
        let outcome = self.swap_in_into(page, do_offload, &mut out)?;
        Ok((out, outcome))
    }

    /// One prefetcher step: drains buffered fault observations through
    /// the predictor, issues surviving predictions as one batched
    /// speculative swap-in per owning shard, stages the pages, and
    /// writes stale staged pages back to the pool.
    ///
    /// This is the allocating half of the engine — it models the
    /// background prefetch thread, off the demand-fault path.
    pub fn pump(&self) -> PumpReport {
        let mut report = PumpReport::default();
        if !self.enabled() {
            return report;
        }
        let mut st = self.state.lock();
        st.pump_round += 1;
        let round = st.pump_round;

        // Feed the predictor everything faulted since the last pump.
        let mut predicted: Vec<PageNumber> = Vec::new();
        while let Some(p) = st.ring.pop_front() {
            predicted.extend(st.predictor.observe(PageNumber::new(p)));
        }

        // Precision gate: every `precision_window` issued pages, compare
        // the window's realized precision against the floor.
        if st.window_issued >= self.config.precision_window {
            let precision = st.window_hits as f64 / st.window_issued as f64;
            st.gated = precision < self.config.min_precision;
            st.window_issued = 0;
            st.window_hits = 0;
        }
        let suppress = st.gated && !round.is_multiple_of(self.config.probe_interval.max(1));

        // Back-pressure: staging is bounded; speculation never evicts.
        let room = self
            .config
            .staging_capacity
            .saturating_sub(st.staging.len())
            .min(self.config.batch_limit);
        let mut batch: Vec<PageNumber> = Vec::new();
        for p in predicted {
            if st.staging.contains_key(&p.index()) || batch.contains(&p) || !self.inner.contains(p)
            {
                continue;
            }
            if suppress || batch.len() >= room {
                report.throttled += 1;
                continue;
            }
            batch.push(p);
        }
        st.throttled_total += report.throttled as u64;

        if !batch.is_empty() {
            // Capture each page's owner before the batched swap-in
            // consumes its entry: afterwards the plane no longer knows.
            let owners: Vec<TenantId> = batch
                .iter()
                .map(|p| self.inner.tenant_of(*p).unwrap_or(TenantId::SYSTEM))
                .collect();
            let mut outs: Vec<Vec<u8>> = batch
                .iter()
                .map(|_| st.free.pop().unwrap_or_default())
                .collect();
            let results = self.inner.swap_in_batch_into(&batch, &mut outs);
            for (((page, result), data), tenant) in batch.iter().zip(results).zip(outs).zip(owners)
            {
                match result {
                    Ok(outcome) => {
                        st.staging.insert(
                            page.index(),
                            StagedPage {
                                data,
                                outcome,
                                staged_round: round,
                                tenant,
                            },
                        );
                        st.issued_total += 1;
                        st.window_issued += 1;
                        report.issued += 1;
                        if let Some(m) = &self.metrics {
                            m.issued.inc();
                        }
                        if let Some(r) = &self.registry {
                            r.lifecycle().record_for(
                                LifecycleStage::PrefetchIssue,
                                Cause::Ok,
                                tenant,
                                page.index(),
                                NO_SHARD,
                                batch.len() as u64,
                                0,
                            );
                        }
                    }
                    Err(_) => {
                        // Entry vanished or failed verification; the
                        // speculation simply didn't happen.
                        let mut buf = data;
                        buf.clear();
                        if st.free.len() < self.config.staging_capacity {
                            st.free.push(buf);
                        }
                    }
                }
            }
        }

        // Stale write-back: a mispredicted page goes home to the pool
        // rather than squatting in staging (or being dropped — staging
        // holds the only copy).
        if self.config.stale_after_pumps > 0 {
            let stale: Vec<u64> = st
                .staging
                .iter()
                .filter(|(_, sp)| {
                    round.saturating_sub(sp.staged_round) >= self.config.stale_after_pumps
                })
                .map(|(&p, _)| p)
                .collect();
            for p in stale {
                let staged = st.staging.remove(&p).expect("collected above");
                let ctx = OpContext::for_tenant(staged.tenant);
                match self
                    .inner
                    .swap_out_ctx(&ctx, PageNumber::new(p), &staged.data)
                {
                    Ok(_) => {
                        st.writebacks_total += 1;
                        report.written_back += 1;
                        let age = round.saturating_sub(staged.staged_round);
                        let mut buf = staged.data;
                        buf.clear();
                        if st.free.len() < self.config.staging_capacity {
                            st.free.push(buf);
                        }
                        if let Some(m) = &self.metrics {
                            m.writebacks.inc();
                        }
                        // A stale write-back is a demotion (speculation
                        // going back to far memory), not a store: give
                        // Chrome-trace export its own stage.
                        if let Some(r) = &self.registry {
                            r.lifecycle().record_for(
                                LifecycleStage::Demote,
                                Cause::Ok,
                                staged.tenant,
                                p,
                                NO_SHARD,
                                age,
                                0,
                            );
                        }
                    }
                    Err(_) => {
                        // Pool full (or transient): keep the page staged
                        // and retry on a later pump.
                        st.staging.insert(p, staged);
                    }
                }
            }
        }

        if let Some(m) = &self.metrics {
            m.throttled.add(report.throttled as u64);
            m.staged_pages.set(st.staging.len() as f64);
            let precision = if st.issued_total == 0 {
                0.0
            } else {
                st.hits_total as f64 / st.issued_total as f64
            };
            m.precision.set(precision);
            m.accuracy.set(st.predictor.stats().accuracy());
        }
        report
    }

    /// Writes every staged page back into the pool (drain before
    /// shutdown, reconfiguration, or an equivalence check).
    ///
    /// # Errors
    ///
    /// Propagates the first write-back failure; the failing page stays
    /// staged.
    pub fn flush_staging(&self) -> SwapResult<usize> {
        let mut st = self.state.lock();
        let pages: Vec<u64> = st.staging.keys().copied().collect();
        let mut flushed = 0usize;
        for p in pages {
            let staged = st.staging.remove(&p).expect("key collected above");
            let ctx = OpContext::for_tenant(staged.tenant);
            match self
                .inner
                .swap_out_ctx(&ctx, PageNumber::new(p), &staged.data)
            {
                Ok(_) => {
                    flushed += 1;
                    st.writebacks_total += 1;
                    if let Some(m) = &self.metrics {
                        m.writebacks.inc();
                    }
                }
                Err(e) => {
                    st.staging.insert(p, staged);
                    if let Some(m) = &self.metrics {
                        m.staged_pages.set(st.staging.len() as f64);
                    }
                    return Err(e);
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.staged_pages.set(st.staging.len() as f64);
        }
        Ok(flushed)
    }

    /// Whether `page` is in the SFM — staged or compressed.
    #[must_use]
    pub fn contains(&self, page: PageNumber) -> bool {
        self.state.lock().staging.contains_key(&page.index()) || self.inner.contains(page)
    }
}

impl<P: SwapPlane> SwapPlane for PrefetchEngine<P> {
    fn swap_out(&self, page: PageNumber, data: &[u8]) -> SwapResult<SwapOutcome> {
        PrefetchEngine::swap_out(self, page, data)
    }

    fn swap_out_ctx(
        &self,
        ctx: &OpContext,
        page: PageNumber,
        data: &[u8],
    ) -> SwapResult<SwapOutcome> {
        PrefetchEngine::swap_out_with(self, ctx, page, data)
    }

    fn swap_in_into(
        &self,
        page: PageNumber,
        do_offload: bool,
        out: &mut Vec<u8>,
    ) -> SwapResult<SwapOutcome> {
        PrefetchEngine::swap_in_into(self, page, do_offload, out)
    }

    fn swap_in_batch_into(
        &self,
        pages: &[PageNumber],
        outs: &mut [Vec<u8>],
    ) -> Vec<SwapResult<SwapOutcome>> {
        // Per-page so every fault consults staging first.
        pages
            .iter()
            .zip(outs.iter_mut())
            .map(|(page, out)| PrefetchEngine::swap_in_into(self, *page, true, out))
            .collect()
    }

    fn contains(&self, page: PageNumber) -> bool {
        PrefetchEngine::contains(self, page)
    }

    fn compact(&self) -> CompactReport {
        self.inner.compact()
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }

    fn pool_stats(&self) -> ZpoolStats {
        self.inner.pool_stats()
    }

    fn tenant_usage(&self) -> Vec<(TenantId, u64)> {
        // Staged pages sit decompressed in DRAM: their compressed pool
        // bytes were already credited back by the speculative swap-in,
        // so the wrapped plane's view is the authoritative one.
        self.inner.tenant_usage()
    }

    fn tenant_of(&self, page: PageNumber) -> Option<TenantId> {
        if let Some(sp) = self.state.lock().staging.get(&page.index()) {
            return Some(sp.tenant);
        }
        self.inner.tenant_of(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SfmConfig;
    use crate::sharded::ShardedSfmConfig;
    use xfm_compress::Corpus;
    use xfm_types::{ByteSize, PAGE_SIZE};

    fn plane() -> Arc<ShardedSfm> {
        Arc::new(ShardedSfm::new(ShardedSfmConfig {
            sfm: SfmConfig {
                region_capacity: ByteSize::from_mib(16),
                ..SfmConfig::default()
            },
            ..ShardedSfmConfig::default()
        }))
    }

    fn page_of(seed: u64) -> Vec<u8> {
        Corpus::Json.generate(seed, PAGE_SIZE)
    }

    fn engine(config: PrefetchConfig) -> PrefetchEngine {
        PrefetchEngine::new(plane(), config)
    }

    #[test]
    fn sequential_faults_hit_staging() {
        let e = engine(PrefetchConfig {
            auto_pump: false,
            ..PrefetchConfig::default()
        });
        for p in 0..256u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        let mut hits = 0;
        for p in 0..256u64 {
            let before = e.staged_pages();
            let was_staged = before > 0 && {
                let st = e.state.lock();
                st.staging.contains_key(&p)
            };
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
            assert_eq!(out, page_of(p), "page {p} contents");
            if was_staged {
                hits += 1;
            }
            e.pump();
        }
        assert!(hits > 200, "only {hits} staged hits over 256 faults");
        assert!(e.precision() > 0.9, "precision {}", e.precision());
    }

    #[test]
    fn staging_is_bounded_by_capacity() {
        let e = engine(PrefetchConfig {
            staging_capacity: 8,
            depth: 16,
            batch_limit: 64,
            auto_pump: false,
            stale_after_pumps: 0,
            ..PrefetchConfig::default()
        });
        for p in 0..128u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..64u64 {
            let _ = e.swap_in_into(PageNumber::new(p), false, &mut out);
            e.pump();
            assert!(e.staged_pages() <= 8, "staging grew past its bound");
        }
    }

    #[test]
    fn stale_pages_write_back_not_drop() {
        let e = engine(PrefetchConfig {
            stale_after_pumps: 2,
            auto_pump: false,
            ..PrefetchConfig::default()
        });
        for p in 0..64u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..8u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
        }
        e.pump();
        let staged = e.staged_pages();
        assert!(staged > 0, "nothing staged");
        // Idle pumps age the staged pages out.
        let mut wrote = 0;
        for _ in 0..4 {
            wrote += e.pump().written_back;
        }
        assert!(wrote >= staged, "staged pages not written back");
        // Written-back pages are still faultable with intact contents.
        for p in 8..16u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
            assert_eq!(out, page_of(p));
        }
    }

    #[test]
    fn swap_out_of_staged_page_is_entry_exists() {
        let e = engine(PrefetchConfig {
            auto_pump: false,
            ..PrefetchConfig::default()
        });
        for p in 0..32u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..6u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
        }
        e.pump();
        let staged: Vec<u64> = {
            let st = e.state.lock();
            st.staging.keys().copied().collect()
        };
        assert!(!staged.is_empty());
        let p = staged[0];
        assert!(e.contains(PageNumber::new(p)));
        let err = e.swap_out(PageNumber::new(p), &page_of(p)).unwrap_err();
        assert!(matches!(err.cause(), Error::EntryExists { .. }));
    }

    #[test]
    fn disabled_engine_is_pass_through() {
        let e = engine(PrefetchConfig::default());
        e.set_enabled(false);
        for p in 0..64u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..64u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
            assert_eq!(out, page_of(p));
        }
        assert_eq!(e.staged_pages(), 0);
        assert_eq!(e.pump(), PumpReport::default());
    }

    #[test]
    fn precision_gate_throttles_wild_predictions() {
        // Force terrible precision: prefetch deep on a stream that
        // never returns, then verify the gate engages and throttles.
        let e = engine(PrefetchConfig {
            min_precision: 0.9,
            precision_window: 16,
            probe_interval: 1000,
            stale_after_pumps: 0,
            auto_pump: false,
            ..PrefetchConfig::default()
        });
        for p in 0..4096u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        // Fault strided so the predictor stays confident, but never
        // fault the predicted pages (stride 64 = every region boundary
        // confuses nothing: pick stride 2 and skip odd predictions).
        let mut faulted = 0u64;
        for k in 0..512u64 {
            let p = k * 7 % 4096;
            if e.inner.contains(PageNumber::new(p)) || e.contains(PageNumber::new(p)) {
                let _ = e.swap_in_into(PageNumber::new(p), false, &mut out);
                faulted += 1;
            }
            e.pump();
        }
        assert!(faulted > 100);
        let st = e.state.lock();
        assert!(
            st.gated || st.throttled_total > 0 || st.issued_total == 0,
            "gate never engaged: issued {} throttled {}",
            st.issued_total,
            st.throttled_total
        );
    }

    #[test]
    fn flush_staging_returns_pages_to_pool() {
        let e = engine(PrefetchConfig {
            auto_pump: false,
            ..PrefetchConfig::default()
        });
        for p in 0..64u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..8u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
        }
        e.pump();
        let staged = e.staged_pages();
        assert!(staged > 0);
        assert_eq!(e.flush_staging().unwrap(), staged);
        assert_eq!(e.staged_pages(), 0);
        // Every flushed page faultable from the pool, contents intact.
        for p in 8..24u64 {
            if e.inner.contains(PageNumber::new(p)) {
                e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
                assert_eq!(out, page_of(p));
            }
        }
    }

    #[test]
    fn telemetry_counts_hits_and_issues() {
        let inner = plane();
        let mut e = PrefetchEngine::new(
            inner,
            PrefetchConfig {
                auto_pump: false,
                ..PrefetchConfig::default()
            },
        );
        let registry = Registry::new();
        e.attach_telemetry(&registry);
        for p in 0..128u64 {
            e.swap_out(PageNumber::new(p), &page_of(p)).unwrap();
        }
        let mut out = Vec::new();
        for p in 0..128u64 {
            e.swap_in_into(PageNumber::new(p), false, &mut out).unwrap();
            e.pump();
        }
        let snap = registry.snapshot();
        assert!(snap.counters["xfm_prefetch_issued_total"] > 0);
        assert!(snap.counters["xfm_prefetch_hits_total"] > 0);
        assert!(snap.gauges["xfm_prefetch_precision"] > 0.5);
    }
}
