//! Request-driven CPU-side memory controller.
//!
//! [`MemController`] models one DDR channel: per-bank open-row state, a
//! shared data bus, and periodic all-bank refresh blackouts. It is
//! *request-driven* rather than cycle-stepped: each request is resolved to
//! a completion time as it arrives (in non-decreasing time order), which
//! is accurate enough for the bandwidth/latency/interference accounting
//! the XFM evaluation needs while staying fast enough to simulate seconds
//! of DRAM traffic.
//!
//! [`MemSystem`] wraps one controller per channel behind the system
//! [`AddressMapping`].

pub use crate::stats::AccessSource;
use serde::{Deserialize, Serialize};
use xfm_event::{EventId, EventQueue};
use xfm_types::{ByteSize, Error, Nanos, PhysAddr, Result};

use crate::bank::Bank;
use crate::geometry::SystemGeometry;
use crate::mapping::AddressMapping;
use crate::refresh::RefreshScheduler;
use crate::stats::ChannelStats;
use crate::timing::DramTimings;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// One memory request presented to a channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Target physical address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// Transfer size in bytes (split into bursts internally).
    pub bytes: u32,
    /// Originator (CPU over the channel, or NMA over the side channel).
    pub source: AccessSource,
    /// Time the request arrives at the controller.
    pub at: Nanos,
}

impl MemRequest {
    /// Convenience constructor for a 64 B CPU cacheline read.
    #[must_use]
    pub fn cacheline_read(addr: PhysAddr, at: Nanos) -> Self {
        Self {
            addr,
            kind: RequestKind::Read,
            bytes: 64,
            source: AccessSource::Cpu,
            at,
        }
    }

    /// Convenience constructor for a 64 B CPU cacheline write.
    #[must_use]
    pub fn cacheline_write(addr: PhysAddr, at: Nanos) -> Self {
        Self {
            addr,
            kind: RequestKind::Write,
            bytes: 64,
            source: AccessSource::Cpu,
            at,
        }
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// When the request actually started being serviced.
    pub start: Nanos,
    /// When the last data beat left the bus.
    pub finish: Nanos,
    /// `finish - request.at`: the latency the requester observed.
    pub latency: Nanos,
}

/// One DDR channel: banks, bus, refresh calendar, statistics.
///
/// # Examples
///
/// ```
/// use xfm_dram::{DramTimings, MemController, MemRequest, SystemGeometry};
/// use xfm_types::{Nanos, PhysAddr};
///
/// let mut ctrl = MemController::new(
///     DramTimings::paper_emulator(),
///     SystemGeometry::skylake_4ch(),
/// );
/// let c = ctrl
///     .submit(MemRequest::cacheline_read(PhysAddr::new(0), Nanos::from_us(1)))
///     .unwrap();
/// assert!(c.latency > Nanos::ZERO);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemController {
    timings: DramTimings,
    mapping: AddressMapping,
    refresh: RefreshScheduler,
    /// Banks indexed `[rank][bank]`.
    banks: Vec<Vec<Bank>>,
    /// Earliest time the shared data bus is free.
    bus_free_at: Nanos,
    /// Monotonic clock: last request arrival accepted.
    now: Nanos,
    stats: ChannelStats,
}

impl MemController {
    /// Creates a controller for one channel of `geometry`.
    #[must_use]
    pub fn new(timings: DramTimings, geometry: SystemGeometry) -> Self {
        let ranks = geometry.ranks_per_channel() as usize;
        let banks_per = geometry.device.banks_per_chip as usize;
        Self {
            timings,
            mapping: AddressMapping::dimm_local(geometry),
            refresh: RefreshScheduler::new(timings, geometry.device),
            banks: vec![vec![Bank::new(); banks_per]; ranks],
            bus_free_at: Nanos::ZERO,
            now: Nanos::ZERO,
            stats: ChannelStats::new(),
        }
    }

    /// The refresh calendar this channel follows.
    #[must_use]
    pub fn refresh(&self) -> &RefreshScheduler {
        &self.refresh
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The channel-local address mapping.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Submits a request. Requests must arrive in non-decreasing `at`
    /// order (the controller is request-driven, not cycle-stepped).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TimingViolation`] when requests arrive out of
    /// order and [`Error::AddressOutOfRange`] when the address is outside
    /// the channel's capacity.
    pub fn submit(&mut self, req: MemRequest) -> Result<Completion> {
        if req.at < self.now {
            return Err(Error::TimingViolation(format!(
                "request at {} arrived before controller clock {}",
                req.at, self.now
            )));
        }
        self.now = req.at;

        // Refresh blackout: if the request lands inside a tRFC window, the
        // whole rank is locked — it cannot start before the window closes.
        let mut start = req.at;
        if let Some(w) = self.refresh.window_at(start) {
            start = w.end;
        }

        let coord = self.mapping.decompose(req.addr)?;
        let bank = &mut self.banks[coord.rank.as_usize()][coord.bank.as_usize()];
        let (data_at, _outcome) = bank.access(coord.row, start, &self.timings)?;

        // Data bus occupancy: bursts serialize on the shared bus.
        let bursts = u64::from(req.bytes.div_ceil(self.timings.burst_bytes));
        let bus_time = self.timings.t_burst * bursts;
        let xfer_start = data_at.max(self.bus_free_at);
        // A transfer cannot straddle a refresh blackout.
        let xfer_start = match self.refresh.window_at(xfer_start) {
            Some(w) => w.end,
            None => xfer_start,
        };
        let finish = xfer_start + bus_time;
        self.bus_free_at = finish;

        let latency = finish - req.at;
        self.stats.record_access(
            req.source,
            req.kind == RequestKind::Write,
            ByteSize::from_bytes(u64::from(req.bytes)),
            latency,
            bus_time,
        );
        Ok(Completion {
            start,
            finish,
            latency,
        })
    }
}

/// A queued request's completion record, tagged with the [`EventId`]
/// handed out by [`MemSystem::enqueue`] and the original request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// Id returned by [`MemSystem::enqueue`] for this request.
    pub id: EventId,
    /// The request as the caller enqueued it (system address space).
    pub request: MemRequest,
    /// The channel controller's completion record.
    pub completion: Completion,
}

/// A multi-channel memory system routing requests by the system mapping.
///
/// Requests can be presented two ways:
///
/// - [`MemSystem::submit`] — the legacy sequential path: requests must
///   arrive in non-decreasing time order *per channel* or the controller
///   rejects them;
/// - [`MemSystem::enqueue`] + [`MemSystem::drain_to`] — the event-driven
///   front: arrivals may be out of order across (and within) channels;
///   the internal [`EventQueue`] reorders them by `(arrival, FIFO)` before
///   delivery, so each per-channel controller still observes a monotonic
///   stream. The old monotonicity rejection survives only as an internal
///   per-channel invariant.
///
/// # Examples
///
/// ```
/// use xfm_dram::controller::MemSystem;
/// use xfm_dram::{DramTimings, MemRequest, SystemGeometry};
/// use xfm_types::{Nanos, PhysAddr};
///
/// let mut sys = MemSystem::new(
///     DramTimings::paper_emulator(),
///     SystemGeometry::skylake_4ch(),
/// );
/// // A full 4 KiB page access fans out over all four channels.
/// let completions = sys
///     .access_page(PhysAddr::new(0), false, Nanos::from_us(1))
///     .unwrap();
/// assert!(!completions.is_empty());
///
/// // Out-of-order arrivals are fine through the event front.
/// sys.enqueue(MemRequest::cacheline_read(PhysAddr::new(0), Nanos::from_us(9)));
/// sys.enqueue(MemRequest::cacheline_read(PhysAddr::new(64), Nanos::from_us(8)));
/// let done = sys.drain_to(Nanos::from_us(10)).unwrap();
/// assert_eq!(done.len(), 2);
/// assert!(done[0].request.at <= done[1].request.at);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemSystem {
    mapping: AddressMapping,
    channels: Vec<MemController>,
    geometry: SystemGeometry,
    /// Event-driven front: buffered arrivals awaiting delivery, ordered
    /// by `(arrival time, enqueue order)`.
    pending: EventQueue<MemRequest>,
}

impl MemSystem {
    /// Creates a memory system with one controller per channel.
    #[must_use]
    pub fn new(timings: DramTimings, geometry: SystemGeometry) -> Self {
        let per_channel = SystemGeometry {
            channels: 1,
            ..geometry
        };
        Self {
            mapping: AddressMapping::skylake(geometry),
            channels: (0..geometry.channels)
                .map(|_| MemController::new(timings, per_channel))
                .collect(),
            geometry,
            pending: EventQueue::new(),
        }
    }

    /// The system geometry.
    #[must_use]
    pub fn geometry(&self) -> &SystemGeometry {
        &self.geometry
    }

    /// The system-level (channel-interleaved) address mapping.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Per-channel statistics.
    #[must_use]
    pub fn channel_stats(&self) -> Vec<&ChannelStats> {
        self.channels.iter().map(MemController::stats).collect()
    }

    /// Merged statistics across channels.
    #[must_use]
    pub fn total_stats(&self) -> ChannelStats {
        let mut total = ChannelStats::new();
        for ch in &self.channels {
            total.merge(ch.stats());
        }
        total
    }

    /// Submits one cacheline-sized request, routed to its channel.
    ///
    /// # Errors
    ///
    /// Propagates controller errors (out-of-order arrival, bad address).
    pub fn submit(&mut self, req: MemRequest) -> Result<Completion> {
        let coord = self.mapping.decompose(req.addr)?;
        // Rewrite the address into the channel-local space: drop the
        // channel digit by recomposing with channel 0 in a 1-channel map.
        let local =
            self.channels[coord.channel.as_usize()]
                .mapping()
                .compose(xfm_types::DramCoord {
                    channel: xfm_types::ChannelId::new(0),
                    ..coord
                })?;
        self.channels[coord.channel.as_usize()].submit(MemRequest {
            addr: local + (req.addr.as_u64() % 128),
            ..req
        })
    }

    /// Buffers a request on the event-driven front. Arrival order is
    /// unconstrained — cross-channel and within-horizon out-of-order
    /// arrivals are reordered by the queue before delivery. Returns the
    /// event id that will tag the request's [`MemCompletion`].
    pub fn enqueue(&mut self, req: MemRequest) -> EventId {
        self.pending.push(req.at, req)
    }

    /// Arrival time of the earliest buffered request, if any.
    #[must_use]
    pub fn next_pending(&self) -> Option<Nanos> {
        self.pending.peek_time()
    }

    /// Number of buffered requests not yet delivered.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Delivers every buffered request with arrival `<= now` to its
    /// channel controller, in `(arrival, enqueue-order)` order, appending
    /// one [`MemCompletion`] per request to `out`.
    ///
    /// Because delivery order is globally sorted, each channel observes a
    /// monotonic arrival stream regardless of enqueue order; the
    /// controller-level monotonicity check remains as an internal
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for an unmappable address,
    /// or [`Error::TimingViolation`] if the caller enqueued a request
    /// older than a previous drain horizon (delivery stops at the first
    /// error; later requests stay buffered).
    pub fn drain_to_into(&mut self, now: Nanos, out: &mut Vec<MemCompletion>) -> Result<()> {
        while let Some(ev) = self.pending.pop_before(now) {
            let completion = self.submit(ev.payload)?;
            out.push(MemCompletion {
                id: ev.id,
                request: ev.payload,
                completion,
            });
        }
        Ok(())
    }

    /// Allocating convenience wrapper around [`MemSystem::drain_to_into`].
    ///
    /// # Errors
    ///
    /// See [`MemSystem::drain_to_into`].
    pub fn drain_to(&mut self, now: Nanos) -> Result<Vec<MemCompletion>> {
        let mut out = Vec::new();
        self.drain_to_into(now, &mut out)?;
        Ok(out)
    }

    /// Accesses a whole 4 KiB page starting at `base` (which must be
    /// page-aligned), splitting it into channel-interleaved chunks, and
    /// returns every chunk completion.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `base` is not page-aligned, or
    /// propagates controller errors.
    pub fn access_page(
        &mut self,
        base: PhysAddr,
        is_write: bool,
        at: Nanos,
    ) -> Result<Vec<Completion>> {
        if !base.is_aligned(xfm_types::PAGE_SIZE as u64) {
            return Err(Error::InvalidConfig(format!(
                "page access at unaligned address {base}"
            )));
        }
        let chunk = self.mapping.channel_interleave;
        let kind = if is_write {
            RequestKind::Write
        } else {
            RequestKind::Read
        };
        (0..(xfm_types::PAGE_SIZE as u64 / chunk))
            .map(|i| {
                self.submit(MemRequest {
                    addr: base + i * chunk,
                    kind,
                    bytes: chunk as u32,
                    source: AccessSource::Cpu,
                    at,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemController {
        MemController::new(DramTimings::paper_emulator(), SystemGeometry::skylake_4ch())
    }

    #[test]
    fn sequential_reads_hit_open_row() {
        let mut c = ctrl();
        let t0 = Nanos::from_us(1); // skip window 0 blackout
        let first = c
            .submit(MemRequest::cacheline_read(PhysAddr::new(0), t0))
            .unwrap();
        let second = c
            .submit(MemRequest::cacheline_read(PhysAddr::new(0), first.finish))
            .unwrap();
        // Row hit: much cheaper than the first (row-empty) access.
        assert!(second.latency < first.latency);
    }

    #[test]
    fn request_in_refresh_window_is_delayed() {
        let mut c = ctrl();
        // Window 0 starts at t=0 and lasts tRFC=410ns.
        let r = c
            .submit(MemRequest::cacheline_read(
                PhysAddr::new(0),
                Nanos::from_ns(100),
            ))
            .unwrap();
        assert!(r.start >= Nanos::from_ns(410), "start {}", r.start);
        assert!(r.latency >= Nanos::from_ns(310));
    }

    #[test]
    fn per_channel_monotonicity_is_internal_invariant() {
        // The controller itself still rejects time running backwards —
        // the event front above it guarantees sorted delivery, so this
        // is an internal invariant rather than a caller-facing contract.
        let mut c = ctrl();
        c.submit(MemRequest::cacheline_read(
            PhysAddr::new(0),
            Nanos::from_us(2),
        ))
        .unwrap();
        assert!(matches!(
            c.submit(MemRequest::cacheline_read(
                PhysAddr::new(64),
                Nanos::from_us(1)
            )),
            Err(Error::TimingViolation(_))
        ));
    }

    #[test]
    fn event_front_accepts_out_of_order_cross_channel_arrivals() {
        let timings = DramTimings::paper_emulator();
        let geo = SystemGeometry::skylake_4ch();
        let mut sys = MemSystem::new(timings, geo);
        // Enqueue in reverse time order, spread over all four channels
        // (channel digit comes from address bits, stride 256 B here).
        let mut ids = Vec::new();
        for i in (0..16u64).rev() {
            let req = MemRequest::cacheline_read(
                PhysAddr::new(i * 256),
                Nanos::from_us(1) + Nanos::from_ns(i * 10),
            );
            ids.push(sys.enqueue(req));
        }
        assert_eq!(sys.next_pending(), Some(Nanos::from_us(1)));
        let done = sys.drain_to(Nanos::from_us(10)).unwrap();
        assert_eq!(done.len(), 16);
        // Delivered in arrival order despite reversed enqueue order.
        for pair in done.windows(2) {
            assert!(pair[0].request.at <= pair[1].request.at);
        }
        // Every enqueue id is accounted for exactly once.
        let mut seen: Vec<_> = done.iter().map(|c| c.id).collect();
        seen.sort();
        ids.sort();
        assert_eq!(seen, ids);
        assert_eq!(sys.pending_len(), 0);
    }

    #[test]
    fn event_front_matches_legacy_submit_on_monotonic_trace() {
        let timings = DramTimings::paper_emulator();
        let geo = SystemGeometry::skylake_4ch();
        let mut legacy = MemSystem::new(timings, geo);
        let mut queued = MemSystem::new(timings, geo);
        let reqs: Vec<_> = (0..64u64)
            .map(|i| {
                MemRequest::cacheline_read(
                    PhysAddr::new(i * 64),
                    Nanos::from_us(1) + Nanos::from_ns(i * 25),
                )
            })
            .collect();
        let direct: Vec<_> = reqs.iter().map(|r| legacy.submit(*r).unwrap()).collect();
        for r in &reqs {
            queued.enqueue(*r);
        }
        let drained = queued.drain_to(Nanos::from_ms(1)).unwrap();
        let via_queue: Vec<_> = drained.iter().map(|c| c.completion).collect();
        assert_eq!(direct, via_queue);
        assert_eq!(
            legacy.total_stats().ddr_bus_bytes(),
            queued.total_stats().ddr_bus_bytes()
        );
    }

    #[test]
    fn drain_respects_horizon_and_resumes() {
        let timings = DramTimings::paper_emulator();
        let geo = SystemGeometry::skylake_4ch();
        let mut sys = MemSystem::new(timings, geo);
        sys.enqueue(MemRequest::cacheline_read(
            PhysAddr::new(0),
            Nanos::from_us(1),
        ));
        sys.enqueue(MemRequest::cacheline_read(
            PhysAddr::new(64),
            Nanos::from_us(5),
        ));
        let first = sys.drain_to(Nanos::from_us(2)).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(sys.pending_len(), 1);
        let rest = sys.drain_to(Nanos::from_us(5)).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn bus_serializes_back_to_back_transfers() {
        let mut c = ctrl();
        let t0 = Nanos::from_us(1);
        // Two reads to different banks at the same instant: second must
        // wait for the bus.
        let a = c
            .submit(MemRequest::cacheline_read(PhysAddr::new(0), t0))
            .unwrap();
        let b = c
            .submit(MemRequest::cacheline_read(PhysAddr::new(128), t0))
            .unwrap();
        assert!(b.finish >= a.finish + c.timings.t_burst);
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut c = ctrl();
        let t0 = Nanos::from_us(1);
        c.submit(MemRequest::cacheline_read(PhysAddr::new(0), t0))
            .unwrap();
        c.submit(MemRequest::cacheline_write(PhysAddr::new(64), t0))
            .unwrap();
        assert_eq!(c.stats().ddr_bus_bytes().as_bytes(), 128);
        assert_eq!(c.stats().accesses(), 2);
    }

    #[test]
    fn mem_system_routes_page_over_channels() {
        let mut sys = MemSystem::new(DramTimings::paper_emulator(), SystemGeometry::skylake_4ch());
        let completions = sys
            .access_page(PhysAddr::new(0), false, Nanos::from_us(1))
            .unwrap();
        assert_eq!(completions.len(), 16); // 4 KiB / 256 B
        let total = sys.total_stats();
        assert_eq!(total.ddr_bus_bytes().as_bytes(), 4096);
        // Every channel carried a quarter of the page.
        for ch in sys.channel_stats() {
            assert_eq!(ch.ddr_bus_bytes().as_bytes(), 1024);
        }
    }

    #[test]
    fn mem_system_rejects_unaligned_page() {
        let mut sys = MemSystem::new(DramTimings::paper_emulator(), SystemGeometry::skylake_4ch());
        assert!(sys
            .access_page(PhysAddr::new(64), false, Nanos::from_us(1))
            .is_err());
    }

    #[test]
    fn sustained_streaming_approaches_peak_bandwidth() {
        let mut c = ctrl();
        let mut at = Nanos::from_us(1);
        let mut last = at;
        // Stream 4000 cachelines as fast as completions allow.
        for i in 0..4000u64 {
            let done = c
                .submit(MemRequest::cacheline_read(PhysAddr::new(i * 64), at))
                .unwrap();
            at = at.max(done.finish.saturating_sub(Nanos::from_ns(50)));
            last = done.finish;
        }
        let elapsed = last - Nanos::from_us(1);
        let bw = c.stats().ddr_bandwidth(elapsed);
        let peak = c.timings.peak_bandwidth();
        let util = bw.as_bytes_per_sec() / peak.as_bytes_per_sec();
        assert!(
            util > 0.5,
            "streaming should exceed 50% of peak, got {util}"
        );
    }
}
