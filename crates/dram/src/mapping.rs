//! Physical-address-to-DRAM-coordinate mapping.
//!
//! Models the Intel Skylake interleaving the paper assumes (§5): physical
//! addresses are striped across channels at 256 B granularity and across a
//! bank pair at 128 B granularity, so a contiguous 4 KiB page is spread
//! over all channels and, within each channel, alternates between two
//! banks of the same row (Fig. 6a).
//!
//! The decomposition is a mixed-radix digit extraction, which keeps the
//! mapping a bijection even for non-power-of-two channel counts (the
//! paper's testbed has six channels).

use serde::{Deserialize, Serialize};
use xfm_types::{
    BankId, ChannelId, ColId, DramCoord, Error, PageNumber, PhysAddr, RankId, Result, RowId,
    PAGE_SIZE,
};

use crate::geometry::SystemGeometry;

/// A configurable interleaved address mapping.
///
/// # Examples
///
/// ```
/// use xfm_dram::{AddressMapping, SystemGeometry};
/// use xfm_types::PhysAddr;
///
/// let map = AddressMapping::skylake(SystemGeometry::skylake_4ch());
/// let c0 = map.decompose(PhysAddr::new(0)).unwrap();
/// let c256 = map.decompose(PhysAddr::new(256)).unwrap();
/// // Consecutive 256 B chunks land on different channels...
/// assert_ne!(c0.channel, c256.channel);
/// let c128 = map.decompose(PhysAddr::new(128)).unwrap();
/// // ...and the two 128 B halves of a chunk land on a bank pair.
/// assert_ne!(c0.bank, c128.bank);
/// assert_eq!(c0.row, c128.row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    /// Bytes of consecutive address space per channel stripe (Skylake: 256).
    pub channel_interleave: u64,
    /// Bytes of consecutive address space per bank stripe (Skylake: 128).
    pub bank_interleave: u64,
    geometry: SystemGeometry,
}

impl AddressMapping {
    /// Creates the Skylake-style mapping for `geometry`: 256 B channel
    /// interleave, 128 B bank interleave.
    #[must_use]
    pub fn skylake(geometry: SystemGeometry) -> Self {
        Self {
            channel_interleave: 256,
            bank_interleave: 128,
            geometry,
        }
    }

    /// Creates the view a single DIMM's near-memory accelerator has of its
    /// local memory: one channel (its own), banks still striped at 128 B.
    #[must_use]
    pub fn dimm_local(mut geometry: SystemGeometry) -> Self {
        geometry.channels = 1;
        Self {
            channel_interleave: 256,
            bank_interleave: 128,
            geometry,
        }
    }

    /// Creates a mapping with custom interleave granularities.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the granularities are not
    /// powers of two, if `bank_interleave` does not divide
    /// `channel_interleave`, or if a row does not hold a whole number of
    /// bank-interleave granules.
    pub fn with_interleave(
        geometry: SystemGeometry,
        channel_interleave: u64,
        bank_interleave: u64,
    ) -> Result<Self> {
        if !channel_interleave.is_power_of_two() || !bank_interleave.is_power_of_two() {
            return Err(Error::InvalidConfig(
                "interleave granularities must be powers of two".into(),
            ));
        }
        if !channel_interleave.is_multiple_of(bank_interleave) {
            return Err(Error::InvalidConfig(
                "bank interleave must divide channel interleave".into(),
            ));
        }
        if u64::from(geometry.rank_row_bytes()) % bank_interleave != 0 {
            return Err(Error::InvalidConfig(
                "row size must be a multiple of the bank interleave".into(),
            ));
        }
        if channel_interleave / bank_interleave > u64::from(geometry.device.banks_per_chip) {
            return Err(Error::InvalidConfig(
                "stripe spans more banks than the device has".into(),
            ));
        }
        Ok(Self {
            channel_interleave,
            bank_interleave,
            geometry,
        })
    }

    /// The system geometry this mapping addresses.
    #[must_use]
    pub fn geometry(&self) -> &SystemGeometry {
        &self.geometry
    }

    /// Number of banks a channel stripe is spread over
    /// (`channel_interleave / bank_interleave`; Skylake: 2).
    #[must_use]
    pub fn banks_per_stripe(&self) -> u64 {
        self.channel_interleave / self.bank_interleave
    }

    /// Granules (bank-interleave units) per rank-level row.
    fn granules_per_row(&self) -> u64 {
        u64::from(self.geometry.rank_row_bytes()) / self.bank_interleave
    }

    /// Decomposes a physical address into DRAM coordinates.
    ///
    /// The returned [`ColId`] indexes bank-interleave granules within the
    /// row; the sub-granule byte offset is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when `addr` exceeds the modeled
    /// capacity.
    pub fn decompose(&self, addr: PhysAddr) -> Result<DramCoord> {
        let capacity = self.geometry.total_capacity().as_bytes();
        if addr.as_u64() >= capacity {
            return Err(Error::AddressOutOfRange {
                addr: addr.as_u64(),
                capacity,
            });
        }
        let g = &self.geometry;
        let stripe_banks = self.banks_per_stripe();

        // Mixed-radix digit extraction, LSB first:
        //   offset | bank_low | channel | col_high | bank_high | rank | row
        let mut rest = addr.as_u64() / self.bank_interleave;
        let bank_low = rest % stripe_banks;
        rest /= stripe_banks;
        let channel = rest % u64::from(g.channels);
        rest /= u64::from(g.channels);
        let cols_high = self.granules_per_row();
        let col_high = rest % cols_high;
        rest /= cols_high;
        let bank_pairs = u64::from(g.device.banks_per_chip) / stripe_banks;
        let bank_high = rest % bank_pairs;
        rest /= bank_pairs;
        let ranks = u64::from(g.ranks_per_channel());
        let rank = rest % ranks;
        rest /= ranks;
        let row = rest;
        debug_assert!(row < u64::from(g.device.rows_per_bank));

        // Within a row, granules owned by one bank are consecutive:
        // col = col_high; the bank is bank_high * stripe_banks + bank_low.
        Ok(DramCoord {
            channel: ChannelId::new(channel as u32),
            rank: RankId::new(rank as u32),
            bank: BankId::new((bank_high * stripe_banks + bank_low) as u32),
            row: RowId::new(row as u32),
            col: ColId::new(col_high as u32),
        })
    }

    /// Recomposes DRAM coordinates into the (granule-aligned) physical
    /// address. Inverse of [`AddressMapping::decompose`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any coordinate is out of range
    /// for the geometry.
    pub fn compose(&self, coord: DramCoord) -> Result<PhysAddr> {
        let g = &self.geometry;
        let stripe_banks = self.banks_per_stripe();
        let bank_pairs = u64::from(g.device.banks_per_chip) / stripe_banks;
        let cols_high = self.granules_per_row();
        let ranks = u64::from(g.ranks_per_channel());

        let bank = u64::from(coord.bank.index());
        let (bank_high, bank_low) = (bank / stripe_banks, bank % stripe_banks);
        if bank >= u64::from(g.device.banks_per_chip)
            || u64::from(coord.channel.index()) >= u64::from(g.channels)
            || u64::from(coord.rank.index()) >= ranks
            || u64::from(coord.row.index()) >= u64::from(g.device.rows_per_bank)
            || u64::from(coord.col.index()) >= cols_high
        {
            return Err(Error::InvalidConfig(format!(
                "coordinate {coord} out of range for geometry"
            )));
        }

        let mut addr = u64::from(coord.row.index());
        addr = addr * ranks + u64::from(coord.rank.index());
        addr = addr * bank_pairs + bank_high;
        addr = addr * cols_high + u64::from(coord.col.index());
        addr = addr * u64::from(g.channels) + u64::from(coord.channel.index());
        addr = addr * stripe_banks + bank_low;
        Ok(PhysAddr::new(addr * self.bank_interleave))
    }

    /// Returns the coordinates of every bank-interleave granule of a 4 KiB
    /// page, in address order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when the page exceeds capacity.
    pub fn page_granules(&self, page: PageNumber) -> Result<Vec<DramCoord>> {
        let base = page.base_addr();
        (0..(PAGE_SIZE as u64 / self.bank_interleave))
            .map(|i| self.decompose(base + i * self.bank_interleave))
            .collect()
    }

    /// Returns the distinct `(channel, rank, bank, row)` locations a page
    /// touches — the rows the XFM scheduler must match against the refresh
    /// schedule to classify an access as *conditional*.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] when the page exceeds capacity.
    pub fn page_rows(&self, page: PageNumber) -> Result<Vec<(ChannelId, RankId, BankId, RowId)>> {
        let mut rows: Vec<_> = self
            .page_granules(page)?
            .into_iter()
            .map(|c| (c.channel, c.rank, c.bank, c.row))
            .collect();
        rows.sort();
        rows.dedup();
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> SystemGeometry {
        // Keep rows small so exhaustive tests stay fast.
        SystemGeometry {
            channels: 2,
            dimms_per_channel: 1,
            ranks_per_dimm: 2,
            chips_per_rank: 8,
            device: crate::geometry::DeviceGeometry {
                rows_per_bank: 16 * 1024,
                banks_per_chip: 4,
                rows_per_subarray: 512,
                row_bytes_per_chip: 1024,
                width_bits: 8,
            },
        }
    }

    #[test]
    fn decompose_compose_round_trip_exhaustive_prefix() {
        let map = AddressMapping::skylake(small_geometry());
        for granule in 0..100_000u64 {
            let addr = PhysAddr::new(granule * 128);
            let coord = map.decompose(addr).unwrap();
            let back = map.compose(coord).unwrap();
            assert_eq!(back, addr, "granule {granule} -> {coord}");
        }
    }

    #[test]
    fn decompose_is_injective_over_prefix() {
        let map = AddressMapping::skylake(small_geometry());
        let mut seen = std::collections::HashSet::new();
        for granule in 0..50_000u64 {
            let coord = map.decompose(PhysAddr::new(granule * 128)).unwrap();
            assert!(seen.insert(coord), "duplicate coord {coord}");
        }
    }

    #[test]
    fn skylake_stripes_channels_at_256b() {
        let map = AddressMapping::skylake(SystemGeometry::skylake_4ch());
        let channels: Vec<u32> = (0..8)
            .map(|i| {
                map.decompose(PhysAddr::new(i * 256))
                    .unwrap()
                    .channel
                    .index()
            })
            .collect();
        assert_eq!(&channels[..4], &[0, 1, 2, 3]);
        assert_eq!(&channels[4..], &[0, 1, 2, 3]);
    }

    #[test]
    fn page_alternates_between_two_banks_same_row() {
        // Fig. 6a: single-channel view; a 4 KiB page alternates between
        // bank 0 and bank 1 of the same row.
        let mut g = small_geometry();
        g.channels = 1;
        let map = AddressMapping::skylake(g);
        let granules = map.page_granules(PageNumber::new(0)).unwrap();
        assert_eq!(granules.len(), 32);
        for (i, c) in granules.iter().enumerate() {
            assert_eq!(c.bank.index(), (i % 2) as u32, "granule {i}");
            assert_eq!(c.row.index(), 0);
        }
        let rows = map.page_rows(PageNumber::new(0)).unwrap();
        assert_eq!(rows.len(), 2); // two (bank,row) locations
    }

    #[test]
    fn four_channel_page_spreads_over_all_channels() {
        let map = AddressMapping::skylake(SystemGeometry::skylake_4ch());
        let rows = map.page_rows(PageNumber::new(3)).unwrap();
        let channels: std::collections::HashSet<_> =
            rows.iter().map(|(ch, _, _, _)| ch.index()).collect();
        assert_eq!(channels.len(), 4);
        // 4 channels x 2 banks = 8 (channel, bank, row) locations.
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn six_channel_mapping_stays_bijective() {
        // Non-power-of-two channel count (the paper's testbed).
        let mut g = small_geometry();
        g.channels = 6;
        let map = AddressMapping::skylake(g);
        for granule in 0..60_000u64 {
            let addr = PhysAddr::new(granule * 128);
            let coord = map.decompose(addr).unwrap();
            assert_eq!(map.compose(coord).unwrap(), addr);
        }
    }

    #[test]
    fn dimm_local_mapping_keeps_page_in_one_channel() {
        let map = AddressMapping::dimm_local(small_geometry());
        let rows = map.page_rows(PageNumber::new(7)).unwrap();
        assert!(rows.iter().all(|(ch, _, _, _)| ch.index() == 0));
    }

    #[test]
    fn out_of_range_address_rejected() {
        let map = AddressMapping::skylake(small_geometry());
        let cap = map.geometry().total_capacity().as_bytes();
        assert!(matches!(
            map.decompose(PhysAddr::new(cap)),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn compose_rejects_out_of_range_coord() {
        let map = AddressMapping::skylake(small_geometry());
        let bad = DramCoord {
            bank: BankId::new(99),
            ..DramCoord::default()
        };
        assert!(map.compose(bad).is_err());
    }

    #[test]
    fn with_interleave_validates() {
        let g = small_geometry();
        assert!(AddressMapping::with_interleave(g, 256, 128).is_ok());
        assert!(AddressMapping::with_interleave(g, 300, 128).is_err());
        assert!(AddressMapping::with_interleave(g, 128, 256).is_err());
    }

    #[test]
    fn last_valid_address_round_trips() {
        let map = AddressMapping::skylake(small_geometry());
        let cap = map.geometry().total_capacity().as_bytes();
        let addr = PhysAddr::new(cap - 128);
        let coord = map.decompose(addr).unwrap();
        assert_eq!(map.compose(coord).unwrap(), addr);
    }
}
